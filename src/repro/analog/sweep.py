"""Generic parameter-sweep drivers.

The attack analysis repeatedly answers questions of the form "how does metric
M change as parameter P is swept" (inverter threshold vs VDD, driver output
amplitude vs VDD, time-to-spike vs input amplitude, ...).
:class:`ParameterSweep` factors that loop out of the individual analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np


@dataclass
class SweepResult:
    """The outcome of a parameter sweep.

    Attributes
    ----------
    parameter_name:
        Name of the swept parameter.
    values:
        The swept parameter values.
    metrics:
        Mapping from metric name to the per-value metric array.
    """

    parameter_name: str
    values: np.ndarray
    metrics: Dict[str, np.ndarray] = field(default_factory=dict)

    def metric(self, name: str) -> np.ndarray:
        """Metric array by name."""
        return self.metrics[name]

    def relative_change(self, name: str, *, reference_value: float) -> np.ndarray:
        """Metric expressed as a fractional change from its value at
        ``parameter == reference_value``."""
        reference = self.metric_at(name, reference_value)
        if reference == 0:
            raise ZeroDivisionError(
                f"metric {name!r} is zero at the reference point; cannot normalise"
            )
        return (self.metrics[name] - reference) / reference

    def metric_at(self, name: str, parameter_value: float) -> float:
        """Interpolated metric value at an arbitrary parameter value."""
        return float(np.interp(parameter_value, self.values, self.metrics[name]))

    def as_rows(self) -> List[tuple]:
        """Rows of (parameter, metric1, metric2, ...) for table printing."""
        names = list(self.metrics)
        rows = []
        for i, value in enumerate(self.values):
            rows.append(tuple([float(value)] + [float(self.metrics[n][i]) for n in names]))
        return rows

    def header(self) -> List[str]:
        """Column headers matching :meth:`as_rows`."""
        return [self.parameter_name] + list(self.metrics)


class ParameterSweep:
    """Sweep a scalar parameter and evaluate one or more metrics at each value.

    Parameters
    ----------
    parameter_name:
        Label of the swept parameter (used in reports).
    values:
        The parameter values to evaluate.
    evaluate:
        Callable mapping a parameter value to a dict of metric values.
    """

    def __init__(
        self,
        parameter_name: str,
        values: Sequence[float],
        evaluate: Callable[[float], Dict[str, float]],
    ) -> None:
        if len(values) == 0:
            raise ValueError("a sweep needs at least one parameter value")
        self.parameter_name = parameter_name
        self.values = np.asarray(values, dtype=float)
        self.evaluate = evaluate

    def run(self) -> SweepResult:
        """Execute the sweep."""
        per_value: List[Dict[str, float]] = [self.evaluate(float(v)) for v in self.values]
        metric_names = list(per_value[0])
        for result in per_value[1:]:
            if list(result) != metric_names:
                raise ValueError(
                    "evaluate() must return the same metric names for every value"
                )
        metrics = {
            name: np.array([result[name] for result in per_value], dtype=float)
            for name in metric_names
        }
        return SweepResult(
            parameter_name=self.parameter_name, values=self.values, metrics=metrics
        )
