"""Deterministic sharding of sweep work across independent invocations.

Long scenario campaigns (see :mod:`repro.scenarios`) are split across
machines or CI jobs by giving every invocation the same task list and a
shard coordinate ``i/n``: shard ``i`` evaluates every ``n``-th task starting
at offset ``i``.  The assignment is a pure function of the task *order*, so
any two processes given the same list agree on the split without
coordination, and the union of all shards is exactly the full list.

Interleaved (round-robin) assignment is used instead of contiguous blocks
because sweep grids are usually ordered from mild to severe corruption:
contiguous blocks would give one shard all the slow, severely-corrupted
runs, while interleaving balances expected cost across shards.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ShardSpec:
    """One shard coordinate of an ``n``-way split (zero-based ``index``)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not (0 <= self.index < self.count):
            raise ValueError(
                f"shard index must be in [0, {self.count - 1}], got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"i/n"`` (e.g. ``"0/4"``) into a spec.

        Raises :class:`ValueError` on malformed input, with the expected
        format in the message.
        """
        parts = str(text).split("/")
        if len(parts) != 2:
            raise ValueError(f"shard must look like 'i/n' (e.g. '0/4'), got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"shard must look like 'i/n' with integer i and n, got {text!r}"
            ) from None
        return cls(index=index, count=count)

    @property
    def is_trivial(self) -> bool:
        """True for the 1-way split (every task belongs to this shard)."""
        return self.count == 1

    def select(self, items: Sequence[T]) -> List[T]:
        """The subsequence of ``items`` assigned to this shard (interleaved)."""
        return list(items[self.index :: self.count])

    def owns_index(self, position: int) -> bool:
        """Whether task number ``position`` of the full list is this shard's."""
        return position % self.count == self.index

    def owns_name(self, name: str) -> bool:
        """Stable name-based assignment for *unsplittable* units of work.

        Adaptive scenarios cannot split their probe sequence (each probe
        depends on the previous result), so a whole scenario is assigned to
        one shard by a stable hash of its name — identical across processes
        and Python hash randomisation.
        """
        return zlib.crc32(name.encode("utf-8")) % self.count == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


#: The trivial 1-way split, used when no ``--shard`` was requested.
FULL = ShardSpec(index=0, count=1)


@dataclass(frozen=True)
class MergeReport:
    """Validation of a sharded merge: exactly what is still unresolved.

    Built by :func:`merge_report` from a positionally resolved variant
    list.  Instead of surfacing an incomplete merge as a bare ``KeyError``
    (or a vague "N missing"), the report names the missing variant
    positions, maps them to the shard indices that own them under the
    interleaved split, and can render the commands that compute them.
    """

    #: Length of the full variant list being merged.
    total: int
    #: Shard count of the split the merge is validated against.
    count: int
    #: Zero-based positions of the variants still unresolved.
    missing_positions: Tuple[int, ...] = ()
    #: Elastic campaigns only: unresolved positions whose chunk was never
    #: leased — any worker picks them up by simply re-running.
    unclaimed_positions: Tuple[int, ...] = ()
    #: Elastic campaigns only: unresolved positions whose lease was taken
    #: but whose owner died past the re-dispatch budget (or left a corrupt
    #: lease) — recoverable by re-running, but worth flagging loudly.
    lost_positions: Tuple[int, ...] = ()

    @property
    def complete(self) -> bool:
        """True when every variant position resolved to a result."""
        return not self.missing_positions

    @property
    def missing(self) -> int:
        """How many variant positions are unresolved."""
        return len(self.missing_positions)

    @property
    def unclaimed(self) -> int:
        """How many unresolved positions were never leased (elastic runs)."""
        return len(self.unclaimed_positions)

    @property
    def lost(self) -> int:
        """How many unresolved positions were leased but lost (elastic runs)."""
        return len(self.lost_positions)

    @property
    def missing_shards(self) -> Tuple[int, ...]:
        """Sorted shard indices owning the unresolved positions."""
        return tuple(sorted({p % self.count for p in self.missing_positions}))

    def resume_commands(self, template: str) -> List[str]:
        """Concrete resume commands, one per absent shard.

        ``template`` must contain a ``{shard}`` placeholder, e.g.
        ``"python -m repro scenarios run NAME --shard {shard} --out OUT"``.
        """
        return [
            template.format(shard=f"{index}/{self.count}")
            for index in self.missing_shards
        ]

    def describe(self, *, limit: int = 8) -> str:
        """One line naming missing positions and the shards that own them."""
        if self.complete:
            return f"all {self.total} variant(s) resolved"
        shown = ", ".join(str(p) for p in self.missing_positions[:limit])
        if self.missing > limit:
            shown += f", … ({self.missing - limit} more)"
        if self.unclaimed_positions or self.lost_positions:
            # Elastic campaigns: ownership is dynamic, so report the
            # categories instead of static shard coordinates.
            return (
                f"{self.missing} of {self.total} variant(s) unresolved "
                f"(position(s) {shown}) — {self.unclaimed} never claimed, "
                f"{self.lost} leased but lost"
            )
        shards = ", ".join(f"{index}/{self.count}" for index in self.missing_shards)
        return (
            f"{self.missing} of {self.total} variant(s) unresolved "
            f"(position(s) {shown}) — owned by shard(s) {shards}"
        )


def merge_report(resolved: Sequence[Optional[object]], spec: ShardSpec) -> MergeReport:
    """Validate a merge attempt: ``None`` entries in ``resolved`` are missing.

    ``resolved`` is the positionally aligned result list of a full variant
    grid (as returned by ``SweepExecutor.peek_results``); ``spec`` carries
    the shard count the campaign was split into.
    """
    missing = tuple(
        position for position, result in enumerate(resolved) if result is None
    )
    return MergeReport(total=len(resolved), count=spec.count, missing_positions=missing)
