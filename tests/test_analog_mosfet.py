"""Tests for the level-1 MOSFET model."""

import pytest

from repro.analog.mosfet import MOSFET, MOSFETParameters, NMOS_65NM, PMOS_65NM


def make_nmos(width="1u", length="100n"):
    return MOSFET("MN", "d", "g", "s", NMOS_65NM, width=width, length=length)


def make_pmos(width="1u", length="100n"):
    return MOSFET("MP", "d", "g", "s", PMOS_65NM, width=width, length=length)


def test_parameters_reject_bad_polarity():
    with pytest.raises(ValueError):
        MOSFETParameters(polarity="cmos", vth0=0.4, kp=1e-4)


def test_with_threshold_returns_modified_copy():
    modified = NMOS_65NM.with_threshold(0.3)
    assert modified.vth0 == 0.3
    assert NMOS_65NM.vth0 != 0.3


def test_nmos_off_below_threshold():
    nmos = make_nmos()
    current = nmos.drain_current(vd=1.0, vg=0.1, vs=0.0)
    assert abs(current) < 1e-9  # only the subthreshold tail remains


def test_nmos_on_above_threshold():
    nmos = make_nmos()
    current = nmos.drain_current(vd=1.0, vg=1.0, vs=0.0)
    assert current > 1e-5


def test_nmos_current_increases_with_gate_voltage():
    nmos = make_nmos()
    currents = [nmos.drain_current(1.0, vg, 0.0) for vg in (0.5, 0.7, 0.9)]
    assert currents[0] < currents[1] < currents[2]


def test_nmos_saturation_weakly_depends_on_vds():
    nmos = make_nmos()
    i_sat1 = nmos.drain_current(0.6, 0.8, 0.0)
    i_sat2 = nmos.drain_current(1.0, 0.8, 0.0)
    # Channel-length modulation only: a few percent per 100 mV.
    assert i_sat2 > i_sat1
    assert (i_sat2 - i_sat1) / i_sat1 < 0.1


def test_nmos_triode_scales_with_vds():
    nmos = make_nmos()
    i_small = nmos.drain_current(0.02, 1.0, 0.0)
    i_double = nmos.drain_current(0.04, 1.0, 0.0)
    assert i_double == pytest.approx(2 * i_small, rel=0.1)


def test_nmos_symmetric_under_terminal_swap():
    nmos = make_nmos()
    forward = nmos.drain_current(0.5, 1.0, 0.0)
    reverse = nmos.drain_current(0.0, 1.0, 0.5)
    assert reverse == pytest.approx(-forward, rel=1e-6)


def test_pmos_conducts_with_low_gate():
    pmos = make_pmos()
    # Source at VDD, drain low, gate low -> PMOS on, current flows source->drain
    current = pmos.drain_current(vd=0.0, vg=0.0, vs=1.0)
    assert current < -1e-5  # drain-to-source current is negative


def test_pmos_off_with_high_gate():
    pmos = make_pmos()
    current = pmos.drain_current(vd=0.0, vg=1.0, vs=1.0)
    assert abs(current) < 1e-9


def test_channel_current_partials_match_finite_differences():
    nmos = make_nmos()
    vd, vg, vs = 0.6, 0.7, 0.1
    i0, d_vd, d_vg, d_vs = nmos.channel_current(vd, vg, vs)
    eps = 1e-6
    fd_vd = (nmos.drain_current(vd + eps, vg, vs) - i0) / eps
    fd_vg = (nmos.drain_current(vd, vg + eps, vs) - i0) / eps
    fd_vs = (nmos.drain_current(vd, vg, vs + eps) - i0) / eps
    assert d_vd == pytest.approx(fd_vd, rel=1e-2, abs=1e-9)
    assert d_vg == pytest.approx(fd_vg, rel=1e-2, abs=1e-9)
    assert d_vs == pytest.approx(fd_vs, rel=1e-2, abs=1e-9)


def test_beta_scales_with_aspect_ratio():
    narrow = make_nmos(width="1u")
    wide = make_nmos(width="2u")
    assert wide.beta == pytest.approx(2 * narrow.beta)
    assert wide.aspect_ratio == pytest.approx(2 * narrow.aspect_ratio)


def test_current_scales_with_width():
    narrow = make_nmos(width="1u")
    wide = make_nmos(width="4u")
    assert wide.drain_current(1.0, 0.8, 0.0) == pytest.approx(
        4 * narrow.drain_current(1.0, 0.8, 0.0), rel=1e-6
    )
