"""Area and power overhead accounting for the proposed defenses.

The paper quantifies each defense's cost (Sec. V); this module collects those
numbers in one queryable table and derives the network-size scaling of the
fixed-area blocks (the bandgap amortises across neurons, the per-neuron
defenses do not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.utils.validation import check_positive


@dataclass
class DefenseOverhead:
    """Cost summary of one defense."""

    name: str
    power_overhead: float
    area_overhead: float
    protects: str
    fixed_area_block: bool = False
    notes: str = ""

    def scaled_area_overhead(self, n_neurons: int, reference_neurons: int = 200) -> float:
        """Area overhead for a different network size.

        Fixed-area blocks (the bandgap) amortise inversely with the neuron
        count; per-neuron modifications stay constant.
        """
        check_positive(n_neurons, "n_neurons")
        if not self.fixed_area_block:
            return self.area_overhead
        return self.area_overhead * reference_neurons / float(n_neurons)

    def as_row(self) -> tuple:
        """(name, power, area, protects) row for reporting."""
        return (
            self.name,
            f"{self.power_overhead:.0%}",
            f"{self.area_overhead:.0%}",
            self.protects,
        )


#: The paper's reported overheads (Sec. V-A, V-B, V-C).
PAPER_OVERHEADS: Dict[str, DefenseOverhead] = {
    "robust_current_driver": DefenseOverhead(
        name="robust_current_driver",
        power_overhead=0.03,
        area_overhead=0.005,
        protects="input spike amplitude (Attacks 1 and 5)",
        notes="Op-amp regulated driver; neuron capacitors dominate area.",
    ),
    "bandgap_threshold": DefenseOverhead(
        name="bandgap_threshold",
        power_overhead=0.02,
        area_overhead=0.65,
        protects="I&F neuron threshold (Attacks 2-5)",
        fixed_area_block=True,
        notes="65 % area for the 200-neuron experimental SNN; amortises with size.",
    ),
    "axon_hillock_sizing": DefenseOverhead(
        name="axon_hillock_sizing",
        power_overhead=0.25,
        area_overhead=0.01,
        protects="Axon-Hillock threshold (Attacks 2-5)",
        notes="32:1 first-inverter device; 1 pF capacitors dominate area.",
    ),
    "comparator_neuron": DefenseOverhead(
        name="comparator_neuron",
        power_overhead=0.11,
        area_overhead=0.01,
        protects="Axon-Hillock threshold (Attacks 2-5)",
        notes="Reference-biased comparator replaces the first inverter.",
    ),
    "dummy_neuron_detector": DefenseOverhead(
        name="dummy_neuron_detector",
        power_overhead=0.01,
        area_overhead=0.01,
        protects="detection of localised VDD glitching",
        notes="One dummy neuron and fixed driver per layer.",
    ),
}


def overhead_report(n_neurons: int = 200) -> List[DefenseOverhead]:
    """All defenses with area overheads scaled to ``n_neurons``."""
    report = []
    for overhead in PAPER_OVERHEADS.values():
        scaled = DefenseOverhead(
            name=overhead.name,
            power_overhead=overhead.power_overhead,
            area_overhead=overhead.scaled_area_overhead(n_neurons),
            protects=overhead.protects,
            fixed_area_block=overhead.fixed_area_block,
            notes=overhead.notes,
        )
        report.append(scaled)
    return report
