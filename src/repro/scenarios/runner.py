"""Scenario execution: grids, adaptive searches, sharding and resume.

:class:`ScenarioRunner` turns declarative scenarios into pipeline runs
through the existing execution subsystem — one
:class:`~repro.exec.executor.SweepExecutor` per (config, engine), so a
scenario campaign inherits everything the figure tier already has: process
parallelism, content-keyed result caching, lockstep batched sweeps on the
serial path and persistent resume through
:class:`repro.store.PersistentResultCache`.

Sharding (``--shard i/n``) splits a scenario's variant list across
independent invocations with :class:`~repro.exec.shard.ShardSpec`; each
shard persists every result it computes, and *any* invocation that finds
the union of the shard caches complete assembles the merged
:class:`ScenarioResult` — bit-identical to an unsharded run, because the
numbers come from the same content-keyed cache entries either way.
Adaptive (bisect) scenarios cannot split their probe sequence, so a whole
scenario is shard-assigned by a stable hash of its name.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ExperimentConfig
from repro.exec.elastic import (
    Chunk,
    ElasticPolicy,
    ElasticScheduler,
    build_chunks,
    default_worker_id,
    whole_chunk,
)
from repro.exec.executor import PipelineFromConfig, SweepExecutor
from repro.exec.resilience import ResiliencePolicy, ResilientExecutor
from repro.exec.shard import FULL, MergeReport, ShardSpec, merge_report
from repro.figures import FigureTable
from repro.scenarios.registry import Scenario
from repro.scenarios.spec import ScenarioSpec, ScenarioVariant
from repro.scenarios.strategy import (
    BisectionOutcome,
    BisectionStrategy,
    degradations_from_accuracies,
)


@dataclass
class ScenarioResult:
    """Everything one scenario evaluation produced.

    ``complete`` is ``False`` when this invocation only covered a shard of
    the variant list (or none of it, for a bisect scenario owned by
    another shard); the merged artifact is only written once some
    invocation finds every variant resolved in the shared caches.
    """

    scenario: str = ""
    title: str = ""
    scale_name: str = ""
    strategy: str = "grid"
    engine: str = "auto"
    shard: str = "0/1"
    complete: bool = True
    missing: int = 0
    missing_positions: List[int] = field(default_factory=list)
    missing_shards: List[int] = field(default_factory=list)
    #: Elastic campaigns: unresolved positions never leased by any worker.
    unclaimed_positions: List[int] = field(default_factory=list)
    #: Elastic campaigns: unresolved positions whose lease was lost (owner
    #: died past the re-dispatch budget).
    lost_positions: List[int] = field(default_factory=list)
    sharded_out: bool = False
    metrics: Dict[str, float] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    tables: List[FigureTable] = field(default_factory=list)
    cases: List[Dict[str, object]] = field(default_factory=list)
    wall_seconds: float = 0.0
    executor_tasks: int = 0
    executor_cache_hits: int = 0
    executor_retries: int = 0
    executor_timeouts: int = 0
    executor_requeues: int = 0
    executor_pool_rebuilds: int = 0
    cache_quarantined: int = 0
    workers: int = 0
    #: Elastic worker id this result was assembled by ("" = not elastic).
    worker: str = ""
    leases_claimed: int = 0
    leases_stolen: int = 0
    leases_expired: int = 0
    duplicate_wins: int = 0
    peers_joined: int = 0
    peers_lost: int = 0

    def render(self) -> str:
        """All tables of the scenario, ready to print."""
        return "\n".join(table.render() for table in self.tables)


class ScenarioRunner:
    """Runs registry scenarios through shared sweep executors.

    Parameters
    ----------
    scale:
        Default scale preset for scenarios that do not pin one
        (``None`` → ``ExperimentConfig.from_environment()``).
    workers:
        Worker processes per executor (``0``/``1`` = serial, which routes
        whole grids through the lockstep batched SNN engine).
    engine:
        Engine override; ``None`` defers to each scenario's own pin.
    cache:
        Shared result cache (pass the persistent shard cache from
        :func:`repro.store.open_shard_cache` for resumable campaigns).
    shard:
        This invocation's :class:`ShardSpec` (default: the full list).
    pipeline_factory:
        Test hook — a callable ``(config, engine) -> factory`` replacing
        :class:`~repro.exec.executor.PipelineFromConfig`, letting tests
        drive scenarios through stub pipelines.
    resilience:
        Optional :class:`~repro.exec.resilience.ResiliencePolicy`; when
        given, scenarios run through
        :class:`~repro.exec.resilience.ResilientExecutor` (crash recovery,
        retry/timeout/backoff, straggler re-dispatch, chaos injection)
        instead of the plain :class:`SweepExecutor`.
    elastic:
        Optional :class:`~repro.exec.elastic.ElasticPolicy`; when given,
        this invocation joins a cooperative work-stealing drain of each
        scenario over ``workdir`` (see :mod:`repro.exec.elastic`) instead
        of evaluating a static shard.  Mutually exclusive with a
        non-trivial ``shard``; requires ``workdir``.
    workdir:
        The shared campaign directory elastic coordination state (leases,
        worker heartbeats) lives under — normally the artifact/cache
        directory every cooperating process was pointed at.
    worker_id:
        Stable identity of this elastic worker (lease ownership, cache
        file name, chaos fault targeting).  Default: ``<hostname>-<pid>``.
    """

    def __init__(
        self,
        *,
        scale: Optional[str] = None,
        workers: int = 0,
        engine: Optional[str] = None,
        cache=None,
        shard: ShardSpec = FULL,
        pipeline_factory=None,
        resilience: Optional[ResiliencePolicy] = None,
        elastic: Optional[ElasticPolicy] = None,
        workdir: Optional[Path | str] = None,
        worker_id: Optional[str] = None,
    ) -> None:
        if elastic is not None:
            if workdir is None:
                raise ValueError("elastic execution needs a shared workdir")
            if not shard.is_trivial:
                raise ValueError(
                    "elastic execution and static sharding are mutually "
                    "exclusive (leases replace the --shard split)"
                )
        self.scale = scale
        self.workers = workers
        self.engine = engine
        self.cache = cache
        self.shard = shard
        self.resilience = resilience
        self.elastic = elastic
        self.workdir = Path(workdir) if workdir is not None else None
        self.worker_id = worker_id or default_worker_id()
        self._pipeline_factory = pipeline_factory or PipelineFromConfig
        self._executors: Dict[Tuple[str, str], SweepExecutor] = {}

    # ------------------------------------------------------------------ config
    def config_for(self, scenario: Scenario) -> ExperimentConfig:
        """The experiment config a scenario runs under (scale resolution)."""
        scale = scenario.scale or self.scale
        if scale is None:
            return ExperimentConfig.from_environment()
        return ExperimentConfig.from_scale(scale)

    def engine_for(self, scenario: Scenario) -> str:
        """The SNN engine a scenario runs under (CLI override wins)."""
        return self.engine or scenario.engine

    def executor_for(self, scenario: Scenario) -> SweepExecutor:
        """The shared executor for this scenario's (scale, engine) pair."""
        config = self.config_for(scenario)
        engine = self.engine_for(scenario)
        key = (config.scale_name, engine)
        if key not in self._executors:
            factory = self._pipeline_factory(config, engine=engine)
            if self.resilience is not None or self.elastic is not None:
                # Elastic drains always go through the resilient executor:
                # its heartbeat hook is what keeps leases renewed while a
                # chunk's tasks run.
                self._executors[key] = ResilientExecutor(
                    pipeline_factory=factory,
                    workers=self.workers,
                    cache=self.cache,
                    policy=self.resilience,
                )
            else:
                self._executors[key] = SweepExecutor(
                    pipeline_factory=factory,
                    workers=self.workers,
                    cache=self.cache,
                )
        return self._executors[key]

    def close(self, *, cancel_pending: bool = False) -> None:
        """Shut every executor's worker pool down (no-op when serial).

        ``cancel_pending`` drops queued-but-unstarted work instead of
        draining it — the graceful-shutdown path (Ctrl-C / SIGTERM), where
        every completed result is already flushed to the persistent cache.
        """
        for executor in self._executors.values():
            executor.close(cancel_pending=cancel_pending)

    def __enter__(self) -> "ScenarioRunner":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close(cancel_pending=exc_type is not None)

    # ------------------------------------------------------------------- runs
    def run(self, scenario: Scenario) -> ScenarioResult:
        """Evaluate one scenario (this invocation's shard of it)."""
        executor = self.executor_for(scenario)
        stats = executor.stats
        tasks_before, hits_before = stats.tasks_executed, stats.cache_hits
        events_before = stats.resilience_events()
        elastic_before = stats.elastic_events()
        start = time.perf_counter()
        if scenario.strategy == "bisect":
            if self.elastic is not None:
                result = self._run_bisect_elastic(scenario, executor)
            else:
                result = self._run_bisect(scenario, executor)
        elif self.elastic is not None:
            result = self._run_grid_elastic(scenario, executor)
        else:
            result = self._run_grid(scenario, executor)
        result.scenario = scenario.name
        result.title = scenario.title or scenario.name
        result.scale_name = self.config_for(scenario).scale_name
        result.strategy = scenario.strategy
        result.engine = self.engine_for(scenario)
        result.shard = str(self.shard)
        result.wall_seconds = time.perf_counter() - start
        result.executor_tasks = stats.tasks_executed - tasks_before
        result.executor_cache_hits = stats.cache_hits - hits_before
        events = stats.resilience_events()
        result.executor_retries = events["retries"] - events_before["retries"]
        result.executor_timeouts = events["timeouts"] - events_before["timeouts"]
        result.executor_requeues = events["requeues"] - events_before["requeues"]
        result.executor_pool_rebuilds = (
            events["pool_rebuilds"] - events_before["pool_rebuilds"]
        )
        result.cache_quarantined = events["quarantined"] - events_before["quarantined"]
        elastic_events = stats.elastic_events()
        for name in elastic_events:
            setattr(result, name, elastic_events[name] - elastic_before[name])
        if self.elastic is not None:
            result.worker = self.worker_id
        result.workers = executor.workers
        return result

    # ------------------------------------------------------------------- grid
    def _run_grid(self, scenario: Scenario, executor: SweepExecutor) -> ScenarioResult:
        variants = scenario.variants()
        mine = [v for i, v in enumerate(variants) if self.shard.owns_index(i)]
        if mine:
            # The leading None keeps the baseline in every shard's batch, so
            # each shard's lockstep pass carries it and the merged artifact
            # never waits on a specific shard for the baseline.
            executor.map([None] + [variant.attack for variant in mine])
        resolved = executor.peek_results([variant.attack for variant in variants])
        baseline = executor.peek_results([None])[0]
        report = merge_report(resolved, self.shard)
        result = ScenarioResult(
            complete=report.complete and baseline is not None,
            missing=report.missing + (1 if baseline is None else 0),
            missing_positions=list(report.missing_positions),
            missing_shards=list(report.missing_shards),
        )
        if not result.complete:
            return result
        self._assemble_grid(scenario, variants, resolved, baseline, result)
        return result

    # -------------------------------------------------------------- elastic
    def _make_scheduler(
        self, scenario: Scenario, executor: SweepExecutor
    ) -> ElasticScheduler:
        """The work-stealing scheduler of one scenario's cooperative drain."""
        chaos = self.resilience.chaos if self.resilience is not None else None
        return ElasticScheduler(
            self.workdir,
            scenario.name,
            policy=self.elastic,
            owner=self.worker_id,
            stats=executor.stats,
            chaos=chaos,
        )

    def _refresh_sibling_caches(self) -> None:
        """Pick up results peers flushed since this process opened its cache."""
        if self.workdir is None or not hasattr(self.cache, "preload"):
            return
        from repro.store import preload_sibling_caches

        preload_sibling_caches(self.cache, self.workdir)

    def _drain(
        self,
        scenario: Scenario,
        executor: SweepExecutor,
        chunks: Sequence[Chunk],
        run_chunk,
    ) -> Dict[str, str]:
        """Run one scheduler drain with the lease heartbeat hook installed."""
        scheduler = self._make_scheduler(scenario, executor)
        previous = getattr(executor, "heartbeat", None)
        if hasattr(executor, "heartbeat"):
            executor.heartbeat = scheduler.heartbeat
        try:
            kinds = scheduler.drain(chunks, run_chunk)
        finally:
            if hasattr(executor, "heartbeat"):
                executor.heartbeat = previous
        self._refresh_sibling_caches()
        self._last_categories = scheduler.categorize(chunks, kinds)
        return kinds

    def _run_grid_elastic(
        self, scenario: Scenario, executor: SweepExecutor
    ) -> ScenarioResult:
        """Cooperatively drain a grid scenario's variant chunks via leases.

        Every chunk's batch leads with the baseline (a cache hit after the
        first), and the merged artifact is assembled from the *union* of
        all workers' persistent caches — so it is bit-identical to an
        unsharded single-process run regardless of which worker computed
        which chunk, how many died, or how many duplicates raced.
        """
        variants = scenario.variants()
        attacks = [variant.attack for variant in variants]
        chunks = build_chunks(len(variants), self.elastic.chunk_size)

        def run_chunk(chunk: Chunk) -> None:
            executor.map([None] + [attacks[i] for i in chunk.positions])

        self._drain(scenario, executor, chunks, run_chunk)
        resolved = executor.peek_results(attacks)
        baseline = executor.peek_results([None])[0]
        unclaimed, lost = self._last_categories
        missing = tuple(i for i, r in enumerate(resolved) if r is None)
        # A done chunk whose results are nonetheless missing (its owner's
        # cache file was lost after the marker landed) counts as lost.
        unclaimed = tuple(i for i in unclaimed if i in set(missing))
        lost = tuple(i for i in missing if i not in set(unclaimed))
        report = MergeReport(
            total=len(resolved),
            count=1,
            missing_positions=missing,
            unclaimed_positions=unclaimed,
            lost_positions=lost,
        )
        result = ScenarioResult(
            complete=report.complete and baseline is not None,
            missing=report.missing + (1 if baseline is None else 0),
            missing_positions=list(report.missing_positions),
            unclaimed_positions=list(report.unclaimed_positions),
            lost_positions=list(report.lost_positions),
        )
        if not result.complete:
            return result
        self._assemble_grid(scenario, variants, resolved, baseline, result)
        return result

    def _run_bisect_elastic(
        self, scenario: ScenarioSpec, executor: SweepExecutor
    ) -> ScenarioResult:
        """Whole-lease an adaptive scenario: one worker owns the whole search.

        Probes depend on previous results, so the scenario is a single
        indivisible chunk.  The claimer runs the search; a worker that
        finds it already done re-assembles the result from the shared
        caches (pure cache hits — the probe sequence is deterministic); a
        worker that finds it held by a live peer skips it like a bisect
        scenario owned by another static shard.
        """
        scheduler = self._make_scheduler(scenario, executor)
        chunk = whole_chunk()
        outcome, lease = scheduler.claim_whole(chunk)
        if outcome == "busy":
            return ScenarioResult(complete=False, sharded_out=True)
        if outcome == "lost":
            return ScenarioResult(
                complete=False, missing=1, lost_positions=[0]
            )
        if outcome == "done":
            self._refresh_sibling_caches()
            return self._run_bisect(scenario, executor)
        previous = getattr(executor, "heartbeat", None)
        if hasattr(executor, "heartbeat"):
            executor.heartbeat = scheduler.heartbeat
        try:
            if scheduler.chaos is not None:
                scheduler.chaos.apply_elastic(
                    f"{scheduler.owner}:{chunk.id}", lease.attempt
                )
            scheduler._current = lease
            result = self._run_bisect(scenario, executor)
        finally:
            scheduler._current = None
            if hasattr(executor, "heartbeat"):
                executor.heartbeat = previous
        scheduler.board.complete(chunk.id, scheduler.owner)
        return result

    def _assemble_grid(
        self,
        scenario: Scenario,
        variants: Sequence[ScenarioVariant],
        resolved: Sequence,
        baseline,
        result: ScenarioResult,
    ) -> None:
        """Fill metrics/arrays/tables from a fully resolved variant list."""
        accuracies = np.array([r.accuracy for r in resolved], dtype=float)
        baseline_accuracy = float(baseline.accuracy)
        degradations = np.array(
            degradations_from_accuracies(accuracies, baseline_accuracy)
        )
        result.arrays["accuracies"] = accuracies
        result.arrays["relative_degradation"] = degradations
        result.arrays["defended"] = np.array(
            [bool(variant.defense) for variant in variants], dtype=bool
        )
        # One aligned array per swept parameter (numeric parameters as
        # floats, categorical ones as strings) so the artifact is
        # self-describing without re-expanding the spec.
        names: List[str] = []
        for variant in variants:
            for key, _ in variant.params:
                if key not in names:
                    names.append(key)
        for name in names:
            values = [dict(variant.params).get(name) for variant in variants]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
                result.arrays[f"param_{name}"] = np.array(values, dtype=float)
            else:
                result.arrays[f"param_{name}"] = np.array(
                    ["" if v is None else str(v) for v in values]
                )

        worst = int(np.argmin(accuracies))
        result.metrics = {
            "baseline_accuracy": baseline_accuracy,
            "n_variants": float(len(variants)),
            "worst_accuracy": float(accuracies[worst]),
            "worst_relative_degradation": float(degradations[worst]),
        }
        defenses = sorted({variant.defense for variant in variants if variant.defense})
        if defenses:
            undefended = ~result.arrays["defended"]
            result.metrics["undefended_worst_degradation"] = float(
                degradations[undefended].max()
            )
        for defense in defenses:
            mask = np.array([variant.defense == defense for variant in variants])
            result.metrics[f"defended_worst_degradation_{defense}"] = float(
                degradations[mask].max()
            )

        rows = []
        for variant, accuracy, degradation in zip(variants, accuracies, degradations):
            rows.append(
                [
                    variant.label,
                    variant.defense or "-",
                    f"{accuracy:.4f}",
                    f"{accuracy - baseline_accuracy:+.4f}",
                    f"{degradation:+.1%}",
                ]
            )
            result.cases.append(
                {
                    "label": variant.label,
                    "params": dict(variant.params),
                    "defense": variant.defense,
                    "defense_factor": variant.defense_factor,
                    "accuracy": float(accuracy),
                    "relative_degradation": float(degradation),
                }
            )
        result.tables.append(
            FigureTable(
                title=(
                    f"{scenario.name} (baseline {baseline_accuracy:.4f}, "
                    f"{len(variants)} variants)"
                ),
                headers=[
                    "variant",
                    "defense",
                    "accuracy",
                    "change",
                    "relative degradation",
                ],
                rows=rows,
            )
        )

    # ----------------------------------------------------------------- bisect
    def _run_bisect(
        self, scenario: ScenarioSpec, executor: SweepExecutor
    ) -> ScenarioResult:
        if not self.shard.is_trivial and not self.shard.owns_name(scenario.name):
            return ScenarioResult(complete=False, sharded_out=True)
        settings = scenario.search
        parameter = settings.parameter
        values = [float(v) for v in scenario.grid[parameter]]
        baseline = executor.run_baseline()
        baseline_accuracy = float(baseline.accuracy)

        def degradation_of(value: float) -> float:
            params = dict(scenario.fixed)
            params[parameter] = value
            attacked = executor.run_attack(scenario.build_attack(params))
            if baseline_accuracy == 0.0:
                return 0.0
            return (baseline_accuracy - attacked.accuracy) / baseline_accuracy

        strategy = BisectionStrategy(
            parameter, target_degradation=settings.target_degradation
        )
        outcome = strategy.run(values, degradation_of)
        return self._assemble_bisect(scenario, outcome, baseline_accuracy)

    def _assemble_bisect(
        self,
        scenario: ScenarioSpec,
        outcome: BisectionOutcome,
        baseline_accuracy: float,
    ) -> ScenarioResult:
        """Fill metrics/arrays/tables from a finished adaptive search."""
        result = ScenarioResult(complete=True)
        probed_values = np.array(list(outcome.probes), dtype=float)
        probed_degradations = np.array(
            [outcome.probes[v] for v in outcome.probes], dtype=float
        )
        result.arrays["probed_values"] = probed_values
        result.arrays["probed_degradations"] = probed_degradations
        result.arrays["candidate_values"] = np.array(
            scenario.grid[outcome.parameter], dtype=float
        )
        result.metrics = {
            "baseline_accuracy": baseline_accuracy,
            "n_probes": float(outcome.n_probes),
            "n_candidates": float(len(scenario.grid[outcome.parameter])),
            "target_degradation": float(outcome.target_degradation),
            "collapse_found": float(outcome.collapse_value is not None),
        }
        if outcome.collapse_value is not None:
            result.metrics["collapse_value"] = float(outcome.collapse_value)
            result.metrics["collapse_index"] = float(outcome.collapse_index)
        rows = [
            [f"{value:g}", f"{degradation:+.1%}"]
            for value, degradation in outcome.probes.items()
        ]
        result.tables.append(
            FigureTable(
                title=f"{scenario.name} — {outcome.describe()}",
                headers=[outcome.parameter, "relative degradation"],
                rows=rows,
            )
        )
        for value, degradation in outcome.probes.items():
            result.cases.append(
                {
                    "label": f"{outcome.parameter}={value:g}",
                    "params": {**dict(scenario.fixed), outcome.parameter: value},
                    "defense": "",
                    "defense_factor": 1.0,
                    "accuracy": float(baseline_accuracy * (1.0 - degradation)),
                    "relative_degradation": float(degradation),
                }
            )
        return result
