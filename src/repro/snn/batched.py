"""Lockstep batched simulation of SNN variants and example batches.

The attack figures re-train and re-evaluate the same Diehl&Cook-style
network once per grid point, and the scalar :class:`~repro.snn.network.Network`
advances one example at a time through a per-timestep Python loop — at the
layer sizes of this paper (100-neuron layers) the per-step NumPy-call
overhead dominates.  :class:`BatchedNetwork` removes it the same way the
circuit tier's :mod:`repro.analog.batch` does: it stacks B instances of one
topology and advances them in lockstep, so each time step is a handful of
NumPy calls over ``(B, n)`` arrays instead of ``B`` full Python passes.

Two composable batch axes:

* **variants** (``V``) — networks that share a topology but differ in
  per-neuron parameters (threshold scale, input gain — exactly what the
  fault injector corrupts) and, once training diverges, in plastic weights.
  One lockstep pass trains/evaluates a whole attack grid.
* **examples** (``E``) — independent examples presented simultaneously to
  the *same* network.  Only valid with learning disabled (the scalar
  reference trains strictly sequentially), which is precisely the label
  assignment / evaluation passes of the classification pipeline.

Exact parity
------------
The engine's contract is *bit-identical* spike rasters and state traces
against the scalar :class:`~repro.snn.network.Network` under identical
inputs — not "close", identical.  Every batched operation is chosen so its
per-lane result provably equals the scalar op:

* elementwise updates (leak, integrate, fire, traces, theta) are identical
  regardless of stacking;
* the scalar synaptic drive ``w[spikes].sum(axis=0)`` reduces over a
  *strided* axis, which NumPy accumulates sequentially — the stacked form
  ``w[:, spikes, :].sum(axis=1)`` reduces in the same per-lane order
  (verified at runtime by :func:`reduction_contract_holds`);
* the one-to-one and lateral-inhibition projections of the Diehl&Cook
  wiring are detected structurally and evaluated in closed form whose
  exactness is *checked against the scalar reduction* when the engine is
  compiled (falling back to a per-lane loop when the check fails);
* STDP updates with per-lane spike masks loop over the affected lanes
  applying exactly the scalar expression; weight clamping is applied to
  the touched rows/columns only (a clip of an in-range value is the
  identity, so skipping untouched entries cannot change anything), with a
  full-matrix clip after every normalisation — mirroring where the scalar
  path's full clip actually has an effect.

Entry points
------------
:meth:`BatchedNetwork.from_networks` compiles V scalar networks (variants
of one topology, checked by :func:`assert_same_topology`);
:meth:`BatchedNetwork.present` mirrors
:meth:`repro.snn.models.DiehlAndCook2015.present` for a batch.  The
classification pipeline and the attack-campaign executor route through
this module via ``engine="auto"|"batched"|"scalar"`` — see
:mod:`repro.core.pipeline` and :mod:`repro.exec.snn_batch`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.snn.network import Network
from repro.snn.nodes import AdaptiveLIFNodes, InputNodes, LIFNodes, Nodes
from repro.snn.topology import Connection


class BatchedNetworkError(ValueError):
    """Base class for batched-engine build/run errors."""


class NetworkTopologyMismatchError(BatchedNetworkError):
    """Raised when the networks handed to the batched engine differ in topology."""


class UnsupportedNetworkError(BatchedNetworkError):
    """Raised when a network uses node/rule types the batched engine cannot mirror."""


# --------------------------------------------------------------------------
# Runtime verification of the reduction-order contract.
# --------------------------------------------------------------------------

_REDUCTION_CONTRACT: Optional[bool] = None


def reduction_contract_holds() -> bool:
    """Whether NumPy's strided-axis reductions match the scalar engine's order.

    The scalar drive ``w[mask].sum(axis=0)`` and normalisation totals
    ``w.sum(axis=0)`` reduce over a strided axis.  The batched engine relies
    on the equivalent stacked reductions (``axis=1`` of a ``(V, k, n)``
    array) visiting lanes in the same sequential order — true for every
    NumPy the project supports, but cheap to verify instead of assume.  The
    check runs once per process; when it fails the ``auto`` engine quietly
    stays on the scalar path and ``engine="batched"`` raises.
    """
    global _REDUCTION_CONTRACT
    if _REDUCTION_CONTRACT is None:
        rng = np.random.default_rng(1234)
        holds = True
        for k in (1, 2, 7, 33, 200):
            w = rng.random((3, k, 17))
            stacked = w.sum(axis=1)
            per_lane = np.stack([w[b].sum(axis=0) for b in range(3)])
            if not np.array_equal(stacked, per_lane):
                holds = False
                break
            sequential = w[0, 0].copy()
            for i in range(1, k):
                sequential = sequential + w[0, i]
            if not np.array_equal(per_lane[0], sequential):
                holds = False
                break
        _REDUCTION_CONTRACT = holds
    return _REDUCTION_CONTRACT


# --------------------------------------------------------------------------
# Topology validation.
# --------------------------------------------------------------------------

_LIF_PARAMETERS = (
    "rest",
    "reset",
    "decay",
    "refractory_period",
    "threshold_convention",
)


def _layer_signature(nodes: Nodes) -> tuple:
    signature: List[object] = [type(nodes), nodes.n, nodes.dt, nodes.trace_decay]
    if isinstance(nodes, LIFNodes):
        signature += [getattr(nodes, name) for name in _LIF_PARAMETERS]
        signature.append(nodes.base_thresh.tobytes())
    if isinstance(nodes, AdaptiveLIFNodes):
        signature += [nodes.theta_plus, nodes.theta_decay]
    return tuple(signature)


def _rule_signature(rule) -> tuple:
    if rule is None:
        return (None,)
    return (type(rule), getattr(rule, "nu_pre", None), getattr(rule, "nu_post", None))


def assert_same_topology(networks: Sequence[Network]) -> None:
    """Validate that every network is a parameter variant of the first.

    Layer names/types/sizes, static neuron parameters, connection wiring,
    weight bounds, normalisation targets and learning-rule configurations
    must match.  Per-neuron *corruptions* (``threshold_scale``,
    ``input_gain``), adaptation state (``theta``) and plastic weights are
    free to differ — that is the point of variant batching.
    """
    if not networks:
        raise BatchedNetworkError("batched execution needs at least one network")
    reference = networks[0]
    ref_layers = {name: _layer_signature(nodes) for name, nodes in reference.layers.items()}
    ref_connections = {
        key: (conn.wmin, conn.wmax, conn.norm, conn.w.shape, _rule_signature(conn.update_rule))
        for key, conn in reference.connections.items()
    }
    for network in networks[1:]:
        if network.dt != reference.dt:
            raise NetworkTopologyMismatchError("networks differ in dt")
        layers = {name: _layer_signature(nodes) for name, nodes in network.layers.items()}
        if layers != ref_layers:
            raise NetworkTopologyMismatchError(
                "networks differ in layer names, types, sizes or static parameters"
            )
        connections = {
            key: (
                conn.wmin,
                conn.wmax,
                conn.norm,
                conn.w.shape,
                _rule_signature(conn.update_rule),
            )
            for key, conn in network.connections.items()
        }
        if connections != ref_connections:
            raise NetworkTopologyMismatchError(
                "networks differ in connection wiring, bounds or learning rules"
            )


# --------------------------------------------------------------------------
# Layer batches.
# --------------------------------------------------------------------------


class _LayerBatch:
    """Stacked state of one layer across V variants and E example lanes.

    Input layers are *uniform* across variants (every variant sees the same
    encoded raster), so their state carries a leading axis of 1 and
    broadcasts; LIF layers carry full ``(V, E, n)`` state.
    """

    def __init__(self, name: str, nodes_list: Sequence[Nodes]) -> None:
        template = nodes_list[0]
        self.name = name
        self.n = template.n
        self.variants = len(nodes_list)
        self.is_input = isinstance(template, InputNodes)
        self.is_adaptive = isinstance(template, AdaptiveLIFNodes)
        if not self.is_input and not isinstance(template, LIFNodes):
            raise UnsupportedNetworkError(
                f"layer {name!r} uses {type(template).__name__}, which the "
                "batched engine does not mirror"
            )
        self.trace_decay = template.trace_decay
        self.dt = template.dt
        if isinstance(template, LIFNodes):
            self.rest = template.rest
            self.reset = template.reset
            self.decay = template.decay
            self.refractory_period = template.refractory_period
            self.threshold_convention = template.threshold_convention
            self.base_thresh = template.base_thresh.copy()
            self.threshold_scale = np.stack(
                [nodes.threshold_scale for nodes in nodes_list]
            )[:, None, :]
            self.input_gain = np.stack([nodes.input_gain for nodes in nodes_list])[:, None, :]
        if self.is_adaptive:
            self.theta_plus = template.theta_plus
            self.theta_decay = template.theta_decay
            self.theta = np.stack([nodes.theta for nodes in nodes_list])[:, None, :]
        # Transient state — allocated per example-batch width by _ensure_state.
        self.v: Optional[np.ndarray] = None
        self.refractory: Optional[np.ndarray] = None
        self.spikes: Optional[np.ndarray] = None
        self.traces: Optional[np.ndarray] = None
        self._examples = 0

    # ------------------------------------------------------------------ state
    @property
    def uniform_across_variants(self) -> bool:
        """True when every variant lane shares this layer's state (inputs)."""
        return self.is_input

    def state_shape(self, examples: int) -> Tuple[int, int, int]:
        """The stacked state shape for ``examples`` lockstep examples."""
        lanes = 1 if self.is_input else self.variants
        return (lanes, examples, self.n)

    def ensure_state(self, examples: int) -> None:
        """(Re)allocate transient state for an ``examples``-wide run."""
        if self._examples == examples and self.spikes is not None:
            return
        shape = self.state_shape(examples)
        self.spikes = np.zeros(shape, dtype=bool)
        self.traces = np.zeros(shape)
        if not self.is_input:
            self.v = np.full(shape, self.rest)
            self.refractory = np.zeros(shape)
        self._examples = examples

    def reset_state_variables(self) -> None:
        """Reset per-example state; adaptation (theta) persists — as scalar."""
        if self.spikes is None:
            return
        self.spikes.fill(False)
        self.traces.fill(0.0)
        if not self.is_input:
            self.v.fill(self.rest)
            self.refractory.fill(0.0)

    # --------------------------------------------------------------- dynamics
    def thresh(self) -> np.ndarray:
        """Effective per-variant threshold, mirroring ``LIFNodes.thresh``."""
        if self.threshold_convention == "signed_value":
            base = self.base_thresh * self.threshold_scale
        else:
            base = self.rest + (self.base_thresh - self.rest) * self.threshold_scale
        if self.is_adaptive:
            return base + self.theta
        return base

    def set_input(self, spikes: np.ndarray) -> None:
        """Present one step of input spikes, ``(E, n)``, and update traces."""
        np.copyto(self.spikes[0], spikes)
        self.traces *= self.trace_decay
        if self.spikes.any():
            self.traces[self.spikes] = 1.0

    def update_traces(self) -> None:
        self.traces *= self.trace_decay
        if self.spikes.any():
            self.traces[self.spikes] = 1.0

    def step(self, drive: np.ndarray, learning: bool) -> None:
        """One lockstep LIF update — the exact scalar expressions, stacked."""
        self.v = self.decay * (self.v - self.rest) + self.rest
        not_refractory = self.refractory <= 0
        self.v = self.v + not_refractory * self.input_gain * drive
        self.refractory = np.maximum(self.refractory - self.dt, 0.0)
        self.spikes = self.v >= self.thresh()
        if self.spikes.any():
            self.v[self.spikes] = self.reset
            self.refractory[self.spikes] = self.refractory_period
        self.update_traces()
        if self.is_adaptive and learning:
            self.theta *= self.theta_decay
            if self.spikes.any():
                self.theta[self.spikes] += self.theta_plus


# --------------------------------------------------------------------------
# Connection batches.
# --------------------------------------------------------------------------

#: Drive strategies, selected structurally when the engine is compiled.
DRIVE_GENERIC = "generic"
DRIVE_DIAGONAL = "diagonal"
DRIVE_LATERAL = "constant_lateral"


def _sequential_constant_table(value: float, n: int) -> np.ndarray:
    """``table[m]`` = sequential accumulation of ``m`` copies of ``value``."""
    table = np.zeros(n + 1)
    acc = 0.0
    for m in range(1, n + 1):
        acc = acc + value
        table[m] = acc
    return table


class _ConnectionBatch:
    """Weights + drive/plasticity machinery of one connection across variants."""

    def __init__(
        self,
        key: Tuple[str, str],
        source: _LayerBatch,
        target: _LayerBatch,
        connections: Sequence[Connection],
    ) -> None:
        template = connections[0]
        self.key = key
        self.source_batch = source
        self.target_batch = target
        self.wmin = template.wmin
        self.wmax = template.wmax
        self.norm = template.norm
        self.update_rule = template.update_rule
        self.batch_size = len(connections)
        if self.update_rule is not None and not callable(
            getattr(self.update_rule, "update_batched", None)
        ):
            raise UnsupportedNetworkError(
                f"learning rule {type(self.update_rule).__name__} does not "
                "implement update_batched()"
            )

        weights = [connection.w for connection in connections]
        identical = all(np.array_equal(weights[0], w) for w in weights[1:])
        plastic = self.update_rule is not None and type(self.update_rule).__name__ != "NoOp"
        self.shared = identical and not plastic
        if self.shared:
            self.w = weights[0].copy()
        else:
            self.w = np.stack(weights)
        self.strategy = self._select_strategy()
        # Clamp bookkeeping: a full clip is only *needed* right after a
        # normalisation (construction already clamps); in between, clipping
        # the touched rows/columns is bit-identical to the scalar full clip.
        self._full_clamp = False
        self._touched_rows: Optional[np.ndarray] = None
        self._touched_row_variants: List[Tuple[int, np.ndarray]] = []
        self._touched_cols: List[Tuple[int, np.ndarray]] = []

    # -------------------------------------------------------------- structure
    def _select_strategy(self) -> str:
        if not self.shared:
            return DRIVE_GENERIC
        w = self.w
        n_pre, n_post = w.shape
        if n_pre != n_post:
            return DRIVE_GENERIC
        diag = np.diag(w).copy()
        off_diag = w - np.diag(diag)
        if not off_diag.any():
            self._diagonal = diag
            return DRIVE_DIAGONAL
        off_values = w[~np.eye(n_pre, dtype=bool)]
        if diag.any() or off_values.size == 0 or not np.all(off_values == off_values[0]):
            return DRIVE_GENERIC
        constant = float(off_values[0])
        table = _sequential_constant_table(constant, n_pre)
        if not self._lateral_table_is_exact(table):
            return DRIVE_GENERIC
        self._lateral_table = table
        return DRIVE_LATERAL

    def _lateral_table_is_exact(self, table: np.ndarray) -> bool:
        """Check the closed form against the scalar reduction on real masks.

        Exercises every mask size with both diagonal-in and diagonal-out
        subsets, so a NumPy whose reduction order depends on the operand
        count would be caught here and the connection demoted to the
        per-lane generic path.
        """
        w = self.w
        n = w.shape[0]
        rng = np.random.default_rng(n)
        for size in range(1, n + 1):
            chosen = rng.choice(n, size=size, replace=False)
            mask = np.zeros(n, dtype=bool)
            mask[chosen] = True
            expected = w[mask].sum(axis=0)
            counts = int(mask.sum())
            predicted = table[counts - mask.astype(int)]
            if not np.array_equal(expected, predicted):
                return False
        return True

    # ------------------------------------------------------------------ drive
    def compute_drive(self) -> Optional[np.ndarray]:
        """Post-synaptic drive, broadcastable to ``(V, E, n_post)``.

        Returns ``None`` when the source is silent (the scalar path adds an
        exact zero vector then, so skipping the add is bit-identical).
        """
        spikes = self.source_batch.spikes
        if not spikes.any():
            return None
        if self.strategy == DRIVE_DIAGONAL:
            return np.where(spikes, self._diagonal, 0.0)
        if self.strategy == DRIVE_LATERAL:
            counts = spikes.sum(axis=2)
            return self._lateral_table[counts[:, :, None] - spikes]
        return self._generic_drive(spikes)

    def _generic_drive(self, spikes: np.ndarray) -> np.ndarray:
        lanes, examples, _ = spikes.shape
        n_post = self.target_batch.n
        if self.shared:
            if lanes == 1:
                out = np.zeros((1, examples, n_post))
                for e in range(examples):
                    mask = spikes[0, e]
                    if mask.any():
                        out[0, e] = self.w[mask].sum(axis=0)
                return out
            out = np.zeros((lanes, examples, n_post))
            for v in range(lanes):
                for e in range(examples):
                    mask = spikes[v, e]
                    if mask.any():
                        out[v, e] = self.w[mask].sum(axis=0)
            return out
        variants = self.batch_size
        if lanes == 1:
            # Uniform source (the encoded input): one stacked reduction per
            # example serves every variant at once.
            out = np.zeros((variants, examples, n_post))
            for e in range(examples):
                mask = spikes[0, e]
                if mask.any():
                    out[:, e, :] = self.w[:, mask, :].sum(axis=1)
            return out
        out = np.zeros((variants, examples, n_post))
        for v in range(variants):
            for e in range(examples):
                mask = spikes[v, e]
                if mask.any():
                    out[v, e] = self.w[v][mask].sum(axis=0)
        return out

    # ------------------------------------------------------------- plasticity
    @property
    def stacked_w(self) -> np.ndarray:
        """The per-variant weight stack (learning rules operate on this)."""
        return self.w

    def touch_rows(self, mask: np.ndarray) -> None:
        """Record pre-synaptic rows modified this step (shared across variants)."""
        if self._touched_rows is None:
            self._touched_rows = mask.copy()
        else:
            self._touched_rows |= mask

    def touch_rows_variant(self, variant: int, mask: np.ndarray) -> None:
        """Record pre-synaptic rows modified this step for one variant."""
        self._touched_row_variants.append((variant, mask))

    def touch_cols(self, variant: int, mask: np.ndarray) -> None:
        """Record post-synaptic columns modified this step for one variant."""
        self._touched_cols.append((variant, mask))

    def apply_update(self) -> None:
        if self.update_rule is not None:
            self.update_rule.update_batched(self)
            self.clamp()

    def clamp(self) -> None:
        """Clip modified weights into ``[wmin, wmax]``.

        Full-matrix right after a normalisation (where the scalar path's
        every-step clip actually bites), touched slices otherwise — clipping
        an already-in-range value is the identity, so the results are
        bit-identical to the scalar engine's unconditional full clip.
        """
        if self._full_clamp:
            np.clip(self.w, self.wmin, self.wmax, out=self.w)
            self._full_clamp = False
        else:
            if self._touched_rows is not None and self._touched_rows.any():
                if self.shared:
                    self.w[self._touched_rows, :] = np.clip(
                        self.w[self._touched_rows, :], self.wmin, self.wmax
                    )
                else:
                    self.w[:, self._touched_rows, :] = np.clip(
                        self.w[:, self._touched_rows, :], self.wmin, self.wmax
                    )
            for variant, mask in self._touched_row_variants:
                self.w[variant][mask, :] = np.clip(
                    self.w[variant][mask, :], self.wmin, self.wmax
                )
            for variant, mask in self._touched_cols:
                if self.shared:
                    self.w[:, mask] = np.clip(self.w[:, mask], self.wmin, self.wmax)
                else:
                    self.w[variant][:, mask] = np.clip(
                        self.w[variant][:, mask], self.wmin, self.wmax
                    )
        self._touched_rows = None
        self._touched_row_variants = []
        self._touched_cols = []

    def normalize(self) -> None:
        """Per-target weight normalisation, mirroring ``Connection.normalize``."""
        if self.norm is None:
            return
        if self.shared:
            totals = self.w.sum(axis=0)
            totals[totals == 0] = 1.0
            self.w *= self.norm / totals
        else:
            totals = self.w.sum(axis=1)
            totals[totals == 0] = 1.0
            self.w *= (self.norm / totals)[:, None, :]
        self._full_clamp = True

    def variant_weights(self, variant: int) -> np.ndarray:
        """The weight matrix of one variant (a copy-free view when stacked)."""
        if self.shared:
            return self.w
        return self.w[variant]


# --------------------------------------------------------------------------
# Monitors.
# --------------------------------------------------------------------------


class BatchedSpikeMonitor:
    """Spike recorder over a batched layer.

    ``counts_only=True`` accumulates per-lane spike counts without storing
    the raster (what the classification pipeline needs); otherwise the full
    ``(time_steps, V|1, E, n)`` raster is kept in a preallocated buffer.
    """

    def __init__(self, layer_name: str, *, counts_only: bool = False) -> None:
        self.layer_name = layer_name
        self.counts_only = counts_only
        self._counts: Optional[np.ndarray] = None
        self._buffer: Optional[np.ndarray] = None
        self._length = 0

    def reserve(self, time_steps: int, layer: _LayerBatch) -> None:
        """Size the buffers for a run of ``time_steps`` steps."""
        shape = layer.state_shape(layer._examples)
        if self.counts_only:
            if self._counts is None or self._counts.shape != shape:
                self._counts = np.zeros(shape, dtype=np.int64)
            return
        if (
            self._buffer is None
            or self._buffer.shape[1:] != shape
            or self._buffer.shape[0] < self._length + time_steps
        ):
            if self._buffer is not None and self._buffer.shape[1:] != shape:
                self._length = 0  # lane layout changed; previous records are void
            capacity = self._length + int(time_steps)
            buffer = np.zeros((capacity,) + shape, dtype=bool)
            if self._length:
                buffer[: self._length] = self._buffer[: self._length]
            self._buffer = buffer

    def record(self, layer: _LayerBatch) -> None:
        """Capture the layer's current spikes (one simulation step)."""
        if self.counts_only:
            if self._counts is None:
                self.reserve(0, layer)
            self._counts += layer.spikes
            return
        if self._buffer is None or self._length >= self._buffer.shape[0]:
            grow = max(64, self._length)
            self.reserve(grow, layer)
        self._buffer[self._length] = layer.spikes
        self._length += 1

    def spike_counts(self) -> np.ndarray:
        """Per-lane spike counts, shape ``(V|1, E, n)``."""
        if self.counts_only:
            if self._counts is None:
                return np.zeros((0, 0, 0), dtype=np.int64)
            return self._counts.copy()
        if self._length == 0:
            return np.zeros((0, 0, 0), dtype=np.int64)
        return self._buffer[: self._length].sum(axis=0)

    def raster(self, variant: int = 0, example: int = 0) -> np.ndarray:
        """One lane's raster, shape ``(time_steps, n)`` (raster mode only)."""
        if self.counts_only:
            raise ValueError("raster() is unavailable on a counts-only monitor")
        if self._length == 0:
            return np.zeros((0, 0), dtype=bool)
        lanes = self._buffer.shape[1]
        return self._buffer[: self._length, min(variant, lanes - 1), example].copy()

    def reset(self) -> None:
        """Clear the recording (buffers are kept for reuse)."""
        self._length = 0
        if self._counts is not None:
            self._counts.fill(0)


class BatchedStateMonitor:
    """Records a state variable (``v``, ``theta``, ``traces``) per lane."""

    _VARIABLES = {"v": "v", "theta": "theta", "traces": "traces"}

    def __init__(self, layer_name: str, variable: str) -> None:
        if variable not in self._VARIABLES:
            raise ValueError(
                f"variable must be one of {sorted(self._VARIABLES)}, got {variable!r}"
            )
        self.layer_name = layer_name
        self.variable = variable
        self._buffer: Optional[np.ndarray] = None
        self._length = 0
        self._shape: Optional[Tuple[int, ...]] = None

    def reserve(self, time_steps: int, layer: _LayerBatch) -> None:
        """Size the buffer for a run of ``time_steps`` further steps."""
        shape = np.broadcast_shapes(
            layer.state_shape(layer._examples), getattr(layer, self.variable).shape
        )
        if (
            self._buffer is None
            or self._shape != shape
            or self._buffer.shape[0] < self._length + time_steps
        ):
            capacity = self._length + int(time_steps)
            buffer = np.zeros((capacity,) + shape)
            if self._length and self._shape == shape:
                buffer[: self._length] = self._buffer[: self._length]
            else:
                self._length = 0
            self._buffer = buffer
            self._shape = shape

    def record(self, layer: _LayerBatch) -> None:
        """Capture the layer's current state value (one simulation step)."""
        value = getattr(layer, self.variable)
        if self._buffer is None or self._length >= self._buffer.shape[0]:
            self.reserve(max(64, self._length or 1), layer)
        self._buffer[self._length] = value
        self._length += 1

    def trace(self, variant: int = 0, example: int = 0) -> np.ndarray:
        """One lane's recorded trace, shape ``(time_steps, n)``."""
        if self._length == 0:
            return np.zeros((0, 0))
        lanes = self._buffer.shape[1]
        examples = self._buffer.shape[2]
        return self._buffer[
            : self._length, min(variant, lanes - 1), min(example, examples - 1)
        ].copy()

    def reset(self) -> None:
        """Clear the recording (the buffer is kept for reuse)."""
        self._length = 0


# --------------------------------------------------------------------------
# The batched network.
# --------------------------------------------------------------------------


class BatchedNetwork:
    """V topology-sharing networks (× E lockstep examples) advanced together.

    Build with :meth:`from_networks`; drive with :meth:`present` /
    :meth:`run`, which mirror the scalar engine's semantics exactly (same
    phase order per step: inputs → drive → integrate-and-fire → plasticity
    → recording).
    """

    def __init__(self, dt: float) -> None:
        self.dt = dt
        self.layers: Dict[str, _LayerBatch] = {}
        self.connections: Dict[Tuple[str, str], _ConnectionBatch] = {}
        self.monitors: Dict[str, object] = {}
        self.learning = True
        self.variants = 1

    # ---------------------------------------------------------------- factory
    @classmethod
    def from_networks(cls, networks: Sequence[Network]) -> "BatchedNetwork":
        """Compile V scalar networks (variants of one topology) for lockstep.

        Weights, corruptions (threshold scale, input gain) and adaptation
        state are copied from each network, so the batch can be built from
        freshly fault-injected networks (variant batching) or from a single
        trained network (example batching with ``V == 1``).
        """
        assert_same_topology(networks)
        if not reduction_contract_holds():
            raise UnsupportedNetworkError(
                "this NumPy's reduction order breaks the batched engine's "
                "bit-parity contract; use the scalar engine"
            )
        reference = networks[0]
        batched = cls(reference.dt)
        batched.variants = len(networks)
        for name in reference.layers:
            batched.layers[name] = _LayerBatch(
                name, [network.layers[name] for network in networks]
            )
        for key in reference.connections:
            batched.connections[key] = _ConnectionBatch(
                key,
                batched.layers[key[0]],
                batched.layers[key[1]],
                [network.connections[key] for network in networks],
            )
        return batched

    # ------------------------------------------------------------ composition
    def add_monitor(self, name: str, monitor) -> object:
        """Register a :class:`BatchedSpikeMonitor` / :class:`BatchedStateMonitor`."""
        if monitor.layer_name not in self.layers:
            raise KeyError(f"unknown layer {monitor.layer_name!r}")
        self.monitors[name] = monitor
        return monitor

    def set_learning(self, learning: bool) -> None:
        """Globally enable or disable plasticity and threshold adaptation."""
        self.learning = bool(learning)

    def normalize_connections(self) -> None:
        """Apply per-target weight normalisation on every connection that has one."""
        for connection in self.connections.values():
            connection.normalize()

    def reset_state_variables(self) -> None:
        """Reset per-example dynamic state in every layer (theta persists)."""
        for layer in self.layers.values():
            layer.reset_state_variables()

    def reset_monitors(self) -> None:
        """Reset every attached monitor's recording."""
        for monitor in self.monitors.values():
            monitor.reset()

    # ------------------------------------------------------------- simulation
    def _normalise_inputs(
        self, inputs: Dict[str, np.ndarray], time_steps: Optional[int]
    ) -> Tuple[Dict[str, np.ndarray], int, int]:
        rasters: Dict[str, np.ndarray] = {}
        examples: Optional[int] = None
        for name, raster in inputs.items():
            layer = self.layers.get(name)
            if layer is None:
                raise KeyError(f"unknown input layer {name!r}")
            if not layer.is_input:
                raise TypeError(f"layer {name!r} is not an input layer")
            raster = np.asarray(raster, dtype=bool)
            if raster.ndim == 2:
                raster = raster[None, :, :]
            if raster.ndim != 3 or raster.shape[2] != layer.n:
                raise ValueError(
                    f"input raster for {name!r} must have shape (time_steps, "
                    f"{layer.n}) or (examples, time_steps, {layer.n}), got "
                    f"{np.asarray(inputs[name]).shape}"
                )
            if examples is None:
                examples = raster.shape[0]
            elif raster.shape[0] != examples:
                raise ValueError("all input rasters must batch the same examples")
            if time_steps is None:
                time_steps = raster.shape[1]
            elif raster.shape[1] != time_steps:
                raise ValueError(
                    f"input raster for {name!r} must cover {time_steps} steps, "
                    f"got {raster.shape[1]}"
                )
            rasters[name] = raster
        if time_steps is None:
            raise ValueError("time_steps must be given when there are no inputs")
        return rasters, int(time_steps), examples or 1

    def run(self, inputs: Dict[str, np.ndarray], time_steps: Optional[int] = None) -> None:
        """Advance every lane in lockstep.

        ``inputs`` maps input-layer names to spike rasters of shape
        ``(time_steps, n)`` (one example, shared by every variant) or
        ``(examples, time_steps, n)`` (example batching — learning must be
        disabled, because the scalar reference trains sequentially).
        """
        rasters, time_steps, examples = self._normalise_inputs(inputs, time_steps)
        if self.learning and examples > 1:
            raise BatchedNetworkError(
                "example batching requires learning to be disabled; the scalar "
                "engine trains strictly one example at a time"
            )
        for layer in self.layers.values():
            layer.ensure_state(examples)
        for monitor in self.monitors.values():
            monitor.reserve(time_steps, self.layers[monitor.layer_name])

        non_input = [
            (name, layer) for name, layer in self.layers.items() if not layer.is_input
        ]
        shape_by_layer = {
            name: (self.variants, examples, layer.n) for name, layer in non_input
        }
        for t in range(time_steps):
            # 1. Present the encoded input spikes.
            for name, raster in rasters.items():
                self.layers[name].set_input(raster[:, t, :])
            # 2. Accumulate synaptic drive from the current source spikes.
            drive = {name: np.zeros(shape) for name, shape in shape_by_layer.items()}
            for (_, target), connection in self.connections.items():
                if target in drive:
                    contribution = connection.compute_drive()
                    if contribution is not None:
                        drive[target] += contribution
            # 3. Integrate and fire.
            for name, layer in non_input:
                layer.step(drive[name], self.learning)
            # 4. Plasticity.
            if self.learning:
                for connection in self.connections.values():
                    connection.apply_update()
            # 5. Recording.
            for monitor in self.monitors.values():
                monitor.record(self.layers[monitor.layer_name])

    def present(
        self,
        inputs: Dict[str, np.ndarray],
        *,
        learning: bool,
        normalize: bool = True,
        time_steps: Optional[int] = None,
    ) -> None:
        """One presentation, mirroring ``DiehlAndCook2015.present`` for a batch."""
        self.set_learning(learning)
        if normalize and learning:
            self.normalize_connections()
        self.reset_monitors()
        self.reset_state_variables()
        self.run(inputs, time_steps)

    # -------------------------------------------------------------- accessors
    def variant_weights(self, key: Tuple[str, str], variant: int) -> np.ndarray:
        """The weight matrix of ``variant`` on connection ``key``."""
        return self.connections[key].variant_weights(variant)

    def layer_theta(self, name: str, variant: int) -> np.ndarray:
        """One variant's adaptation state on an adaptive layer."""
        layer = self.layers[name]
        if not layer.is_adaptive:
            raise ValueError(f"layer {name!r} has no theta")
        return layer.theta[variant, 0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedNetwork(variants={self.variants}, "
            f"layers={list(self.layers)}, connections={list(self.connections)})"
        )
