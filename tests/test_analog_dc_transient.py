"""Tests for the DC and transient solvers against analytic circuit results."""

import numpy as np
import pytest

from repro.analog import (
    Circuit,
    PulseSource,
    dc_operating_point,
    dc_sweep,
    transient_analysis,
)
from repro.analog.mna import ConvergenceError, MNASystem, SolverOptions
from repro.analog.mosfet import NMOS_65NM, PMOS_65NM


def voltage_divider(r_top="1k", r_bottom="1k", supply=1.0):
    circuit = Circuit("divider")
    circuit.add_voltage_source("V1", "in", "0", supply)
    circuit.add_resistor("R1", "in", "out", r_top)
    circuit.add_resistor("R2", "out", "0", r_bottom)
    return circuit


class TestDCOperatingPoint:
    def test_voltage_divider(self):
        op = dc_operating_point(voltage_divider())
        assert op["out"] == pytest.approx(0.5, rel=1e-6)
        assert op["in"] == pytest.approx(1.0, rel=1e-9)

    def test_asymmetric_divider(self):
        op = dc_operating_point(voltage_divider("3k", "1k"))
        assert op["out"] == pytest.approx(0.25, rel=1e-6)

    def test_source_branch_current(self):
        op = dc_operating_point(voltage_divider("1k", "1k"))
        assert abs(op.current("V1")) == pytest.approx(0.5e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit("ir")
        circuit.add_current_source("I1", "0", "out", "1m")
        circuit.add_resistor("R1", "out", "0", "2k")
        op = dc_operating_point(circuit)
        assert op["out"] == pytest.approx(2.0, rel=1e-6)

    def test_diode_clamp_voltage(self):
        circuit = Circuit("diode")
        circuit.add_voltage_source("V1", "in", "0", 2.0)
        circuit.add_resistor("R1", "in", "out", "10k")
        circuit.add_diode("D1", "out", "0")
        op = dc_operating_point(circuit)
        assert 0.4 < op["out"] < 0.8

    def test_ground_voltage_is_zero(self):
        op = dc_operating_point(voltage_divider())
        assert op.voltage("0") == 0.0

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            MNASystem(Circuit("empty"))


class TestDCSweep:
    def test_linear_sweep_tracks_source(self):
        circuit = voltage_divider()
        sweep = dc_sweep(circuit, "V1", np.linspace(0, 2, 5))
        assert np.allclose(sweep.voltage("out"), np.linspace(0, 1, 5), atol=1e-9)
        assert len(sweep) == 5

    def test_sweep_restores_original_source_value(self):
        circuit = voltage_divider(supply=1.0)
        dc_sweep(circuit, "V1", [0.0, 2.0])
        assert circuit["V1"].value == 1.0

    def test_sweep_rejects_non_source(self):
        circuit = voltage_divider()
        with pytest.raises(TypeError):
            dc_sweep(circuit, "R1", [1.0])


class TestTransient:
    def test_rc_charging_matches_analytic(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", "1k")
        circuit.add_capacitor("C1", "out", "0", "1u")
        result = transient_analysis(
            circuit, stop_time="5m", time_step="10u", use_initial_conditions=True
        )
        tau = 1e-3
        expected = 1.0 - np.exp(-result.time / tau)
        # Backward Euler with tau/100 steps tracks the exponential closely.
        assert np.max(np.abs(result.voltage("out") - expected)) < 0.02

    def test_transient_starts_from_dc_by_default(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", "1k")
        circuit.add_capacitor("C1", "out", "0", "1u")
        result = transient_analysis(circuit, stop_time="100u", time_step="10u")
        assert result.voltage("out")[0] == pytest.approx(1.0, abs=1e-3)

    def test_pulse_drives_rc(self):
        circuit = Circuit("rc_pulse")
        circuit.add_voltage_source(
            "V1", "in", "0", PulseSource(0, 1, width="1m", period="2m", rise="1u", fall="1u")
        )
        circuit.add_resistor("R1", "in", "out", "1k")
        circuit.add_capacitor("C1", "out", "0", "100n")
        result = transient_analysis(
            circuit, stop_time="2m", time_step="5u", use_initial_conditions=True
        )
        out = result.voltage("out")
        assert out.max() > 0.95
        assert out[-1] < 0.05

    def test_inductor_steady_state_current(self):
        circuit = Circuit("rl")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", "1k")
        circuit.add_inductor("L1", "out", "0", "1m")
        result = transient_analysis(
            circuit, stop_time="100u", time_step="0.5u", use_initial_conditions=True
        )
        assert result.current("L1")[-1] == pytest.approx(1e-3, rel=0.02)

    def test_waveform_accessor_and_final_voltages(self):
        circuit = voltage_divider()
        circuit.add_capacitor("C1", "out", "0", "1n")
        result = transient_analysis(circuit, stop_time="1u", time_step="10n")
        wave = result.waveform("out")
        assert len(wave) == len(result)
        assert result.final_voltages()["out"] == pytest.approx(0.5, abs=1e-3)

    def test_invalid_time_step_rejected(self):
        with pytest.raises(ValueError):
            transient_analysis(voltage_divider(), stop_time="1u", time_step="2u")


class TestNonlinearSolver:
    def test_cmos_inverter_rails(self):
        circuit = Circuit("inv")
        circuit.add_voltage_source("VDD", "vdd", "0", 1.0)
        circuit.add_voltage_source("VIN", "in", "0", 0.0)
        circuit.add_mosfet("MP", "out", "in", "vdd", PMOS_65NM, width="400n", length="65n")
        circuit.add_mosfet("MN", "out", "in", "0", NMOS_65NM, width="520n", length="65n")
        low_in = dc_operating_point(circuit)
        assert low_in["out"] == pytest.approx(1.0, abs=0.01)
        circuit.set_source_value("VIN", 1.0)
        high_in = dc_operating_point(circuit)
        assert high_in["out"] == pytest.approx(0.0, abs=0.01)

    def test_solver_options_can_force_failure(self):
        # One iteration cannot converge a strongly nonlinear circuit.
        circuit = Circuit("diode")
        circuit.add_voltage_source("V1", "in", "0", 2.0)
        circuit.add_resistor("R1", "in", "out", "10k")
        circuit.add_diode("D1", "out", "0")
        options = SolverOptions(max_iterations=1, gmin_stepping=(1e-3,))
        with pytest.raises(ConvergenceError):
            dc_operating_point(circuit, options=options)
