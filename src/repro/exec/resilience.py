"""Fault-tolerant campaign execution: supervision around the sweep executor.

:class:`~repro.exec.executor.SweepExecutor` assumes a perfect world — one
crashed or hung worker kills the whole campaign.  This module wraps it in a
supervision layer, :class:`ResilientExecutor`, that keeps the executor's
bit-identical-results contract while surviving the three failure modes a
long campaign actually meets:

* **Worker death** — a worker process that dies mid-task breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`.  The supervisor catches
  ``BrokenProcessPool``, rebuilds the pool, and re-dispatches *only* the
  tasks that were in flight when it broke; completed siblings stay cached.
* **Transient task failures and hangs** — every task carries a retry budget
  with seeded exponential backoff plus jitter (the schedule is a pure
  function of ``(policy seed, task key, attempt)``, so it is reproducible),
  and an optional per-task timeout after which a lost dispatch is replaced.
* **Stragglers** — once enough tasks have finished, a percentile-based
  deadline flags dispatches running far past their peers and submits one
  duplicate each.  *First result wins*: every dispatch of a task computes
  the same bits (results are a pure function of config seed and attack
  label), so whichever lands first is cached and the merge stays
  bit-identical to a clean serial run.

Failure handling never reorders or changes results — it only changes *when*
and *in which process* a task runs, which the executor's determinism
contract already makes irrelevant.  The counters (retries, timeouts,
requeues, pool rebuilds, quarantined cache entries) land in
:class:`~repro.exec.executor.ExecutionStats` and flow into
``repro report`` and artifact provenance, so a chaotic run is auditable
after the fact.  Chaos itself is injected by :mod:`repro.exec.chaos` and
regression-tested in ``tests/test_exec_resilience.py``.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import math
import time
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exec import executor as _executor
from repro.exec.chaos import FaultPlan, install_worker_plan, worker_plan
from repro.exec.executor import SweepExecutor, TaskTiming


class ResilienceExecutorError(RuntimeError):
    """Base of the failures the supervision layer itself gives up with."""


class TaskTimeoutError(ResilienceExecutorError):
    """A task exceeded its timeout on every dispatch of its retry budget."""


class WorkerCrashError(ResilienceExecutorError):
    """Worker processes kept dying past the pool-rebuild budget."""


def _uniform(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one (task, attempt) pair."""
    digest = hashlib.sha256(f"backoff:{seed}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry budget, timeout, and seeded backoff schedule.

    ``delay(key, retry_number)`` grows exponentially
    (``backoff_base * backoff_factor**(retry_number-1)``, capped at
    ``backoff_max``) and is spread by up to ``jitter`` of itself — but the
    jitter is drawn from a SHA-256 of ``(seed, key, retry_number)``, never
    from global RNG state, so the whole backoff schedule of a campaign is
    reproducible run-to-run.
    """

    max_retries: int = 2
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    max_pool_rebuilds: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {self.task_timeout}")

    def delay(self, key: str, retry_number: int) -> float:
        """Backoff before retry ``retry_number`` (1-based) of task ``key``."""
        base = min(
            self.backoff_base * self.backoff_factor ** max(retry_number - 1, 0),
            self.backoff_max,
        )
        return base * (1.0 + self.jitter * _uniform(self.seed, key, retry_number))


@dataclass(frozen=True)
class StragglerPolicy:
    """When to re-dispatch a dispatch that runs far past its peers.

    Once at least ``min_samples`` tasks of the batch have finished, any
    dispatch older than ``factor`` times the ``percentile``-th percentile
    of the finished durations (but never younger than ``min_seconds``)
    gets *one* duplicate submission.  First result wins, so a straggler
    that eventually finishes is simply ignored — re-dispatch trades spare
    worker capacity for tail latency without touching the numbers.
    """

    enabled: bool = True
    percentile: float = 90.0
    factor: float = 4.0
    min_samples: int = 6
    min_seconds: float = 0.5

    def deadline(self, durations: List[float]) -> Optional[float]:
        """The age (seconds) past which an in-flight dispatch is a straggler.

        ``None`` while there are not yet enough finished samples.
        """
        if not self.enabled or len(durations) < max(self.min_samples, 1):
            return None
        ordered = sorted(durations)
        index = max(0, math.ceil(self.percentile / 100.0 * len(ordered)) - 1)
        return max(self.min_seconds, self.factor * ordered[index])


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the supervision layer needs to know, in one value.

    ``chaos`` optionally carries a :class:`~repro.exec.chaos.FaultPlan`
    that is installed into every worker (and applied on the serial path)
    — the deterministic fault-injection harness the resilience tests and
    the ``--chaos`` CLI flag use.  ``tick`` is the supervision poll
    interval: how often the main loop wakes to check timeouts, stragglers
    and due retries.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    straggler: StragglerPolicy = field(default_factory=StragglerPolicy)
    chaos: Optional[FaultPlan] = None
    tick: float = 0.05

    @classmethod
    def from_options(
        cls,
        *,
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        chaos: Optional[FaultPlan] = None,
        seed: int = 0,
    ) -> "ResiliencePolicy":
        """The policy the CLI flags map to (timeout/retries/chaos)."""
        return cls(
            retry=RetryPolicy(
                max_retries=max_retries, task_timeout=task_timeout, seed=seed
            ),
            chaos=chaos,
        )


def _initialize_resilient_worker(pipeline_factory, plan: Optional[FaultPlan]) -> None:
    """Pool initializer: build the worker pipeline and install its fault plan."""
    _executor._initialize_worker(pipeline_factory)
    install_worker_plan(plan)


def _execute_resilient_task(key: str, attack, attempt: int) -> Tuple:
    """Run one dispatch in a worker, applying any installed chaos first."""
    start = time.perf_counter()
    plan = worker_plan()
    if plan is not None:
        plan.apply(key, attempt, allow_kill=True)
    pipeline = _executor._WORKER_PIPELINE
    if attack is None:
        result = pipeline.run_baseline()
    else:
        result = pipeline.run(attack)
    return key, attempt, result, time.perf_counter() - start


@dataclass
class _Dispatch:
    """Book-keeping for one submitted (task, attempt) pair."""

    key: str
    attempt: int
    submitted_at: float
    timed_out: bool = False
    duplicated: bool = False


class ResilientExecutor(SweepExecutor):
    """A :class:`SweepExecutor` that survives worker death, hangs and flakes.

    Drop-in replacement: same constructor plus a ``policy`` keyword.  The
    serial path retries transient task failures with the policy's seeded
    backoff (and applies the chaos plan in-process, demoting ``kill``
    faults to transient failures); the parallel path replaces the base
    class's submit-and-wait loop with a supervision loop implementing
    timeout, retry/backoff, straggler re-dispatch and pool rebuild.

    Two deliberate semantic differences from the base class:

    * A task failure is only raised after the retry budget is exhausted,
      and — like the base class — only after every sibling task has been
      drained into the cache.
    * With a chaos plan installed, the serial path skips the lockstep
      batched route so faults inject per task (the batched and per-run
      paths are bit-identical by the engine parity contract, so this
      changes timing only, never numbers).
    """

    def __init__(self, *args, policy: Optional[ResiliencePolicy] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.policy = policy if policy is not None else ResiliencePolicy()
        #: Lease-aware dispatch hook (:mod:`repro.exec.elastic`): a callable
        #: invoked around every serial task and on every supervision-loop
        #: iteration.  The elastic scheduler installs its rate-limited
        #: lease/presence renewal here, so long chunks keep heartbeating
        #: while their tasks run.  ``None`` = no elastic coordination.
        self.heartbeat: Optional[Callable[[], None]] = None

    def _beat(self) -> None:
        """Invoke the heartbeat hook; shared-FS hiccups must not kill tasks."""
        if self.heartbeat is not None:
            try:
                self.heartbeat()
            except OSError:  # pragma: no cover - shared-FS hiccup
                pass

    def map(self, attacks) -> List:
        """Evaluate every attack (see :meth:`SweepExecutor.map`), then sync
        the cache's quarantine count into this executor's stats so corrupt
        entries recovered from show up in reports and provenance."""
        results = super().map(attacks)
        self.stats.quarantined = getattr(
            self.cache, "quarantined_entries", self.stats.quarantined
        )
        return results

    # ------------------------------------------------------------------ serial
    def _run_serial(self, pending: Dict[str, object], total: int) -> None:
        self._beat()
        if self.policy.chaos is None:
            if self.dispatcher.supports(self.pipeline, total):
                if self._run_serial_batched(pending, total):
                    return
            else:
                self.dispatcher.note_serial()
        else:
            # Chaos targets individual tasks; force the per-run path so
            # each task is a separate injection point.
            self.dispatcher.note_serial()
        done = 0
        for key, attack in pending.items():
            self._beat()
            result, seconds = self._run_serial_task(key, attack)
            timing = TaskTiming(key=key, seconds=seconds, worker_mode="serial")
            self.cache.put(key, result)
            self.stats.record(timing)
            done += 1
            if self._progress is not None:
                self._progress(timing, done, total)

    def _run_serial_task(self, key: str, attack) -> Tuple[object, float]:
        """One task on the serial path: chaos, then retry with backoff."""
        retry = self.policy.retry
        chaos = self.policy.chaos
        attempt = 0
        while True:
            start = time.perf_counter()
            try:
                if chaos is not None:
                    chaos.apply(key, attempt, allow_kill=False)
                if attack is None:
                    result = self.pipeline.run_baseline()
                else:
                    result = self.pipeline.run(attack)
                return result, time.perf_counter() - start
            except Exception:
                # KeyboardInterrupt/SystemExit (BaseException) propagate:
                # an interrupt must stop the campaign, not be retried.
                if attempt >= retry.max_retries:
                    raise
                attempt += 1
                self.stats.retries += 1
                time.sleep(retry.delay(key, attempt))

    # ---------------------------------------------------------------- parallel
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The worker pool, with the chaos plan installed by the initializer."""
        if self._pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_initialize_resilient_worker,
                initargs=(self._worker_factory(), self.policy.chaos),
            )
        return self._pool

    def _run_parallel(self, pending: Dict[str, object], total: int) -> None:
        supervisor = _Supervisor(self, pending, total)
        supervisor.run()

    def _discard_pool(self) -> None:
        """Drop the (broken or clogged) pool without waiting on its tasks."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class _Supervisor:
    """The parallel supervision loop of one :meth:`SweepExecutor.map` batch.

    Owns the in-flight dispatch table, the retry schedule and the
    failure ledger for the batch; see :class:`ResilientExecutor` for the
    semantics it implements.
    """

    def __init__(
        self, executor: ResilientExecutor, pending: Dict[str, object], total: int
    ) -> None:
        self.executor = executor
        self.pending = pending
        self.total = total
        self.policy = executor.policy
        self.resolved: set = set()
        self.failures: Dict[str, BaseException] = {}
        self.inflight: Dict[object, _Dispatch] = {}
        self.retry_heap: List[Tuple[float, int, str]] = []
        self._heap_seq = itertools.count()
        self.dispatch_counts: Dict[str, int] = {}
        self.durations: List[float] = []
        self.done = 0
        self.rebuilds = 0
        #: Keys whose dispatch was lost to a dead pool (re-dispatched on rebuild).
        self.lost_keys: set = set()
        self.pool_broken = False

    # ------------------------------------------------------------- submission
    def _submit(self, key: str) -> None:
        attempt = self.dispatch_counts.get(key, 0)
        self.dispatch_counts[key] = attempt + 1
        try:
            pool = self.executor._ensure_pool()
            future = pool.submit(
                _execute_resilient_task, key, self.pending[key], attempt
            )
        except BrokenProcessPool:
            # The pool died between the last collection and this submit;
            # the dispatch never happened — queue it for the rebuilt pool.
            self.dispatch_counts[key] = attempt
            self.lost_keys.add(key)
            self.pool_broken = True
            return
        self.inflight[future] = _Dispatch(key, attempt, time.monotonic())

    def _schedule_retry(self, key: str) -> None:
        retry_number = self.dispatch_counts[key]  # dispatches so far = retry #
        ready = time.monotonic() + self.policy.retry.delay(key, retry_number)
        heapq.heappush(self.retry_heap, (ready, next(self._heap_seq), key))

    def _active(self, key: str) -> bool:
        return key not in self.resolved and key not in self.failures

    # ------------------------------------------------------------------- loop
    def run(self) -> None:
        """Drive the batch until every task is resolved or permanently failed."""
        for key in self.pending:
            self._submit(key)
        while any(self._active(key) for key in self.pending):
            self.executor._beat()
            now = time.monotonic()
            self._launch_due_retries(now)
            if self.pool_broken:
                self._rebuild_pool()
                continue
            if not self.inflight:
                if self.retry_heap:
                    time.sleep(
                        max(0.0, min(self.policy.tick, self.retry_heap[0][0] - now))
                    )
                    continue
                # Every active task must be in flight or scheduled; a bare
                # loop here would spin forever, so fail loudly instead.
                raise RuntimeError(
                    "supervision invariant violated: active tasks with no "
                    "dispatch in flight and no retry scheduled"
                )
            finished, _ = wait(
                set(self.inflight), timeout=self.policy.tick,
                return_when=FIRST_COMPLETED,
            )
            self._collect(finished)
            if self.pool_broken:
                self._rebuild_pool()
                continue
            now = time.monotonic()
            self._scan_timeouts(now)
            if self.pool_broken:
                self._rebuild_pool()
                continue
            self._scan_stragglers(now)
            if self.pool_broken:
                self._rebuild_pool()
        if self.failures:
            # Siblings were drained first, so completed results are cached
            # and a retrying map() only re-runs the failed tasks.
            first = next(key for key in self.pending if key in self.failures)
            raise self.failures[first]

    def _launch_due_retries(self, now: float) -> None:
        while self.retry_heap and self.retry_heap[0][0] <= now:
            _, _, key = heapq.heappop(self.retry_heap)
            if self._active(key):
                self._submit(key)

    def _collect(self, finished) -> None:
        """Absorb finished futures (sets ``pool_broken`` when workers died)."""
        stats = self.executor.stats
        for future in finished:
            dispatch = self.inflight.pop(future)
            key = dispatch.key
            try:
                _, _, result, seconds = future.result()
            except (BrokenProcessPool, CancelledError):
                # The dispatch died with its pool (or was cancelled during a
                # teardown); its task is lost, not failed.
                if self._active(key):
                    self.lost_keys.add(key)
                self.pool_broken = True
                continue
            except Exception as error:  # noqa: BLE001 - ledgered, raised at end
                if not self._active(key):
                    continue
                if self.dispatch_counts[key] <= self.policy.retry.max_retries:
                    stats.retries += 1
                    self._schedule_retry(key)
                else:
                    self.failures[key] = error
                continue
            if not self._active(key):
                continue  # a duplicate dispatch already won this task
            self.resolved.add(key)
            self.durations.append(seconds)
            timing = TaskTiming(key=key, seconds=seconds, worker_mode="parallel")
            self.executor.cache.put(key, result)
            stats.record(timing)
            self.done += 1
            if self.executor._progress is not None:
                self.executor._progress(timing, self.done, self.total)

    # -------------------------------------------------------------- recovery
    def _rebuild_pool(self) -> None:
        """Replace a dead or clogged pool; re-dispatch only the lost tasks."""
        stats = self.executor.stats
        self.rebuilds += 1
        stats.pool_rebuilds += 1
        if self.rebuilds > self.policy.retry.max_pool_rebuilds:
            raise WorkerCrashError(
                f"worker processes died through {self.rebuilds} pool rebuilds "
                f"(budget {self.policy.retry.max_pool_rebuilds}); giving up"
            )
        lost = set(self.lost_keys)
        # Dispatches still tracked in flight die with the pool — except
        # timed-out ones, whose replacement was already queued (it lands in
        # ``lost`` through its own future's cancellation, or is live below).
        for dispatch in self.inflight.values():
            if self._active(dispatch.key) and not dispatch.timed_out:
                lost.add(dispatch.key)
        self.inflight.clear()
        self.lost_keys.clear()
        self.pool_broken = False
        self.executor._discard_pool()
        scheduled = {key for _, _, key in self.retry_heap}
        for key in self.pending:  # pending order keeps re-dispatch deterministic
            if key in lost and key not in scheduled:
                self._submit(key)

    def _scan_timeouts(self, now: float) -> None:
        """Replace dispatches that outlived the per-task timeout."""
        timeout = self.policy.retry.task_timeout
        if timeout is None:
            return
        stats = self.executor.stats
        for dispatch in list(self.inflight.values()):
            if dispatch.timed_out or not self._active(dispatch.key):
                continue
            if now - dispatch.submitted_at <= timeout:
                continue
            dispatch.timed_out = True
            stats.timeouts += 1
            key = dispatch.key
            if self.dispatch_counts[key] <= self.policy.retry.max_retries:
                # Immediate replacement: the timeout already waited longer
                # than any backoff would.
                self._submit(key)
            else:
                self.failures[key] = TaskTimeoutError(
                    f"task {key!r} exceeded {timeout:g}s on "
                    f"{self.dispatch_counts[key]} dispatch(es)"
                )
        # A hung task cannot be cancelled inside ProcessPoolExecutor; when
        # every worker slot may be occupied by an abandoned dispatch, the
        # replacements above would queue forever — force a pool rebuild.
        # (This timeout-based detection is the "missing heartbeat" path:
        # the worker never reports back, so the supervisor walks away.)
        abandoned = sum(1 for d in self.inflight.values() if d.timed_out)
        if abandoned >= self.executor.workers and abandoned:
            self.inflight = {
                f: d for f, d in self.inflight.items() if not d.timed_out
            }
            self.pool_broken = True

    def _scan_stragglers(self, now: float) -> None:
        """Submit one duplicate for each dispatch far past its peers."""
        deadline = self.policy.straggler.deadline(self.durations)
        if deadline is None:
            return
        for dispatch in list(self.inflight.values()):
            if dispatch.duplicated or dispatch.timed_out:
                continue
            if not self._active(dispatch.key):
                continue
            if now - dispatch.submitted_at <= deadline:
                continue
            dispatch.duplicated = True
            self.executor.stats.requeues += 1
            self._submit(dispatch.key)
