"""Registry of the paper's figures: one :class:`FigureSpec` per figure.

Every figure of the paper's evaluation (Figs. 3-10, the Sec. V overhead
table and the headline attack summary) is registered here exactly once,
with its scale-dependent parameter grids, the published numbers it is
compared against, and a runner that produces a :class:`FigureResult`.
The benchmark harness (``benchmarks/test_fig*.py``), the examples and the
``python -m repro`` CLI are all thin wrappers over this registry, so figure
logic lives in one place.

Pipeline-tier figures (the attack and defense accuracy sweeps) fan their
train-and-evaluate runs out through a shared
:class:`~repro.exec.executor.SweepExecutor`, so they parallelise with
``workers >= 2`` and hit the content-keyed result cache — re-running a
figure against a warm (or persistent, see :mod:`repro.store`) cache is
resumable and bit-identical.  Circuit-tier figures run the MNA netlists
through the compiled engine (:mod:`repro.analog.compiled`), and their
threshold/VDD grids (Figs. 5b, 6a and the VDD→parameter calibration behind
Figs. 7b-9a) are parameter variants of one topology, so they advance in
lockstep through the batched engine (:mod:`repro.analog.batch`) — one
stacked simulation pass per grid instead of one run per point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
)
from repro.attacks.campaign import AttackCampaign
from repro.circuits import (
    AxonHillockDesign,
    amplitude_vs_vdd,
    simulate_axon_hillock,
    simulate_if_neuron,
    threshold_vs_vdd,
)
from repro.core.config import ExperimentConfig
from repro.defenses import (
    BandgapThresholdDefense,
    ComparatorNeuronDefense,
    DefenseAccuracyEvaluator,
    DummyNeuronDetector,
    RobustDriverDefense,
    SizingDefense,
    overhead_report,
)
from repro.exec.executor import PipelineFromConfig, SweepExecutor
from repro.exec.resilience import ResiliencePolicy, ResilientExecutor
from repro.neurons import AxonHillockModel, CurrentDriverModel, IFAmplifierModel
from repro.utils.tables import format_table

#: Supply grid shared by the circuit-tier sensitivity figures.
VDD_GRID = (0.8, 0.9, 1.0, 1.1, 1.2)

#: Up-sizing factors of the Fig. 9c sizing-defense sweep.
SIZING_FACTORS = (1, 2, 4, 8, 16, 32)


class FigureContext:
    """Shared configuration + executor for a batch of figure reproductions.

    One context owns one :class:`~repro.exec.executor.SweepExecutor`, so
    every figure run through it shares the content-keyed result cache: the
    attack-free baseline is trained once per session, and attack
    configurations repeated across figures (e.g. ``Attack4(-0.2)`` appears
    in Fig. 8c, Fig. 9c and the summary) are evaluated once.

    Parameters
    ----------
    config:
        Experiment scale (defaults to ``ExperimentConfig.from_environment()``).
    pipeline:
        Optional pre-built pipeline to wrap (the benchmark harness shares
        its session pipeline this way).  Its config takes precedence.
    workers:
        Worker processes for the executor (``0``/``1`` = serial).
    cache:
        Optional result cache — pass a
        :class:`repro.store.PersistentResultCache` to make runs resumable
        across processes.
    engine:
        Execution engine for *both* tiers — ``"auto"`` (default,
        lockstep-batched when available), ``"batched"``, ``"sparse"`` or
        ``"scalar"``.  On the SNN tier the choice never changes the numbers
        (the batched engine is bit-exact against the scalar reference;
        ``"sparse"`` behaves like ``"auto"`` there); on the circuit tier
        ``"scalar"`` forces the per-device reference MNA path and
        ``"sparse"`` forces the CSC + ``splu`` tier (see
        :attr:`circuit_engine` / :attr:`circuit_batch`), identical within
        solver tolerance.  A pre-built ``pipeline`` keeps its own engine.
    executor:
        Fully custom executor (overrides ``pipeline``/``workers``/``cache``).
    resilience:
        Optional :class:`~repro.exec.resilience.ResiliencePolicy`; when
        given, sweeps run through the fault-tolerant
        :class:`~repro.exec.resilience.ResilientExecutor` (crash recovery,
        retry/timeout/backoff, straggler re-dispatch, chaos injection).
        ``None`` (the default) keeps the plain executor.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        pipeline=None,
        workers: int = 0,
        cache=None,
        engine: str = "auto",
        executor: Optional[SweepExecutor] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        if config is None and pipeline is not None:
            config = pipeline.config
        self.config = config or ExperimentConfig.from_environment()
        self.engine = engine
        executor_class = SweepExecutor
        executor_options = {}
        if resilience is not None:
            executor_class = ResilientExecutor
            executor_options = {"policy": resilience}
        if executor is not None:
            self.executor = executor
        elif pipeline is not None:
            self.executor = executor_class(
                pipeline, workers=workers, cache=cache, **executor_options
            )
        else:
            self.executor = executor_class(
                pipeline_factory=PipelineFromConfig(
                    self.config,
                    # The SNN tier has no sparse mode; the sparse choice
                    # only steers the circuit tier (circuit_engine).
                    engine="auto" if engine == "sparse" else engine,
                ),
                workers=workers,
                cache=cache,
                **executor_options,
            )

    @property
    def scale(self) -> str:
        """Name of the experiment scale preset."""
        return self.config.scale_name

    @property
    def circuit_engine(self) -> str:
        """The analog-tier engine matching this context's ``engine`` choice.

        ``--engine scalar`` forces the per-device reference MNA path on the
        circuit tier too and ``--engine sparse`` forces the CSC + ``splu``
        tier; any other choice keeps the compiled engine (``"auto"``, which
        still routes crossbar-scale netlists to the sparse tier).  All
        backends agree with the reference within solver tolerance (~1e-14,
        pinned by ``tests/test_analog_compiled.py``).
        """
        if self.engine in ("scalar", "sparse"):
            return self.engine
        return "auto"

    @property
    def circuit_batch(self) -> bool:
        """Whether circuit-tier sweeps may take the lockstep batched route."""
        return self.engine != "scalar"

    @property
    def pipeline(self):
        """The classification pipeline (built lazily on first use)."""
        return self.executor.pipeline

    def campaign(self) -> AttackCampaign:
        """An attack campaign sharing this context's executor and cache."""
        return AttackCampaign(self.pipeline, executor=self.executor)

    def close(self, *, cancel_pending: bool = False) -> None:
        """Shut the executor's worker pool down (no-op when serial).

        ``cancel_pending`` drops queued-but-unstarted work instead of
        draining it — the graceful-shutdown path (Ctrl-C / SIGTERM).
        """
        self.executor.close(cancel_pending=cancel_pending)

    def __enter__(self) -> "FigureContext":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close(cancel_pending=exc_type is not None)


@dataclass(frozen=True)
class PaperClaim:
    """One published number a reproduced metric is compared against."""

    metric: str
    paper_value: float
    description: str = ""


@dataclass
class FigureTable:
    """One rendered table of a figure (headers + stringified rows)."""

    title: str
    headers: List[str]
    rows: List[List[str]]

    def render(self) -> str:
        """The table as paper-style plain text."""
        return format_table(self.headers, self.rows, title=self.title)


@dataclass
class FigureResult:
    """Everything a figure reproduction produced.

    ``metrics`` holds the scalar quantities the figure's qualitative claims
    (and the paper comparison in ``repro report``) are stated over;
    ``arrays`` holds the swept series/grids backing the figure; ``tables``
    are the human-readable renderings.  Execution metadata (wall-clock,
    executor task/cache-hit deltas) is filled in by :meth:`FigureSpec.run`.
    """

    figure: str = ""
    title: str = ""
    scale_name: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    tables: List[FigureTable] = field(default_factory=list)
    wall_seconds: float = 0.0
    executor_tasks: int = 0
    executor_cache_hits: int = 0
    executor_retries: int = 0
    executor_timeouts: int = 0
    executor_requeues: int = 0
    executor_pool_rebuilds: int = 0
    cache_quarantined: int = 0
    workers: int = 0

    def render(self) -> str:
        """All tables of the figure, ready to print."""
        return "\n".join(table.render() for table in self.tables)


#: A figure runner builds the result from a shared context.
FigureRunner = Callable[[FigureContext], FigureResult]


@dataclass(frozen=True)
class FigureSpec:
    """One registered paper figure.

    ``uses_pipeline`` distinguishes the SNN train-and-evaluate figures
    (which go through the executor, scale with ``--workers`` and benefit
    from the persistent cache) from the pure circuit-tier figures.
    """

    name: str
    title: str
    description: str
    runner: FigureRunner
    tags: Tuple[str, ...] = ()
    claims: Tuple[PaperClaim, ...] = ()
    uses_pipeline: bool = False

    def run(self, context: FigureContext) -> FigureResult:
        """Execute the figure and stamp execution metadata on the result."""
        stats = context.executor.stats
        tasks_before, hits_before = stats.tasks_executed, stats.cache_hits
        events_before = stats.resilience_events()
        start = time.perf_counter()
        result = self.runner(context)
        result.wall_seconds = time.perf_counter() - start
        result.figure = self.name
        result.title = self.title
        result.scale_name = context.scale
        result.executor_tasks = stats.tasks_executed - tasks_before
        result.executor_cache_hits = stats.cache_hits - hits_before
        events = stats.resilience_events()
        result.executor_retries = events["retries"] - events_before["retries"]
        result.executor_timeouts = events["timeouts"] - events_before["timeouts"]
        result.executor_requeues = events["requeues"] - events_before["requeues"]
        result.executor_pool_rebuilds = (
            events["pool_rebuilds"] - events_before["pool_rebuilds"]
        )
        result.cache_quarantined = events["quarantined"] - events_before["quarantined"]
        result.workers = context.executor.workers
        return result


_REGISTRY: Dict[str, FigureSpec] = {}


def register_figure(spec: FigureSpec) -> FigureSpec:
    """Add ``spec`` to the registry (names must be unique)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"figure {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def figure(
    name: str,
    *,
    title: str,
    description: str,
    tags: Sequence[str] = (),
    claims: Sequence[PaperClaim] = (),
    uses_pipeline: bool = False,
) -> Callable[[FigureRunner], FigureRunner]:
    """Decorator registering a runner function as a :class:`FigureSpec`."""

    def decorate(runner: FigureRunner) -> FigureRunner:
        register_figure(
            FigureSpec(
                name=name,
                title=title,
                description=description,
                runner=runner,
                tags=tuple(tags),
                claims=tuple(claims),
                uses_pipeline=uses_pipeline,
            )
        )
        return runner

    return decorate


def get_figure(name: str) -> FigureSpec:
    """The registered spec for ``name`` (KeyError lists the valid names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def iter_figures() -> List[FigureSpec]:
    """All registered specs, in paper order (registration order)."""
    return list(_REGISTRY.values())


def figure_names() -> List[str]:
    """Names of every registered figure, in paper order."""
    return list(_REGISTRY)


# --------------------------------------------------------------------------
# Scale-dependent parameter grids.  ``paper`` uses the full published grids;
# every reduced scale uses the corner points that still express the claims.
# --------------------------------------------------------------------------


def _threshold_grid(scale: str) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    if scale == "paper":
        return (-0.2, -0.1, 0.1, 0.2), (0.0, 0.25, 0.5, 0.75, 1.0)
    return (-0.2, 0.2), (0.0, 0.5, 1.0)


def _theta_grid(scale: str) -> Tuple[float, ...]:
    if scale in ("paper", "benchmark"):
        return (-0.2, -0.1, 0.0, 0.1, 0.2)
    return (-0.2, 0.0, 0.2)


def _vdd_attack_grid(scale: str) -> Tuple[float, ...]:
    if scale == "paper":
        return VDD_GRID
    return (0.8, 1.0, 1.2)


def _fmt(value: float, pattern: str = "{:+.4f}") -> str:
    return pattern.format(value)


# --------------------------------------------------------------------------
# Circuit tier: Figs. 3-6.
# --------------------------------------------------------------------------


@figure(
    "fig3",
    title="Fig. 3 — Axon-Hillock neuron transient waveforms",
    description="Membrane/output waveforms of the Axon-Hillock neuron (MNA netlist)",
    tags=("circuit", "waveform"),
)
def run_fig3(context: FigureContext) -> FigureResult:
    design = AxonHillockDesign(
        membrane_capacitance=0.2e-12, feedback_capacitance=0.2e-12
    )
    sim = simulate_axon_hillock(
        design, stop_time="6u", time_step="5n", engine=context.circuit_engine
    )
    vout = sim.waveform("vout")
    vmem = sim.waveform("vmem")
    spikes = vout.detect_spikes(0.5, min_separation=200e-9)
    metrics = {
        "membrane_peak_V": float(vmem.maximum()),
        "output_peak_V": float(vout.maximum()),
        "output_spikes": float(len(spikes)),
        "first_spike_us": float(spikes[0] * 1e6) if len(spikes) else float("nan"),
    }
    table = FigureTable(
        title="Fig. 3 (Axon-Hillock)",
        headers=["quantity", "value"],
        rows=[[key, f"{value:g}"] for key, value in metrics.items()],
    )
    return FigureResult(
        metrics=metrics,
        arrays={
            "time_s": np.asarray(vout.time),
            "vmem_V": np.asarray(vmem.values),
            "vout_V": np.asarray(vout.values),
        },
        tables=[table],
    )


@figure(
    "fig4",
    title="Fig. 4 — I&F amplifier neuron transient waveforms",
    description="Membrane/comparator waveforms of the voltage-amplifier I&F neuron",
    tags=("circuit", "waveform"),
)
def run_fig4(context: FigureContext) -> FigureResult:
    sim = simulate_if_neuron(
        stop_time="150u", time_step="25n", engine=context.circuit_engine
    )
    vmem = sim.waveform("vmem")
    vcmp = sim.waveform("vcmp")
    spikes = vcmp.detect_spikes(0.5, min_separation=1e-6)
    metrics = {
        "membrane_peak_V": float(vmem.maximum()),
        "comparator_spikes": float(len(spikes)),
        "first_spike_us": float(spikes[0] * 1e6) if len(spikes) else float("nan"),
    }
    table = FigureTable(
        title="Fig. 4 (I&F neuron)",
        headers=["quantity", "value"],
        rows=[[key, f"{value:g}"] for key, value in metrics.items()],
    )
    return FigureResult(
        metrics=metrics,
        arrays={
            "time_s": np.asarray(vmem.time),
            "vmem_V": np.asarray(vmem.values),
            "vcmp_V": np.asarray(vcmp.values),
        },
        tables=[table],
    )


@figure(
    "fig5",
    title="Fig. 5b/5c — driver amplitude and time-to-spike vs VDD",
    description="Current-driver output amplitude across the supply range and the "
    "induced neuron time-to-spike change",
    tags=("circuit", "driver"),
    claims=(
        PaperClaim("amplitude_change_at_0v8", -0.32, "driver amplitude at 0.8 V"),
        PaperClaim("amplitude_change_at_1v2", 0.32, "driver amplitude at 1.2 V"),
        PaperClaim("ah_tts_change_at_0v8_pct", 53.7, "AH time-to-spike at 0.8 V"),
        PaperClaim("ah_tts_change_at_1v2_pct", -24.7, "AH time-to-spike at 1.2 V"),
        PaperClaim("if_period_change_at_0v8_pct", 14.5, "I&F period at 0.8 V"),
        PaperClaim("if_period_change_at_1v2_pct", -6.7, "I&F period at 1.2 V"),
    ),
)
def run_fig5(context: FigureContext) -> FigureResult:
    vdd = np.asarray(VDD_GRID)
    circuit_amps = amplitude_vs_vdd(
        vdd, batch=context.circuit_batch, engine=context.circuit_engine
    )
    driver = CurrentDriverModel()
    model_amps = driver.amplitude_vs_vdd(vdd)
    nominal = circuit_amps[2]

    axon_hillock = AxonHillockModel()
    if_neuron = IFAmplifierModel()
    base_ah = axon_hillock.time_to_first_spike(driver.nominal_amplitude)
    base_if = if_neuron.inter_spike_interval(driver.nominal_amplitude)
    ah_changes, if_changes = [], []
    for value in vdd:
        amplitude = driver.amplitude(float(value))
        ah = (axon_hillock.time_to_first_spike(amplitude) - base_ah) / base_ah
        if_ = (if_neuron.inter_spike_interval(amplitude) - base_if) / base_if
        ah_changes.append(ah * 100.0)
        if_changes.append(if_ * 100.0)
    ah_changes = np.asarray(ah_changes)
    if_changes = np.asarray(if_changes)

    amplitude_rows = [
        [
            f"{value:g}",
            f"{circuit_amps[i] * 1e9:.1f}",
            f"{model_amps[i] * 1e9:.1f}",
            f"{(circuit_amps[i] / nominal - 1) * 100:+.1f}",
        ]
        for i, value in enumerate(vdd)
    ]
    tts_rows = [
        [
            f"{value:g}",
            f"{driver.amplitude(float(value)) * 1e9:.1f}",
            f"{ah_changes[i]:+.1f}",
            f"{if_changes[i]:+.1f}",
        ]
        for i, value in enumerate(vdd)
    ]
    metrics = {
        "amplitude_change_at_0v8": float(circuit_amps[0] / nominal - 1.0),
        "amplitude_change_at_1v2": float(circuit_amps[-1] / nominal - 1.0),
        "ah_tts_change_at_0v8_pct": float(ah_changes[0]),
        "ah_tts_change_at_1v2_pct": float(ah_changes[-1]),
        "if_period_change_at_0v8_pct": float(if_changes[0]),
        "if_period_change_at_1v2_pct": float(if_changes[-1]),
    }
    return FigureResult(
        metrics=metrics,
        arrays={
            "vdd_V": vdd,
            "circuit_amplitude_A": np.asarray(circuit_amps),
            "model_amplitude_A": np.asarray(model_amps),
            "ah_tts_change_pct": ah_changes,
            "if_period_change_pct": if_changes,
        },
        tables=[
            FigureTable(
                title="Fig. 5b — driver output amplitude vs VDD",
                headers=[
                    "VDD (V)",
                    "circuit amplitude (nA)",
                    "model amplitude (nA)",
                    "change (%)",
                ],
                rows=amplitude_rows,
            ),
            FigureTable(
                title="Fig. 5c — time-to-spike vs input amplitude",
                headers=[
                    "VDD (V)",
                    "Iin (nA)",
                    "AH time-to-spike change (%)",
                    "I&F period change (%)",
                ],
                rows=tts_rows,
            ),
        ],
    )


@figure(
    "fig6",
    title="Fig. 6 — membrane-threshold sensitivity vs VDD",
    description="Inverter/comparator trip points and the induced time-to-spike "
    "change of both neurons across the supply range",
    tags=("circuit", "threshold"),
    claims=(
        PaperClaim("threshold_change_at_0v8", -0.179, "AH threshold at 0.8 V"),
        PaperClaim("threshold_change_at_1v2", 0.168, "AH threshold at 1.2 V"),
    ),
)
def run_fig6(context: FigureContext) -> FigureResult:
    vdd = np.asarray(VDD_GRID)
    circuit_thresholds = np.asarray(
        threshold_vs_vdd(vdd, batch=context.circuit_batch, engine=context.circuit_engine)
    )
    axon_hillock = AxonHillockModel()
    if_neuron = IFAmplifierModel()
    ah_model = np.asarray([axon_hillock.membrane_threshold(v) for v in vdd])
    if_model = np.asarray([if_neuron.membrane_threshold(v) for v in vdd])

    base_ah = axon_hillock.time_to_first_spike(200e-9, vdd=1.0)
    base_if = if_neuron.time_to_first_spike(200e-9, vdd=1.0)
    ah_tts = np.asarray(
        [
            (axon_hillock.time_to_first_spike(200e-9, vdd=float(v)) - base_ah)
            / base_ah
            * 100.0
            for v in vdd
        ]
    )
    if_tts = np.asarray(
        [
            (if_neuron.time_to_first_spike(200e-9, vdd=float(v)) - base_if)
            / base_if
            * 100.0
            for v in vdd
        ]
    )

    nominal = circuit_thresholds[2]
    metrics = {
        "threshold_change_at_0v8": float(circuit_thresholds[0] / nominal - 1.0),
        "threshold_change_at_1v2": float(circuit_thresholds[-1] / nominal - 1.0),
        "ah_tts_change_at_0v8_pct": float(ah_tts[0]),
        "ah_tts_change_at_1v2_pct": float(ah_tts[-1]),
        "if_tts_change_at_0v8_pct": float(if_tts[0]),
        "if_tts_change_at_1v2_pct": float(if_tts[-1]),
    }
    return FigureResult(
        metrics=metrics,
        arrays={
            "vdd_V": vdd,
            "inverter_threshold_V": circuit_thresholds,
            "ah_model_threshold_V": ah_model,
            "if_model_threshold_V": if_model,
            "ah_tts_change_pct": ah_tts,
            "if_tts_change_pct": if_tts,
        },
        tables=[
            FigureTable(
                title="Fig. 6a — membrane threshold vs VDD",
                headers=[
                    "VDD (V)",
                    "inverter threshold (V)",
                    "AH model threshold (V)",
                    "I&F threshold (V)",
                ],
                rows=[
                    [
                        f"{v:g}",
                        f"{circuit_thresholds[i]:.3f}",
                        f"{ah_model[i]:.3f}",
                        f"{if_model[i]:.3f}",
                    ]
                    for i, v in enumerate(vdd)
                ],
            ),
            FigureTable(
                title="Fig. 6b/6c — time-to-spike vs VDD",
                headers=[
                    "VDD (V)",
                    "AH time-to-spike change (%)",
                    "I&F time-to-spike change (%)",
                ],
                rows=[
                    [f"{v:g}", f"{ah_tts[i]:+.1f}", f"{if_tts[i]:+.1f}"]
                    for i, v in enumerate(vdd)
                ],
            ),
        ],
    )


# --------------------------------------------------------------------------
# Pipeline tier: attack figures (Figs. 7b-9a) and the headline summary.
# --------------------------------------------------------------------------


def _sweep_table(title: str, parameter: str, values, accuracies, baseline) -> FigureTable:
    rows = [
        [f"{value:g}", f"{accuracy:.4f}", _fmt(accuracy - baseline)]
        for value, accuracy in zip(values, accuracies)
    ]
    return FigureTable(
        title=f"{title} (baseline {baseline:.4f})",
        headers=[parameter, "accuracy", "change vs baseline"],
        rows=rows,
    )


def _grid_table(grid) -> FigureTable:
    headers = [grid.row_parameter] + [
        f"{grid.column_parameter}={value:g}" for value in grid.column_values
    ]
    rows = []
    for i, row_value in enumerate(grid.row_values):
        cells = [f"{row_value:+g}"]
        cells += [
            _fmt(grid.accuracies[i, j] - grid.baseline_accuracy)
            for j in range(len(grid.column_values))
        ]
        rows.append(cells)
    title = (
        f"{grid.name} (baseline accuracy {grid.baseline_accuracy:.4f}, "
        f"scale {grid.scale_name})"
    )
    return FigureTable(title=title, headers=headers, rows=rows)


@figure(
    "fig7b",
    title="Fig. 7b — Attack 1: accuracy vs theta corruption",
    description="Accuracy vs per-spike membrane-charge (theta) change from the "
    "corrupted input driver",
    tags=("attack", "snn"),
    claims=(
        PaperClaim("worst_relative_degradation", 0.015, "worst-case degradation"),
    ),
    uses_pipeline=True,
)
def run_fig7b(context: FigureContext) -> FigureResult:
    theta_changes = _theta_grid(context.scale)
    sweep = context.campaign().sweep_attack1_theta(theta_changes)
    worst = sweep.worst_case()
    metrics = {
        "baseline_accuracy": float(sweep.baseline_accuracy),
        "worst_accuracy": float(worst.accuracy),
        "worst_relative_degradation": float(worst.result.relative_degradation or 0.0),
    }
    return FigureResult(
        metrics=metrics,
        arrays={"theta_changes": sweep.values, "accuracies": sweep.accuracies()},
        tables=[
            _sweep_table(
                "Fig. 7b — Attack 1 (input-driver corruption)",
                "theta change",
                sweep.values,
                sweep.accuracies(),
                sweep.baseline_accuracy,
            )
        ],
    )


@figure(
    "fig8",
    title="Fig. 8a-8c — Attacks 2-4: layer-threshold corruption",
    description="Accuracy vs membrane-threshold change x fraction of the "
    "excitatory layer (8a), inhibitory layer (8b) and both layers (8c)",
    tags=("attack", "snn"),
    claims=(
        PaperClaim(
            "worst_relative_degradation_excitatory", 0.0732, "Fig. 8a worst case"
        ),
        PaperClaim(
            "worst_relative_degradation_inhibitory", 0.8452, "Fig. 8b worst case"
        ),
        PaperClaim("worst_relative_degradation_both", 0.8565, "Fig. 8c worst case"),
    ),
    uses_pipeline=True,
)
def run_fig8(context: FigureContext) -> FigureResult:
    changes, fractions = _threshold_grid(context.scale)
    campaign = context.campaign()
    excitatory = campaign.sweep_layer_threshold("excitatory", changes, fractions)
    inhibitory = campaign.sweep_layer_threshold("inhibitory", changes, fractions)
    both = campaign.sweep_both_layers(changes)
    worst_both = both.worst_case()
    metrics = {
        "baseline_accuracy": float(excitatory.baseline_accuracy),
        "worst_relative_degradation_excitatory": float(
            excitatory.worst_case_relative_degradation()
        ),
        "worst_relative_degradation_inhibitory": float(
            inhibitory.worst_case_relative_degradation()
        ),
        "worst_relative_degradation_both": float(
            worst_both.result.relative_degradation or 0.0
        ),
    }
    return FigureResult(
        metrics=metrics,
        arrays={
            "threshold_changes": np.asarray(changes, dtype=float),
            "fractions": np.asarray(fractions, dtype=float),
            "accuracies_excitatory": excitatory.accuracies,
            "accuracies_inhibitory": inhibitory.accuracies,
            "both_threshold_changes": both.values,
            "accuracies_both": both.accuracies(),
        },
        tables=[
            _grid_table(excitatory),
            _grid_table(inhibitory),
            _sweep_table(
                "Fig. 8c — Attack 4 (both layers)",
                "threshold change",
                both.values,
                both.accuracies(),
                both.baseline_accuracy,
            ),
        ],
    )


def fig8_accuracy_from_snapshot(
    json_path, *, engine: str = "auto"
) -> Dict[str, object]:
    """Reproduce a snapshot's fig-8 baseline accuracy without retraining.

    Loads a snapshot artifact exported by ``python -m repro snapshot
    export``, hydrates the inference-only scoring engine
    (:class:`repro.snn.serving.ScoringEngine`) and re-scores the held-out
    split.  Returns the rescored accuracy, its prediction digest and
    whether both are bit-identical to the values the exporting (live)
    pipeline recorded — the serving tier's whole-figure parity statement.
    """
    from repro.snn.serving import ScoringEngine
    from repro.snn.snapshot import load_snapshot

    snapshot = load_snapshot(json_path)
    evaluation = ScoringEngine(snapshot, engine=engine).evaluate()
    stored = snapshot.metrics
    return {
        "accuracy": evaluation.accuracy,
        "predictions_sha256": evaluation.predictions_sha256,
        "stored_accuracy": stored.get("accuracy"),
        "stored_predictions_sha256": stored.get("eval_predictions_sha256"),
        "parity": (
            evaluation.accuracy == stored.get("accuracy")
            and evaluation.predictions_sha256 == stored.get("eval_predictions_sha256")
        ),
    }


@figure(
    "fig9a",
    title="Fig. 9a — Attack 5: black-box global-VDD fault",
    description="Accuracy vs the shared supply voltage; theta and threshold "
    "corruption follow from the circuit-calibrated VDD map",
    tags=("attack", "snn", "black-box"),
    claims=(
        PaperClaim(
            "relative_degradation_at_0v8", 0.8493, "worst-case degradation at 0.8 V"
        ),
    ),
    uses_pipeline=True,
)
def run_fig9a(context: FigureContext) -> FigureResult:
    vdd_values = _vdd_attack_grid(context.scale)
    sweep = context.campaign().sweep_global_vdd(vdd_values)
    accuracies = sweep.accuracies()
    by_vdd = {float(v): float(a) for v, a in zip(sweep.values, accuracies)}
    baseline = float(sweep.baseline_accuracy)
    degradation_08 = (
        (baseline - by_vdd[0.8]) / baseline if baseline and 0.8 in by_vdd else 0.0
    )
    metrics = {
        "baseline_accuracy": baseline,
        "accuracy_at_nominal": by_vdd.get(1.0, baseline),
        "accuracy_at_0v8": by_vdd.get(0.8, float("nan")),
        "relative_degradation_at_0v8": float(degradation_08),
    }
    return FigureResult(
        metrics=metrics,
        arrays={"vdd_V": sweep.values, "accuracies": accuracies},
        tables=[
            _sweep_table(
                "Fig. 9a — Attack 5 (whole-system supply fault)",
                "VDD (V)",
                sweep.values,
                accuracies,
                baseline,
            )
        ],
    )


@figure(
    "summary",
    title="Headline summary — all five attacks vs one pipeline",
    description="One representative point per attack family (the comparison "
    "behind Figs. 7b-9a)",
    tags=("attack", "snn", "summary"),
    uses_pipeline=True,
)
def run_summary(context: FigureContext) -> FigureResult:
    attacks = [
        Attack1InputSpikeCorruption(theta_change=-0.2),
        Attack2ExcitatoryThreshold(threshold_change=-0.2, fraction=1.0),
        Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0),
        Attack4BothLayerThreshold(threshold_change=-0.2),
        Attack5GlobalSupply(vdd=0.8),
    ]
    results = context.executor.map([None] + attacks)
    baseline, attacked = results[0], results[1:]
    rows = [["baseline", f"{baseline.accuracy:.3f}", "-", "-"]]
    metrics = {"baseline_accuracy": float(baseline.accuracy)}
    accuracies = [float(baseline.accuracy)]
    for index, (attack, result) in enumerate(zip(attacks, attacked), start=1):
        degradation = result.relative_degradation
        rows.append(
            [
                attack.label(),
                f"{result.accuracy:.3f}",
                _fmt(result.accuracy_change or 0.0, "{:+.3f}"),
                "n/a" if degradation is None else f"{degradation:.1%}",
            ]
        )
        metrics[f"attack{index}_accuracy"] = float(result.accuracy)
        metrics[f"attack{index}_relative_degradation"] = float(degradation or 0.0)
        accuracies.append(float(result.accuracy))
    return FigureResult(
        metrics=metrics,
        arrays={"accuracies": np.asarray(accuracies)},
        tables=[
            FigureTable(
                title="Power-oriented fault-injection attacks on the Diehl&Cook SNN",
                headers=["attack", "accuracy", "change", "relative degradation"],
                rows=rows,
            )
        ],
    )


# --------------------------------------------------------------------------
# Defense tier: Figs. 9b-10c, Sec. V residuals and overheads.
# --------------------------------------------------------------------------


@figure(
    "fig9b",
    title="Fig. 9b — robust current driver",
    description="The op-amp regulated driver keeps the input spike amplitude "
    "flat across the supply range",
    tags=("defense", "circuit"),
    claims=(PaperClaim("max_defended_change", 0.01, "residual amplitude change"),),
)
def run_fig9b(context: FigureContext) -> FigureResult:
    defense = RobustDriverDefense()
    vdd = np.asarray(VDD_GRID)
    undefended = np.asarray([defense.undefended_theta_scale(v) - 1.0 for v in vdd])
    defended = np.asarray([defense.residual_theta_change(v) for v in vdd])
    metrics = {
        "max_undefended_change": float(np.abs(undefended).max()),
        "max_defended_change": float(np.abs(defended).max()),
    }
    return FigureResult(
        metrics=metrics,
        arrays={
            "vdd_V": vdd,
            "undefended_amplitude_change": undefended,
            "defended_amplitude_change": defended,
        },
        tables=[
            FigureTable(
                title="Fig. 9b — robust current driver",
                headers=[
                    "VDD (V)",
                    "unprotected amplitude change",
                    "robust-driver amplitude change",
                ],
                rows=[
                    [f"{v:g}", _fmt(undefended[i]), _fmt(defended[i])]
                    for i, v in enumerate(vdd)
                ],
            )
        ],
    )


@figure(
    "fig9c",
    title="Fig. 9c — Axon-Hillock sizing defense",
    description="Up-sizing the first-inverter device shrinks the threshold "
    "corruption at 0.8 V and recovers the attacked accuracy",
    tags=("defense", "circuit", "snn"),
    claims=(
        PaperClaim("threshold_change_1x", -0.18, "undefended threshold at 0.8 V"),
        PaperClaim("threshold_change_32x", -0.0523, "32:1 residual threshold"),
    ),
    uses_pipeline=True,
)
def run_fig9c(context: FigureContext) -> FigureResult:
    defense = SizingDefense()
    points = defense.sweep(SIZING_FACTORS, vdd=0.8)
    residual_scale = defense.residual_threshold_scale(SIZING_FACTORS[-1], 0.8)
    evaluator = DefenseAccuracyEvaluator(context.pipeline, executor=context.executor)
    point = evaluator.evaluate_threshold_defenses(
        {"32x sizing": residual_scale - 1.0}, undefended_change=-0.2
    )[0]
    defended, undefended, baseline = point.defended, point.undefended, point.baseline
    metrics = {
        "threshold_change_1x": float(points[0].threshold_change),
        "threshold_change_32x": float(points[-1].threshold_change),
        "baseline_accuracy": float(baseline.accuracy),
        "defended_accuracy": float(defended.accuracy),
        "undefended_accuracy": float(undefended.accuracy),
        "defended_relative_degradation": float(defended.relative_degradation or 0.0),
        "undefended_relative_degradation": float(
            undefended.relative_degradation or 0.0
        ),
    }
    return FigureResult(
        metrics=metrics,
        arrays={
            "sizing_factors": np.asarray(SIZING_FACTORS, dtype=float),
            "threshold_change": np.asarray(
                [p.threshold_change for p in points]
            ),
            "nominal_threshold_V": np.asarray(
                [p.nominal_threshold for p in points]
            ),
            "threshold_at_0v8_V": np.asarray(
                [p.threshold_at_vdd for p in points]
            ),
        },
        tables=[
            FigureTable(
                title="Fig. 9c — sizing defense (threshold sensitivity)",
                headers=[
                    "W/L factor",
                    "nominal threshold (V)",
                    "threshold @0.8V (V)",
                    "change",
                ],
                rows=[[str(cell) for cell in p.as_row()] for p in points],
            ),
            FigureTable(
                title="Fig. 9c — accuracy recovery",
                headers=["case", "accuracy", "relative degradation"],
                rows=[
                    [
                        "undefended (-20% threshold)",
                        f"{undefended.accuracy:.4f}",
                        f"{undefended.relative_degradation:.1%}",
                    ],
                    [
                        f"defended (32x sizing, residual "
                        f"{points[-1].threshold_change:+.1%})",
                        f"{defended.accuracy:.4f}",
                        f"{defended.relative_degradation:.1%}",
                    ],
                    ["baseline", f"{baseline.accuracy:.4f}", "0.0%"],
                ],
            ),
        ],
    )


@figure(
    "fig10a",
    title="Fig. 10a — comparator-based threshold hardening",
    description="The reference-biased comparator pins the Axon-Hillock "
    "membrane threshold across the supply range",
    tags=("defense", "circuit"),
)
def run_fig10a(context: FigureContext) -> FigureResult:
    defense = ComparatorNeuronDefense()
    vdd = np.asarray(VDD_GRID)
    undefended = np.asarray([defense.undefended_threshold_scale(v) for v in vdd])
    defended = np.asarray([defense.threshold_scale(v) for v in vdd])
    metrics = {
        "undefended_ptp": float(np.ptp(undefended)),
        "defended_ptp": float(np.ptp(defended)),
    }
    return FigureResult(
        metrics=metrics,
        arrays={
            "vdd_V": vdd,
            "undefended_threshold_scale": undefended,
            "defended_threshold_scale": defended,
        },
        tables=[
            FigureTable(
                title="Fig. 10a — comparator-based threshold hardening",
                headers=[
                    "VDD (V)",
                    "inverter threshold scale",
                    "comparator threshold scale",
                ],
                rows=[
                    [f"{v:g}", f"{undefended[i]:.4f}", f"{defended[i]:.4f}"]
                    for i, v in enumerate(vdd)
                ],
            )
        ],
    )


@figure(
    "fig10c",
    title="Fig. 10c — dummy-neuron VFI detector",
    description="The dummy neuron's spike count deviates >=10% from the "
    "calibration count under +/-20% supply glitches",
    tags=("defense", "detector"),
)
def run_fig10c(context: FigureContext) -> FigureResult:
    arrays: Dict[str, np.ndarray] = {"vdd_V": np.asarray(VDD_GRID)}
    metrics: Dict[str, float] = {}
    rows = []
    for prefix, neuron_type in (("ah", "axon_hillock"), ("if", "if_amplifier")):
        detector = DummyNeuronDetector(neuron_type=neuron_type)
        outcomes = detector.sweep(VDD_GRID)
        arrays[f"{prefix}_spike_count"] = np.asarray(
            [o.spike_count for o in outcomes], dtype=float
        )
        arrays[f"{prefix}_deviation"] = np.asarray([o.deviation for o in outcomes])
        arrays[f"{prefix}_detected"] = np.asarray(
            [o.detected for o in outcomes], dtype=bool
        )
        by_vdd = {o.vdd: o for o in outcomes}
        metrics[f"{prefix}_detects_corners"] = float(
            by_vdd[0.8].detected and by_vdd[1.2].detected
        )
        metrics[f"{prefix}_false_alarm_at_nominal"] = float(by_vdd[1.0].detected)
        rows += [
            [
                neuron_type,
                f"{o.vdd:g}",
                str(o.spike_count),
                f"{o.deviation:+.1%}",
                "ATTACK" if o.detected else "ok",
            ]
            for o in outcomes
        ]
    return FigureResult(
        metrics=metrics,
        arrays=arrays,
        tables=[
            FigureTable(
                title="Fig. 10c — dummy-neuron output spikes vs VDD",
                headers=["neuron", "VDD (V)", "spike count", "deviation", "verdict"],
                rows=rows,
            )
        ],
    )


@figure(
    "residuals",
    title="Sec. V — residual corruption after each defense",
    description="How much of the attack-induced parameter corruption survives "
    "each countermeasure at VDD = 0.8 V",
    tags=("defense",),
)
def run_residuals(context: FigureContext) -> FigureResult:
    attack_vdd = 0.8
    robust = RobustDriverDefense()
    bandgap = BandgapThresholdDefense()
    sizing = SizingDefense()
    comparator = ComparatorNeuronDefense()
    entries = [
        (
            "robust current driver",
            robust.undefended_theta_scale(attack_vdd) - 1.0,
            robust.residual_theta_change(attack_vdd),
            "robust_driver_residual",
        ),
        (
            "bandgap threshold (I&F)",
            bandgap.undefended_threshold_scale(attack_vdd) - 1.0,
            bandgap.residual_threshold_change(attack_vdd),
            "bandgap_residual",
        ),
        (
            "32x sizing (Axon-Hillock)",
            sizing.threshold_change(1.0, attack_vdd),
            sizing.threshold_change(32.0, attack_vdd),
            "sizing_residual_32x",
        ),
        (
            "comparator neuron (Axon-Hillock)",
            comparator.undefended_threshold_scale(attack_vdd) - 1.0,
            comparator.threshold_scale(attack_vdd) - 1.0,
            "comparator_residual",
        ),
    ]
    metrics = {key: float(residual) for _, _, residual, key in entries}
    rows = [
        [name, f"{undefended:+.1%}", f"{residual:+.2%}"]
        for name, undefended, residual, _ in entries
    ]
    return FigureResult(
        metrics=metrics,
        tables=[
            FigureTable(
                title=f"Residual parameter corruption at VDD = {attack_vdd} V",
                headers=["defense", "corruption without defense", "residual"],
                rows=rows,
            )
        ],
    )


@figure(
    "overheads",
    title="Sec. V — defense power/area overheads",
    description="Cost of every countermeasure for the 200-neuron SNN",
    tags=("defense", "overhead"),
    claims=(
        PaperClaim("robust_current_driver_power", 0.03, "robust driver power"),
        PaperClaim("axon_hillock_sizing_power", 0.25, "sizing power"),
        PaperClaim("comparator_neuron_power", 0.11, "comparator power"),
        PaperClaim("bandgap_threshold_area", 0.65, "bandgap area at 200 neurons"),
    ),
)
def run_overheads(context: FigureContext) -> FigureResult:
    report = overhead_report(200)
    metrics: Dict[str, float] = {}
    for overhead in report:
        metrics[f"{overhead.name}_power"] = float(overhead.power_overhead)
        metrics[f"{overhead.name}_area"] = float(overhead.area_overhead)
    return FigureResult(
        metrics=metrics,
        tables=[
            FigureTable(
                title="Defense overheads (200-neuron SNN, paper Sec. V)",
                headers=["defense", "power overhead", "area overhead", "protects"],
                rows=[[str(cell) for cell in o.as_row()] for o in report],
            )
        ],
    )
