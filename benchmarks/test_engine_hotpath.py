"""Circuit-engine hot-path benchmark: scalar vs compiled vs batched vs sparse.

The workload is Fig. 8-shaped: a layer of Axon-Hillock neurons under
threshold attack, simulated as one MNA transient (the single-simulation
hot path), plus a VDD sweep of neuron variants (the batched sweep path).
Four engines are measured on identical netlists:

* **scalar** — the reference engine (per-device Python ``stamp()`` calls),
* **compiled** — split assembly + vectorised device evaluation + LU reuse
  (:mod:`repro.analog.compiled`),
* **batched** — B parameter variants advanced in lockstep with stacked
  ``(B, N, N)`` solves (:mod:`repro.analog.batch`),
* **sparse** — CSC assembly + ``splu`` factor reuse on large-N crossbar
  layers (:mod:`repro.analog.sparse`): ``TestSparseScaling`` measures the
  dense-vs-sparse crossover at the crossbar sizes of
  :data:`repro.circuits.crossbar.CROSSBAR_SCALING_SIZES`.

Each benchmark's ``extra_info`` records solves/sec (accepted time steps per
wall-clock second) plus engine-shape numbers (Newton/LU counters, pattern
``nnz``, matrix-memory ratios), so the nightly ``BENCH_<date>.json``
snapshots carry the perf trajectory of the engine itself, not just
wall-clock means.  The speedup assertions are set well below the typical
measurements (~6x compiled on the 20-neuron layer, ~2x further from
batching, ~6x sparse over dense at N = 512; see benchmarks/README.md for
methodology) to stay robust on noisy CI runners.
"""

import time

import numpy as np
import pytest

from repro.analog import batched_transient_analysis, transient_analysis
from repro.analog.compiled import CompiledCircuit
from repro.analog.mosfet import NMOS_65NM
from repro.analog.netlist import Circuit
from repro.analog.sparse import HAVE_SPARSE, SparseCircuit
from repro.circuits import (
    AxonHillockDesign,
    CrossbarLayerDesign,
    build_axon_hillock,
    build_crossbar_layer,
)
from repro.circuits.axon_hillock import default_input_spike_train
from repro.circuits.inverter import add_inverter

#: Layer width of the Fig. 8-shaped workload (120 MOSFETs at 20 neurons).
LAYER_NEURONS = 20

#: Transient span: 200 accepted steps per simulation.
STOP_TIME = "1u"
TIME_STEP = "5n"
N_STEPS = 200

#: VDD grid of the batched-sweep benchmark (Figs. 6/8/9a-shaped).
VDD_GRID = (0.8, 0.9, 1.0, 1.1, 1.2)

#: Speedup floors asserted on this hardware class (measured ~6x and ~1.7x).
MIN_COMPILED_SPEEDUP = 3.0
MIN_BATCH_SPEEDUP = 1.2

#: Sparse-over-dense floor on the N = 512 crossbar (measured ~6x; the
#: acceptance bar of the sparse tier).
MIN_SPARSE_SPEEDUP = 5.0

#: Crossbar transient span of the scaling study: 100 fixed steps.
CROSSBAR_STOP_TIME = "0.5u"
CROSSBAR_TIME_STEP = "5n"
CROSSBAR_STEPS = 100

LAYER_DESIGN = AxonHillockDesign(
    membrane_capacitance=0.2e-12, feedback_capacitance=0.2e-12
)


def build_neuron_layer(n_neurons: int = LAYER_NEURONS, vdd: float = 1.0) -> Circuit:
    """One flat netlist holding a layer of Axon-Hillock neurons.

    This is the circuit-tier shape of the Fig. 8 attacks: every neuron of a
    layer shares the (attacked) supply and bias rails but integrates its own
    input spike train.
    """
    design = AxonHillockDesign(
        membrane_capacitance=LAYER_DESIGN.membrane_capacitance,
        feedback_capacitance=LAYER_DESIGN.feedback_capacitance,
        vdd=vdd,
    )
    circuit = Circuit("axon_hillock_layer")
    circuit.add_voltage_source("VDD", "vdd", "0", design.vdd)
    circuit.add_voltage_source("VPW", "vpw", "0", design.pulse_width_bias)
    for i in range(n_neurons):
        prefix = f"n{i}."
        circuit.add_current_source(
            prefix + "IIN", "0", prefix + "vmem", default_input_spike_train()
        )
        circuit.add_capacitor(
            prefix + "CMEM", prefix + "vmem", "0", design.membrane_capacitance
        )
        circuit.add_capacitor(
            prefix + "CFB", prefix + "vout", prefix + "vmem",
            design.feedback_capacitance,
        )
        add_inverter(
            circuit, prefix + "INV1", prefix + "vmem", prefix + "va", "vdd",
            sizing=design.first_inverter,
        )
        add_inverter(
            circuit, prefix + "INV2", prefix + "va", prefix + "vout", "vdd",
            sizing=design.second_inverter,
        )
        circuit.add_capacitor(prefix + "CA", prefix + "va", "0", "5f")
        circuit.add_mosfet(
            prefix + "MN1", prefix + "vmem", prefix + "vout", prefix + "vreset",
            NMOS_65NM, width=design.reset_width, length=65e-9,
        )
        circuit.add_mosfet(
            prefix + "MN2", prefix + "vreset", "vpw", "0",
            NMOS_65NM, width=design.reset_width, length=65e-9,
        )
    return circuit


def _run_layer(engine: str):
    return transient_analysis(
        build_neuron_layer(),
        stop_time=STOP_TIME,
        time_step=TIME_STEP,
        use_initial_conditions=True,
        record_nodes=["n0.vmem", "n0.vout"],
        engine=engine,
    )


def _timed(fn, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestEngineHotpath:
    """pytest-benchmark timings feeding the nightly BENCH_*.json snapshots."""

    def test_scalar_layer_transient(self, benchmark):
        result = benchmark.pedantic(
            lambda: _run_layer("scalar"), rounds=2, iterations=1
        )
        benchmark.extra_info["solves_per_second"] = round(
            N_STEPS / benchmark.stats.stats.mean, 1
        )
        assert len(result) == N_STEPS + 1

    def test_compiled_layer_transient(self, benchmark):
        result = benchmark.pedantic(
            lambda: _run_layer("compiled"), rounds=2, iterations=1
        )
        benchmark.extra_info["solves_per_second"] = round(
            N_STEPS / benchmark.stats.stats.mean, 1
        )
        # Newton-iteration counters of one representative run.
        system = CompiledCircuit(build_neuron_layer())
        from repro.analog.mna import SolverOptions
        from repro.analog.transient import _advance, initial_condition_vector, time_grid

        solution = initial_condition_vector(system, system.circuit)
        options = SolverOptions()
        times = time_grid(1e-6, 5e-9)
        for step in range(1, len(times)):
            solution = _advance(
                system, solution, times[step - 1], times[step], options, depth=0
            )
        benchmark.extra_info["newton_assemblies"] = system.stats.assemblies
        benchmark.extra_info["lu_factorizations"] = system.stats.factorizations
        benchmark.extra_info["frozen_jacobian_accepts"] = system.stats.frozen_accepts
        assert len(result) == N_STEPS + 1

    def test_batched_vdd_sweep(self, benchmark):
        circuits = lambda: [  # noqa: E731 - tiny local factory
            build_axon_hillock(LAYER_DESIGN.with_vdd(v), input_source=None)
            for v in VDD_GRID
        ]
        results = benchmark.pedantic(
            lambda: batched_transient_analysis(
                circuits(),
                stop_time=STOP_TIME,
                time_step=TIME_STEP,
                use_initial_conditions=True,
                record_nodes=["vmem", "vout"],
            ),
            rounds=2,
            iterations=1,
        )
        benchmark.extra_info["solves_per_second"] = round(
            len(VDD_GRID) * N_STEPS / benchmark.stats.stats.mean, 1
        )
        assert len(results) == len(VDD_GRID)


def _run_crossbar(n_columns: int, engine: str):
    return transient_analysis(
        build_crossbar_layer(CrossbarLayerDesign(n_columns=n_columns)),
        stop_time=CROSSBAR_STOP_TIME,
        time_step=CROSSBAR_TIME_STEP,
        use_initial_conditions=True,
        record_nodes=["col0"],
        engine=engine,
    )


@pytest.mark.skipif(not HAVE_SPARSE, reason="sparse tier needs scipy")
class TestSparseScaling:
    """Dense-vs-sparse crossover on crossbar layers (the large-N tier).

    ``CROSSBAR_SCALING_SIZES`` brackets the ``engine="auto"`` routing
    threshold: N = 128 (162 unknowns) stays dense under auto, N = 512 and
    N = 1000 route sparse.  Dense timings stop at N = 512 — the O(N^3)
    factorisations make a dense N = 1000 run pure waste on a nightly
    budget, which is the point of the sparse tier.
    """

    def _record_pattern_info(self, benchmark, n_columns: int) -> None:
        system = SparseCircuit(
            build_crossbar_layer(CrossbarLayerDesign(n_columns=n_columns))
        )
        benchmark.extra_info["unknowns"] = system.size
        benchmark.extra_info["pattern_nnz"] = system.nnz
        benchmark.extra_info["pattern_density_pct"] = round(
            100.0 * system.nnz / system.size**2, 2
        )
        benchmark.extra_info["dense_over_sparse_matrix_memory"] = round(
            system.size**2 / system.nnz, 1
        )

    @pytest.mark.parametrize("n_columns", [128, 512])
    def test_crossbar_dense(self, benchmark, n_columns):
        result = benchmark.pedantic(
            lambda: _run_crossbar(n_columns, "compiled"), rounds=2, iterations=1
        )
        benchmark.extra_info["solves_per_second"] = round(
            CROSSBAR_STEPS / benchmark.stats.stats.mean, 1
        )
        assert len(result) == CROSSBAR_STEPS + 1

    @pytest.mark.parametrize("n_columns", [128, 512, 1000])
    def test_crossbar_sparse(self, benchmark, n_columns):
        result = benchmark.pedantic(
            lambda: _run_crossbar(n_columns, "sparse"), rounds=2, iterations=1
        )
        benchmark.extra_info["solves_per_second"] = round(
            CROSSBAR_STEPS / benchmark.stats.stats.mean, 1
        )
        self._record_pattern_info(benchmark, n_columns)
        assert len(result) == CROSSBAR_STEPS + 1

    def test_sparse_beats_dense_at_n512(self):
        _run_crossbar(512, "sparse")  # warm-up (pattern + permc selection)
        dense_seconds = _timed(lambda: _run_crossbar(512, "compiled"))
        sparse_seconds = _timed(lambda: _run_crossbar(512, "sparse"), repeats=2)
        speedup = dense_seconds / sparse_seconds
        assert speedup >= MIN_SPARSE_SPEEDUP, (
            f"sparse tier speedup {speedup:.1f}x below the "
            f"{MIN_SPARSE_SPEEDUP}x floor at N=512"
        )
        # Parity spot-check on the same workload.
        dense = _run_crossbar(512, "compiled")
        sparse = _run_crossbar(512, "sparse")
        np.testing.assert_allclose(
            sparse.voltage("col0"), dense.voltage("col0"), atol=1e-10
        )


class TestEngineSpeedupFloors:
    """Hard floors behind the benchmark numbers (robust to runner noise)."""

    def test_compiled_beats_scalar_on_mosfet_heavy_layer(self):
        _run_layer("compiled")  # warm-up (base-matrix/LU compilation paths)
        scalar_seconds = _timed(lambda: _run_layer("scalar"))
        compiled_seconds = _timed(lambda: _run_layer("compiled"), repeats=2)
        speedup = scalar_seconds / compiled_seconds
        assert speedup >= MIN_COMPILED_SPEEDUP, (
            f"compiled engine speedup {speedup:.1f}x below the "
            f"{MIN_COMPILED_SPEEDUP}x floor"
        )
        # Parity spot-check on the same workload.
        scalar = _run_layer("scalar")
        compiled = _run_layer("compiled")
        np.testing.assert_allclose(
            compiled.voltage("n0.vmem"), scalar.voltage("n0.vmem"), atol=1e-5
        )

    def test_batched_sweep_beats_serial_compiled(self):
        def sweep_circuits():
            return [
                build_axon_hillock(LAYER_DESIGN.with_vdd(v)) for v in VDD_GRID
            ]

        kwargs = dict(
            stop_time=STOP_TIME,
            time_step=TIME_STEP,
            use_initial_conditions=True,
            record_nodes=["vmem", "vout"],
        )

        def run_batched():
            return batched_transient_analysis(sweep_circuits(), **kwargs)

        def run_serial():
            return [
                transient_analysis(circuit, engine="compiled", **kwargs)
                for circuit in sweep_circuits()
            ]

        run_batched()  # warm-up
        serial_seconds = _timed(run_serial)
        batched_seconds = _timed(run_batched, repeats=2)
        speedup = serial_seconds / batched_seconds
        assert speedup >= MIN_BATCH_SPEEDUP, (
            f"batched sweep speedup {speedup:.1f}x below the "
            f"{MIN_BATCH_SPEEDUP}x floor"
        )
