"""Tests for repro.analog.units."""

import pytest

from repro.analog.units import (
    parse_value,
    si_format,
    thermal_voltage,
)


@pytest.mark.parametrize(
    "text, expected",
    [
        ("200n", 200e-9),
        ("1p", 1e-12),
        ("20f", 20e-15),
        ("25ns", 25e-9),
        ("0.5ms", 0.5e-3),
        ("10k", 10e3),
        ("100meg", 100e6),
        ("2.2u", 2.2e-6),
        ("1.5", 1.5),
        ("5v", 5.0),
        ("3hz", 3.0),
        ("10kohm", 10e3),
        ("-0.4", -0.4),
        ("1e-9", 1e-9),
    ],
)
def test_parse_value_known_suffixes(text, expected):
    assert parse_value(text) == pytest.approx(expected, rel=1e-12)


def test_parse_value_passes_numbers_through():
    assert parse_value(3) == 3.0
    assert parse_value(0.25) == 0.25


def test_parse_value_femto_beats_farad_unit_name():
    # SPICE precedence: "f" is femto, not farad.
    assert parse_value("20f") == pytest.approx(20e-15)


def test_parse_value_rejects_garbage():
    with pytest.raises(ValueError):
        parse_value("abc")
    with pytest.raises(ValueError)as err:
        parse_value("10q")
    assert "unknown unit suffix" in str(err.value)


def test_si_format_picks_engineering_prefix():
    assert si_format(2e-7, "A") == "200 nA"
    assert si_format(1500, "Hz") == "1.5 kHz"
    assert si_format(0, "V") == "0 V"


def test_si_format_small_values():
    assert "f" in si_format(2e-15, "F")


def test_thermal_voltage_room_temperature():
    assert thermal_voltage() == pytest.approx(0.02585, rel=1e-2)


def test_thermal_voltage_scales_with_temperature():
    assert thermal_voltage(600.3) == pytest.approx(2 * thermal_voltage(300.15), rel=1e-9)
