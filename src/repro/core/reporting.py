"""Plain-text reporting of attack results in the paper's figure format,
plus execution instrumentation from the sweep executor."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.results import AttackGridResult, ExperimentResult
from repro.utils.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.exec.executor import ExecutionStats


def format_experiment_result(result: ExperimentResult) -> str:
    """One experiment as a small key/value table."""
    rows = [
        ("attack", result.attack_label),
        ("accuracy", f"{result.accuracy:.4f}"),
        ("mean excitatory spikes", f"{result.mean_excitatory_spikes:.1f}"),
    ]
    if result.baseline_accuracy is not None:
        rows.append(("baseline accuracy", f"{result.baseline_accuracy:.4f}"))
        rows.append(("accuracy change", f"{result.accuracy_change:+.4f}"))
        degradation = result.relative_degradation
        if degradation is not None:
            rows.append(("relative degradation", f"{degradation:+.2%}"))
    for description in result.fault_descriptions:
        rows.append(("fault", description))
    return format_table(["quantity", "value"], rows, title=result.attack_label)


def format_attack_grid(grid: AttackGridResult, *, as_change: bool = False) -> str:
    """Render a 2-D attack sweep the way the paper's figures present it.

    Rows are the threshold changes, columns the fraction of the layer
    affected; cells are absolute accuracy or (with ``as_change=True``) the
    change from the baseline.
    """
    headers = [grid.row_parameter] + [
        f"{grid.column_parameter}={value:g}" for value in grid.column_values
    ]
    rows = []
    for i, row_value in enumerate(grid.row_values):
        cells = [f"{row_value:+g}"]
        for j in range(len(grid.column_values)):
            value = grid.accuracies[i, j]
            if as_change:
                value = value - grid.baseline_accuracy
                cells.append(f"{value:+.4f}")
            else:
                cells.append(f"{value:.4f}")
        rows.append(cells)
    title = f"{grid.name} (baseline accuracy {grid.baseline_accuracy:.4f}, scale {grid.scale_name})"
    return format_table(headers, rows, title=title)


def format_sweep_series(
    parameter_name: str,
    values: Sequence[float],
    accuracies: Sequence[float],
    *,
    baseline_accuracy: float,
    title: str,
) -> str:
    """Render a 1-D sweep (e.g. accuracy vs VDD) as a table."""
    rows = []
    for value, accuracy in zip(values, accuracies):
        rows.append(
            (
                f"{value:g}",
                f"{accuracy:.4f}",
                f"{accuracy - baseline_accuracy:+.4f}",
            )
        )
    return format_table(
        [parameter_name, "accuracy", "change vs baseline"],
        rows,
        title=f"{title} (baseline {baseline_accuracy:.4f})",
    )


def format_execution_report(stats: "ExecutionStats", *, slowest: int = 5) -> str:
    """Render a :class:`~repro.exec.executor.ExecutionStats` summary.

    Shows how much work the executor did, how much the cache saved, and the
    measured parallel speedup (summed task time over wall-clock time).
    """
    mode = f"parallel ({stats.workers} workers)" if stats.workers >= 2 else "serial"
    rows = [
        ("mode", mode),
        ("batches", str(stats.batches)),
        ("tasks executed", str(stats.tasks_executed)),
        ("cache hits", str(stats.cache_hits)),
        ("wall-clock time", f"{stats.wall_seconds:.2f} s"),
        ("summed task time", f"{stats.task_seconds:.2f} s"),
        ("measured speedup", f"{stats.speedup_estimate():.2f}x"),
    ]
    # Fault-tolerance counters appear only when something actually fired,
    # so clean runs keep the familiar compact report.
    labels = {
        "retries": "task retries",
        "timeouts": "task timeouts",
        "requeues": "straggler re-dispatches",
        "pool_rebuilds": "worker-pool rebuilds",
        "quarantined": "quarantined cache entries",
    }
    for key, count in stats.resilience_events().items():
        if count:
            rows.append((labels[key], str(count)))
    # Elastic work-stealing counters, likewise only on elastic runs.
    elastic_labels = {
        "leases_claimed": "chunk leases claimed",
        "leases_stolen": "expired leases stolen",
        "leases_expired": "lease expiries observed",
        "duplicate_wins": "duplicate first-result wins",
        "peers_joined": "elastic peers seen",
        "peers_lost": "elastic peers lost",
    }
    for key, count in stats.elastic_events().items():
        if count:
            rows.append((elastic_labels[key], str(count)))
    # Microbatch serving counters, only when the serving front-end ran.
    serving_labels = {
        "microbatches": "microbatches formed",
        "microbatch_requests": "serving requests",
        "microbatch_full_flushes": "full flushes",
        "microbatch_linger_flushes": "linger flushes",
        "microbatch_drain_flushes": "drain flushes",
    }
    for key, count in stats.serving_events().items():
        if count:
            rows.append((serving_labels[key], str(count)))
    if stats.microbatches:
        rows.append(
            ("mean batch occupancy", f"{stats.mean_microbatch_occupancy():.2f}")
        )
    for timing in stats.slowest_tasks(slowest):
        # Drop the experiment-config scope prefix: within one report every
        # task shares it, and the attack content is the informative part.
        label = timing.key.rsplit("::", 1)[-1]
        rows.append((f"slowest: {label}", f"{timing.seconds:.2f} s"))
    return format_table(["quantity", "value"], rows, title="sweep execution")


def format_recovered_faults(provenance: Mapping) -> str:
    """Render an artifact's fault-recovery counters as one cell.

    Folds the ``resilience`` block and the recovery-marking subset of the
    ``elastic`` block into a ``key=count`` list ("-" when nothing fired).
    "worker" is an id string, and "peers_joined" / "leases_claimed" fire
    on every healthy elastic run, so none of those belong here — a clean
    campaign must keep the compact "-" cell.
    """
    resilience = provenance.get("resilience", {}) or {}
    fired = {key: count for key, count in resilience.items() if count}
    elastic = provenance.get("elastic", {}) or {}
    fired.update(
        {
            key: count
            for key, count in elastic.items()
            if isinstance(count, int)
            and count
            and key not in ("peers_joined", "leases_claimed")
        }
    )
    if not fired:
        return "-"
    return ", ".join(f"{key}={count}" for key, count in sorted(fired.items()))


def format_artifact_summary(documents: Sequence[Mapping]) -> str:
    """Provenance overview of stored figure artifacts (``repro report``).

    ``documents`` are artifact JSON documents as written by
    :func:`repro.store.save_figure_result` — plain mappings, so this module
    stays import-independent of the store.
    """
    rows = []
    for document in documents:
        provenance = document.get("provenance", {})
        recovered = format_recovered_faults(provenance)
        rows.append(
            (
                document.get("figure", "?"),
                provenance.get("scale", "?"),
                str(provenance.get("seed", "?")),
                str(provenance.get("git_sha", "?"))[:12],
                f"{provenance.get('wall_seconds', 0.0):.2f} s",
                str(provenance.get("executor_tasks", 0)),
                str(provenance.get("executor_cache_hits", 0)),
                recovered,
            )
        )
    return format_table(
        [
            "figure",
            "scale",
            "seed",
            "git SHA",
            "wall",
            "runs",
            "cache hits",
            "recovered faults",
        ],
        rows,
        title=f"Stored figure artifacts ({len(rows)})",
    )


def format_paper_comparison(documents: Sequence[Mapping]) -> str:
    """Measured metrics vs the paper's published numbers, across artifacts.

    Only figures that declare paper claims contribute rows; the difference
    column makes reduced-scale deviations visible at a glance.
    """
    rows = []
    for document in documents:
        metrics = document.get("metrics", {})
        for claim in document.get("claims", []):
            metric = claim.get("metric", "?")
            paper_value = claim.get("paper_value")
            measured = metrics.get(metric)
            if isinstance(measured, (int, float)) and isinstance(
                paper_value, (int, float)
            ):
                delta = f"{measured - paper_value:+.4f}"
                measured_text = f"{measured:.4f}"
                paper_text = f"{paper_value:.4f}"
            else:
                delta, measured_text, paper_text = "n/a", str(measured), str(paper_value)
            rows.append(
                (
                    document.get("figure", "?"),
                    claim.get("description") or metric,
                    paper_text,
                    measured_text,
                    delta,
                )
            )
    if not rows:
        return "No paper claims declared by the stored artifacts."
    return format_table(
        ["figure", "quantity", "paper", "reproduced", "difference"],
        rows,
        title="Reproduction vs the paper's published numbers",
    )
