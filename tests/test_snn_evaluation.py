"""Tests for neuron-class assignment and accuracy metrics."""

import numpy as np
import pytest

from repro.snn.evaluation import (
    all_activity_prediction,
    assign_labels,
    classification_accuracy,
    proportion_weighting_prediction,
)


def perfectly_separable_counts(n_examples_per_class=5, n_classes=3, neurons_per_class=4):
    """Each class drives its own block of neurons."""
    rng = np.random.default_rng(0)
    counts, labels = [], []
    for cls in range(n_classes):
        for _ in range(n_examples_per_class):
            row = rng.poisson(1.0, n_classes * neurons_per_class).astype(float)
            row[cls * neurons_per_class : (cls + 1) * neurons_per_class] += 20.0
            counts.append(row)
            labels.append(cls)
    return np.array(counts), np.array(labels)


def test_assign_labels_recovers_block_structure():
    counts, labels = perfectly_separable_counts()
    assignments, rates = assign_labels(counts, labels, 3)
    expected = np.repeat(np.arange(3), 4)
    assert np.array_equal(assignments, expected)
    assert rates.shape == (3, 12)


def test_all_activity_prediction_perfect_on_separable_data():
    counts, labels = perfectly_separable_counts()
    assignments, _ = assign_labels(counts, labels, 3)
    predictions = all_activity_prediction(counts, assignments, 3)
    assert classification_accuracy(predictions, labels) == 1.0


def test_proportion_weighting_perfect_on_separable_data():
    counts, labels = perfectly_separable_counts()
    assignments, rates = assign_labels(counts, labels, 3)
    predictions = proportion_weighting_prediction(counts, assignments, rates, 3)
    assert classification_accuracy(predictions, labels) == 1.0


def test_silent_network_gives_chance_level_predictions():
    counts = np.zeros((30, 12))
    labels = np.repeat(np.arange(3), 10)
    assignments, _ = assign_labels(np.ones((30, 12)), labels, 3)
    predictions = all_activity_prediction(counts, assignments, 3)
    accuracy = classification_accuracy(predictions, labels)
    assert accuracy <= 0.5  # degenerate predictions collapse to one class


def test_assign_labels_handles_missing_class():
    counts = np.ones((4, 5))
    labels = np.array([0, 0, 1, 1])
    assignments, rates = assign_labels(counts, labels, n_classes=3)
    assert rates[2].sum() == 0.0
    assert set(assignments.tolist()) <= {0, 1}


def test_validation_errors():
    with pytest.raises(ValueError):
        assign_labels(np.ones((3, 4)), np.zeros(2), 2)
    with pytest.raises(ValueError):
        assign_labels(np.ones(3), np.zeros(3), 2)
    with pytest.raises(ValueError):
        all_activity_prediction(np.ones(3), np.zeros(3), 2)
    with pytest.raises(ValueError):
        classification_accuracy(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        classification_accuracy(np.zeros(0), np.zeros(0))


def test_accuracy_simple_counts():
    assert classification_accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)


# ---------------------------------------------------------------------------
# Scatter-vectorisation regression: the per-class loops were replaced with
# np.add.at / bincount reductions; these references are the previous loop
# implementations, and the outputs must stay bit-identical on spike-count
# data (integer-valued floats — what every in-repo caller passes).
# ---------------------------------------------------------------------------


def _reference_assign_labels(spike_counts, labels, n_classes):
    spike_counts = np.asarray(spike_counts, dtype=float)
    labels = np.asarray(labels, dtype=int)
    n_neurons = spike_counts.shape[1]
    rates = np.zeros((n_classes, n_neurons))
    for cls in range(n_classes):
        mask = labels == cls
        if mask.any():
            rates[cls] = spike_counts[mask].mean(axis=0)
    return rates.argmax(axis=0), rates


def _reference_all_activity(spike_counts, assignments, n_classes):
    spike_counts = np.asarray(spike_counts, dtype=float)
    n_examples = spike_counts.shape[0]
    scores = np.zeros((n_examples, n_classes))
    for cls in range(n_classes):
        mask = assignments == cls
        count = int(mask.sum())
        if count:
            scores[:, cls] = spike_counts[:, mask].sum(axis=1) / count
    return scores.argmax(axis=1)


def _reference_proportion_weighting(spike_counts, assignments, class_rates, n_classes):
    spike_counts = np.asarray(spike_counts, dtype=float)
    class_rates = np.asarray(class_rates, dtype=float)
    totals = class_rates.sum(axis=0)
    totals[totals == 0] = 1.0
    proportions = class_rates / totals
    n_examples = spike_counts.shape[0]
    scores = np.zeros((n_examples, n_classes))
    for cls in range(n_classes):
        mask = assignments == cls
        count = int(mask.sum())
        if count:
            weighted = spike_counts[:, mask] * proportions[cls, mask][None, :]
            scores[:, cls] = weighted.sum(axis=1) / count
    return scores.argmax(axis=1)


def spike_count_matrix(n_examples=120, n_neurons=50, n_classes=10, seed=0):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 80, size=(n_examples, n_neurons)).astype(float)
    labels = rng.integers(0, n_classes, size=n_examples)
    return counts, labels


class TestScatterVectorisationRegression:
    def test_assign_labels_bit_identical(self):
        counts, labels = spike_count_matrix()
        assignments, rates = assign_labels(counts, labels, 10)
        ref_assignments, ref_rates = _reference_assign_labels(counts, labels, 10)
        assert np.array_equal(assignments, ref_assignments)
        assert np.array_equal(rates, ref_rates)

    def test_assign_labels_bit_identical_on_float_rates(self):
        # The example-axis reduction is sequential in both formulations, so
        # even non-integer inputs stay bit-identical.
        rng = np.random.default_rng(4)
        counts = rng.random((75, 33))
        labels = rng.integers(0, 7, size=75)
        _, rates = assign_labels(counts, labels, 7)
        _, ref_rates = _reference_assign_labels(counts, labels, 7)
        assert np.array_equal(rates, ref_rates)

    def test_all_activity_bit_identical(self):
        counts, labels = spike_count_matrix(seed=1)
        assignments, _ = assign_labels(counts, labels, 10)
        predictions = all_activity_prediction(counts, assignments, 10)
        reference = _reference_all_activity(counts, assignments, 10)
        assert np.array_equal(predictions, reference)

    def test_proportion_weighting_bit_identical(self):
        counts, labels = spike_count_matrix(seed=2)
        assignments, rates = assign_labels(counts, labels, 10)
        predictions = proportion_weighting_prediction(counts, assignments, rates, 10)
        reference = _reference_proportion_weighting(counts, assignments, rates, 10)
        assert np.array_equal(predictions, reference)

    def test_out_of_range_labels_rejected(self):
        # The loop formulation silently skipped stray labels; the scatter
        # formulation makes the contract explicit instead of wrapping.
        counts = np.ones((3, 4))
        with pytest.raises(ValueError):
            assign_labels(counts, np.array([0, 1, -1]), 2)
        with pytest.raises(ValueError):
            assign_labels(counts, np.array([0, 1, 2]), 2)
        with pytest.raises(ValueError):
            all_activity_prediction(counts, np.array([0, 5, 0, 1]), 2)

    def test_empty_classes_stay_silent(self):
        counts, _ = spike_count_matrix(n_examples=20, seed=3)
        labels = np.zeros(20, dtype=int)  # only class 0 is ever seen
        assignments, rates = assign_labels(counts, labels, 5)
        ref_assignments, ref_rates = _reference_assign_labels(counts, labels, 5)
        assert np.array_equal(rates, ref_rates)
        assert np.array_equal(assignments, ref_assignments)
        predictions = all_activity_prediction(counts, assignments, 5)
        assert np.array_equal(predictions, _reference_all_activity(counts, assignments, 5))
