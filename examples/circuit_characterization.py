"""Circuit-level characterisation of the analog neurons and drivers.

Reproduces the circuit-tier sensitivity analyses of the paper directly from
the MNA netlists and the behavioural models, and prints a transient summary
of both neurons.

Figures reproduced
    Fig. 5b (driver amplitude vs VDD), Fig. 6a (threshold sensitivity vs
    VDD), and the circuit halves of Figs. 9b/10a (robust driver and
    comparator defenses).
Expected runtime
    ~1-2 min on a laptop (dozens of small transient/DC simulations; no SNN
    training involved).

Usage::

    python examples/circuit_characterization.py
"""

import numpy as np

from repro.circuits import (
    AxonHillockDesign,
    amplitude_vs_vdd,
    simulate_axon_hillock,
    threshold_vs_vdd,
    trip_point_vs_vdd,
)
from repro.circuits import robust_driver
from repro.neurons import AxonHillockModel, CurrentDriverModel, IFAmplifierModel
from repro.utils.tables import format_table

VDD_VALUES = np.array([0.8, 0.9, 1.0, 1.1, 1.2])


def supply_sensitivity_tables() -> None:
    driver_amplitude = amplitude_vs_vdd(VDD_VALUES)
    robust_amplitude = robust_driver.amplitude_vs_vdd(VDD_VALUES)
    inverter_threshold = threshold_vs_vdd(VDD_VALUES)
    comparator_trip = trip_point_vs_vdd(VDD_VALUES)
    rows = []
    for i, vdd in enumerate(VDD_VALUES):
        rows.append(
            (
                vdd,
                f"{driver_amplitude[i] * 1e9:.0f} nA",
                f"{robust_amplitude[i] * 1e9:.0f} nA",
                f"{inverter_threshold[i]:.3f} V",
                f"{comparator_trip[i]:.3f} V",
            )
        )
    print(
        format_table(
            ["VDD", "driver output", "robust driver", "inverter threshold", "comparator trip"],
            rows,
            title="Supply sensitivity of the SNN front-end circuits (Figs. 5b, 6a, 9b, 10a)",
        )
    )


def behavioural_time_to_spike_table() -> None:
    driver = CurrentDriverModel()
    neurons = {"Axon-Hillock": AxonHillockModel(), "I&F amplifier": IFAmplifierModel()}
    rows = []
    for name, neuron in neurons.items():
        base = neuron.time_to_first_spike(driver.nominal_amplitude, vdd=1.0)
        for vdd in (0.8, 1.2):
            amplitude = driver.amplitude(vdd)
            tts = neuron.time_to_first_spike(amplitude, vdd=vdd)
            rows.append((name, vdd, f"{tts * 1e6:.2f} us", f"{(tts - base) / base:+.1%}"))
    print()
    print(
        format_table(
            ["neuron", "VDD", "time-to-spike", "change"],
            rows,
            title="Combined amplitude + threshold effect on time-to-spike",
        )
    )


def transient_waveform_summary() -> None:
    design = AxonHillockDesign(membrane_capacitance=0.2e-12, feedback_capacitance=0.2e-12)
    result = simulate_axon_hillock(design, stop_time="6u", time_step="5n")
    vout = result.waveform("vout")
    spikes = vout.detect_spikes(0.5, min_separation=200e-9)
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ("membrane peak", f"{result.waveform('vmem').maximum():.3f} V"),
                ("output peak", f"{vout.maximum():.3f} V"),
                ("output spikes in 6 us", len(spikes)),
            ],
            title="Axon-Hillock transient (MNA netlist, scaled capacitors)",
        )
    )


def main() -> None:
    supply_sensitivity_tables()
    behavioural_time_to_spike_table()
    transient_waveform_summary()


if __name__ == "__main__":
    main()
