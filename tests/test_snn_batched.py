"""Batched-vs-scalar SNN engine parity suite.

Mirrors ``tests/test_analog_compiled.py`` one tier up: every model variant
registered in :data:`repro.snn.models.MODEL_VARIANTS` is trained and
evaluated on the scalar reference engine and on the lockstep batched engine
(variant-batched and example-batched, learning on and off), and the results
are compared for *bit-identical* equality — spike rasters, membrane traces,
weights, adaptation state, spike counts and pipeline accuracies.
"""

import numpy as np
import pytest

from repro.attacks.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack5GlobalSupply,
)
from repro.attacks.campaign import AttackCampaign
from repro.core import ClassificationPipeline, ExperimentConfig
from repro.snn import (
    BatchedNetwork,
    BatchedSpikeMonitor,
    BatchedStateMonitor,
    Connection,
    InputNodes,
    LIFNodes,
    MODEL_VARIANTS,
    Network,
    SpikeMonitor,
    StateMonitor,
)
from repro.snn.batched import (
    BatchedNetworkError,
    NetworkTopologyMismatchError,
    reduction_contract_holds,
    UnsupportedNetworkError,
)

#: Per-variant corruptions exercised against every model (nominal + two
#: attacked parameter sets, the shape of a campaign grid).
CORRUPTIONS = (
    {"threshold_scale": 1.0, "input_gain": 1.0},
    {"threshold_scale": 0.8, "input_gain": 1.1},
    {"threshold_scale": 1.2, "input_gain": 0.9},
)


def corrupted_variants(builder, seed):
    """One network per corruption, faults on the first LIF layer."""
    networks = []
    for corruption in CORRUPTIONS:
        network = builder(seed)
        for nodes in network.layers.values():
            if isinstance(nodes, LIFNodes):
                nodes.threshold_scale[:] = corruption["threshold_scale"]
                nodes.input_gain[:] = corruption["input_gain"]
                break
        networks.append(network)
    return networks


def input_layer_name(network):
    for name, nodes in network.layers.items():
        if isinstance(nodes, InputNodes):
            return name
    raise AssertionError("model has no input layer")


def spike_layer_name(network):
    return next(iter(network.monitors.values())).layer_name


def make_rasters(network, count, time_steps=40, seed=11):
    rng = np.random.default_rng(seed)
    n = network.layers[input_layer_name(network)].n
    return [rng.random((time_steps, n)) < 0.25 for _ in range(count)]


def scalar_reference(builder, seed, rasters_train, rasters_eval):
    """Train/evaluate each corruption separately on the scalar engine."""
    outputs = []
    for variant, _ in enumerate(CORRUPTIONS):
        network = corrupted_variants(builder, seed)[variant]
        layer = spike_layer_name(network)
        input_name = input_layer_name(network)
        network.add_monitor("v_trace", StateMonitor(layer, "v"))
        for raster in rasters_train:
            network.set_learning(True)
            for connection in network.connections.values():
                connection.normalize()
            network.reset_monitors()
            network.reset_state_variables()
            network.run({input_name: raster})
        eval_rasters, eval_traces = [], []
        for raster in rasters_eval:
            network.set_learning(False)
            network.reset_monitors()
            network.reset_state_variables()
            network.run({input_name: raster})
            eval_rasters.append(network.monitors[f"{layer}_spikes"].get()
                                if f"{layer}_spikes" in network.monitors
                                else list(network.monitors.values())[0].get())
            eval_traces.append(network.monitors["v_trace"].get())
        outputs.append((network, eval_rasters, eval_traces))
    return outputs


@pytest.mark.parametrize("name", sorted(MODEL_VARIANTS))
class TestVariantAndExampleParity:
    """Every registered model: variant-batched training + example-batched eval."""

    def test_bitwise_parity(self, name):
        builder = MODEL_VARIANTS[name]
        template = builder(5)
        rasters_train = make_rasters(template, 4)
        rasters_eval = make_rasters(template, 3, seed=23)
        input_name = input_layer_name(template)
        layer = spike_layer_name(template)

        references = scalar_reference(builder, 5, rasters_train, rasters_eval)

        batched = BatchedNetwork.from_networks(corrupted_variants(builder, 5))
        spikes = batched.add_monitor("spikes", BatchedSpikeMonitor(layer))
        voltage = batched.add_monitor("v", BatchedStateMonitor(layer, "v"))
        for raster in rasters_train:
            batched.present({input_name: raster}, learning=True)

        # Trained weights and adaptation state match every scalar variant.
        for key in template.connections:
            for variant, (reference, _, _) in enumerate(references):
                assert np.array_equal(
                    batched.variant_weights(key, variant),
                    reference.connections[key].w,
                ), f"{name}: weights diverged on {key} variant {variant}"
        for variant, (reference, _, _) in enumerate(references):
            nodes = reference.layers[layer]
            if hasattr(nodes, "theta"):
                assert np.array_equal(
                    batched.layer_theta(layer, variant), nodes.theta
                )

        # Example-batched inference: all eval rasters at once, all variants.
        batched.present(
            {input_name: np.stack(rasters_eval)}, learning=False
        )
        for variant, (_, eval_rasters, eval_traces) in enumerate(references):
            for example, (raster, trace) in enumerate(zip(eval_rasters, eval_traces)):
                assert np.array_equal(spikes.raster(variant, example), raster)
                assert np.array_equal(voltage.trace(variant, example), trace)
        counts = spikes.spike_counts()
        for variant, (_, eval_rasters, _) in enumerate(references):
            per_example = np.stack([raster.sum(axis=0) for raster in eval_rasters])
            assert np.array_equal(counts[variant], per_example)


class TestPipelineParity:
    """Engine choice never changes pipeline results — bit for bit."""

    ATTACKS = [
        None,
        Attack1InputSpikeCorruption(theta_change=-0.2),
        Attack2ExcitatoryThreshold(threshold_change=-0.2, fraction=0.5),
        Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0),
        Attack5GlobalSupply(vdd=0.8),
    ]

    @pytest.fixture(scope="class")
    def tiny_config(self):
        return ExperimentConfig.tiny()

    @pytest.fixture(scope="class")
    def scalar_results(self, tiny_config):
        pipeline = ClassificationPipeline(tiny_config, engine="scalar")
        return [pipeline.run(attack) for attack in self.ATTACKS]

    def test_auto_engine_resolves(self, tiny_config):
        pipeline = ClassificationPipeline(tiny_config)
        assert pipeline.engine == "auto"
        expected = "batched" if reduction_contract_holds() else "scalar"
        assert pipeline.resolved_engine == expected

    def test_batched_inference_matches_scalar_runs(self, tiny_config, scalar_results):
        pipeline = ClassificationPipeline(tiny_config, engine="batched")
        for attack, reference in zip(self.ATTACKS, scalar_results):
            result = pipeline.run(attack)
            assert result.accuracy == reference.accuracy
            assert result.mean_excitatory_spikes == reference.mean_excitatory_spikes
            assert result.fault_descriptions == reference.fault_descriptions

    def test_run_batch_matches_scalar_runs(self, tiny_config, scalar_results):
        pipeline = ClassificationPipeline(tiny_config, engine="batched")
        results = pipeline.run_batch(self.ATTACKS)
        for result, reference in zip(results, scalar_results):
            assert result.accuracy == reference.accuracy
            assert result.mean_excitatory_spikes == reference.mean_excitatory_spikes
            assert result.fault_descriptions == reference.fault_descriptions
            assert result.attack_label == reference.attack_label
        # The batch contained the baseline, so attacked results carry it.
        baseline = results[0].accuracy
        assert all(result.baseline_accuracy == baseline for result in results)

    def test_example_chunking_is_invisible(self, tiny_config, scalar_results):
        pipeline = ClassificationPipeline(
            tiny_config, engine="batched", example_chunk=7
        )
        result = pipeline.run(self.ATTACKS[2])
        assert result.accuracy == scalar_results[2].accuracy

    def test_campaign_batched_dispatch_matches_serial(self, tiny_config):
        batched = AttackCampaign(ClassificationPipeline(tiny_config))
        scalar = AttackCampaign(
            ClassificationPipeline(tiny_config, engine="scalar"), batch_runs=False
        )
        grid_b = batched.sweep_layer_threshold("inhibitory", (-0.2, 0.2), (0.0, 1.0))
        grid_s = scalar.sweep_layer_threshold("inhibitory", (-0.2, 0.2), (0.0, 1.0))
        assert np.array_equal(grid_b.accuracies, grid_s.accuracies)
        assert grid_b.baseline_accuracy == grid_s.baseline_accuracy
        assert batched.executor.dispatcher.batched_sweeps >= 1
        assert scalar.executor.dispatcher.batched_sweeps == 0
        modes = {t.worker_mode for t in batched.executor.stats.timings if not t.cached}
        assert modes == {"batched"}


class TestEngineGuards:
    def test_reduction_contract_holds_here(self):
        assert reduction_contract_holds()

    def test_example_batching_requires_learning_off(self):
        network = MODEL_VARIANTS["lif_feedforward_postpre"](0)
        batched = BatchedNetwork.from_networks([network])
        rasters = np.zeros((2, 5, network.layers["input"].n), dtype=bool)
        with pytest.raises(BatchedNetworkError):
            batched.present({"input": rasters}, learning=True)

    def test_topology_mismatch_rejected(self):
        a = MODEL_VARIANTS["lif_feedforward_postpre"](0)
        b = MODEL_VARIANTS["adaptive_weight_dependent"](0)
        with pytest.raises(NetworkTopologyMismatchError):
            BatchedNetwork.from_networks([a, b])

    def test_unsupported_rule_rejected(self):
        class OddRule:
            def update(self, connection):
                return None

        network = Network()
        source = network.add_layer("input", InputNodes(4))
        target = network.add_layer("out", LIFNodes(2))
        network.add_connection(
            "input",
            "out",
            Connection(source, target, w=np.ones((4, 2)), update_rule=OddRule()),
        )
        with pytest.raises(UnsupportedNetworkError):
            BatchedNetwork.from_networks([network])

    def test_empty_batch_rejected(self):
        with pytest.raises(BatchedNetworkError):
            BatchedNetwork.from_networks([])

    def test_input_raster_shape_validated(self):
        network = MODEL_VARIANTS["lif_feedforward_postpre"](0)
        batched = BatchedNetwork.from_networks([network])
        with pytest.raises(ValueError):
            batched.run({"input": np.zeros((5, 3), dtype=bool)})
        with pytest.raises(KeyError):
            batched.run({"missing": np.zeros((5, 24), dtype=bool)})

    def test_rasters_survive_presentation(self):
        # The engine must not mutate caller-owned rasters via state resets.
        network = MODEL_VARIANTS["lif_feedforward_postpre"](0)
        batched = BatchedNetwork.from_networks([network])
        raster = np.ones((5, 24), dtype=bool)
        batched.present({"input": raster}, learning=False)
        batched.present({"input": raster}, learning=False)
        assert raster.all()


class TestScalarMonitorCompat:
    """The batched monitors mirror the scalar monitors' count conventions."""

    def test_counts_only_monitor_matches_raster_monitor(self):
        network = MODEL_VARIANTS["lif_feedforward_postpre"](3)
        raster = make_rasters(network, 1)[0]
        scalar_counts = None
        reference = MODEL_VARIANTS["lif_feedforward_postpre"](3)
        reference.set_learning(False)
        reference.reset_state_variables()
        reference.run({"input": raster})
        scalar_counts = reference.monitors["readout_spikes"].spike_counts()

        batched = BatchedNetwork.from_networks([network])
        counting = batched.add_monitor(
            "counts", BatchedSpikeMonitor("readout", counts_only=True)
        )
        full = batched.add_monitor("raster", BatchedSpikeMonitor("readout"))
        batched.present({"input": raster}, learning=False)
        assert np.array_equal(counting.spike_counts()[0, 0], scalar_counts)
        assert np.array_equal(full.spike_counts()[0, 0], scalar_counts)
        with pytest.raises(ValueError):
            counting.raster()

    def test_scalar_spike_monitor_still_composes(self):
        # Sanity: the rewritten scalar monitors behave like the originals.
        monitor = SpikeMonitor("layer")
        nodes = LIFNodes(3)
        nodes.spikes = np.array([True, False, True])
        monitor.record(nodes)
        nodes.spikes = np.array([False, False, True])
        monitor.record(nodes)
        assert np.array_equal(monitor.spike_counts(), [1, 0, 2])
        assert monitor.get().shape == (2, 3)
