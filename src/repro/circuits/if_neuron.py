"""Voltage-amplifier integrate-and-fire neuron circuit (paper Fig. 2b).

Van Schaik's voltage-amplifier I&F neuron uses an explicit threshold: a
5-transistor amplifier compares the membrane voltage with an externally
supplied ``Vthr`` (0.5 V nominal, derived from VDD through a resistive
divider — which is exactly why VDD manipulation corrupts the threshold).
When the comparator trips, a first inverter turns on a PMOS that pulls the
membrane up to VDD, a second inverter charges the refractory capacitor
``Ck``, and the ``Ck`` node drives the reset transistor ``MN1`` which holds
the membrane low until ``Ck`` discharges again (the explicit refractory
period).

Default component values follow the paper: ``Cmem = 10 pF``, ``Ck = 20 pF``,
``Vlk = 0.2 V`` leak bias, 200 nA / 25 ns input spikes with 25 ns spacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analog import Circuit, PulseSource, transient_analysis
from repro.analog.mosfet import MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.analog.units import ValueLike, parse_value
from repro.circuits.inverter import InverterSizing, add_inverter
from repro.circuits.ota import OTASizing, add_five_transistor_ota
from repro.utils.validation import check_positive


@dataclass
class IFNeuronDesign:
    """Component values for the voltage-amplifier I&F neuron."""

    membrane_capacitance: float = 10e-12
    refractory_capacitance: float = 20e-12
    vdd: float = 1.0
    #: Fraction of VDD produced by the threshold voltage divider.
    threshold_divider_ratio: float = 0.5
    #: Total resistance of the Vthr divider string.
    threshold_divider_resistance: float = 10e6
    leak_bias: float = 0.2
    leak_width: float = 200e-9
    reset_width: float = 2e-6
    pullup_width: float = 2e-6
    refractory_charge_resistance: float = 200e3
    refractory_discharge_resistance: float = 2e6
    comparator: OTASizing = field(default_factory=OTASizing)
    inverter: InverterSizing = field(default_factory=InverterSizing)
    nmos_params: MOSFETParameters = NMOS_65NM
    pmos_params: MOSFETParameters = PMOS_65NM

    def __post_init__(self) -> None:
        check_positive(self.membrane_capacitance, "membrane_capacitance")
        check_positive(self.refractory_capacitance, "refractory_capacitance")
        check_positive(self.vdd, "vdd")
        check_positive(self.threshold_divider_resistance, "threshold_divider_resistance")
        if not 0.0 < self.threshold_divider_ratio < 1.0:
            raise ValueError("threshold_divider_ratio must be in (0, 1)")

    @property
    def nominal_threshold(self) -> float:
        """Vthr produced by the divider at the configured VDD."""
        return self.vdd * self.threshold_divider_ratio

    def with_vdd(self, vdd: float) -> "IFNeuronDesign":
        """Copy of the design at a different supply voltage (attack knob)."""
        return IFNeuronDesign(
            membrane_capacitance=self.membrane_capacitance,
            refractory_capacitance=self.refractory_capacitance,
            vdd=vdd,
            threshold_divider_ratio=self.threshold_divider_ratio,
            threshold_divider_resistance=self.threshold_divider_resistance,
            leak_bias=self.leak_bias,
            leak_width=self.leak_width,
            reset_width=self.reset_width,
            pullup_width=self.pullup_width,
            refractory_charge_resistance=self.refractory_charge_resistance,
            refractory_discharge_resistance=self.refractory_discharge_resistance,
            comparator=self.comparator,
            inverter=self.inverter,
            nmos_params=self.nmos_params,
            pmos_params=self.pmos_params,
        )


def build_if_neuron(
    design: Optional[IFNeuronDesign] = None,
    *,
    input_source=None,
    external_threshold: Optional[float] = None,
) -> Circuit:
    """Build the voltage-amplifier I&F neuron circuit.

    Nodes: ``vdd``, ``vmem``, ``vthr`` (threshold), ``vcmp`` (comparator
    output), ``y1``/``y2`` (inverter outputs), ``vk`` (refractory capacitor).

    Parameters
    ----------
    design:
        Component values; paper defaults when omitted.
    input_source:
        Waveform for the input current spikes (defaults to the paper's
        200 nA / 25 ns / 25 ns-gap train).
    external_threshold:
        When given, ``vthr`` is driven by an ideal voltage source at this
        value instead of the VDD divider — this models the bandgap-referenced
        threshold defense (paper Sec. V-B-1).
    """
    design = design or IFNeuronDesign()
    if input_source is None:
        input_source = default_input_spike_train()

    circuit = Circuit("voltage_amplifier_if_neuron")
    circuit.add_voltage_source("VDD", "vdd", "0", design.vdd)
    circuit.add_voltage_source("VLK", "vlk", "0", design.leak_bias)
    circuit.add_current_source("IIN", "0", "vmem", input_source)
    circuit.add_capacitor("CMEM", "vmem", "0", design.membrane_capacitance)

    # Threshold generation: either the VDD-referenced resistive divider (the
    # vulnerable nominal design) or an ideal external reference (defense).
    if external_threshold is None:
        r_total = design.threshold_divider_resistance
        r_top = r_total * (1.0 - design.threshold_divider_ratio)
        r_bottom = r_total * design.threshold_divider_ratio
        circuit.add_resistor("RTHR_TOP", "vdd", "vthr", r_top)
        circuit.add_resistor("RTHR_BOT", "vthr", "0", r_bottom)
    else:
        circuit.add_voltage_source("VTHR", "vthr", "0", external_threshold)

    # Membrane leak transistor MN4 (subthreshold, gate at Vlk).
    circuit.add_mosfet(
        "MN4",
        "vmem",
        "vlk",
        "0",
        design.nmos_params,
        width=design.leak_width,
        length=130e-9,
    )

    # 5-transistor comparator: fires when vmem crosses vthr.
    add_five_transistor_ota(
        circuit,
        "CMP",
        "vmem",
        "vthr",
        "vcmp",
        "vdd",
        sizing=design.comparator,
        nmos_params=design.nmos_params,
        pmos_params=design.pmos_params,
    )
    circuit.add_capacitor("CCMP", "vcmp", "0", "20f")

    # First inverter: its low-going output turns on the PMOS pull-up that
    # snaps the membrane to VDD once the comparator fires.
    add_inverter(
        circuit,
        "INV1",
        "vcmp",
        "y1",
        "vdd",
        sizing=design.inverter,
        nmos_params=design.nmos_params,
        pmos_params=design.pmos_params,
    )
    # Small parasitic load keeps the high-gain internal node well behaved.
    circuit.add_capacitor("CY1", "y1", "0", "10f")
    circuit.add_mosfet(
        "MPU",
        "vmem",
        "y1",
        "vdd",
        design.pmos_params,
        width=design.pullup_width,
        length=65e-9,
    )

    # Second inverter charges the refractory capacitor Ck.
    add_inverter(
        circuit,
        "INV2",
        "y1",
        "y2",
        "vdd",
        sizing=design.inverter,
        nmos_params=design.nmos_params,
        pmos_params=design.pmos_params,
    )
    circuit.add_capacitor("CY2", "y2", "0", "10f")
    circuit.add_resistor("RK_CHARGE", "y2", "vk", design.refractory_charge_resistance)
    circuit.add_capacitor("CK", "vk", "0", design.refractory_capacitance)
    circuit.add_resistor("RK_LEAK", "vk", "0", design.refractory_discharge_resistance)

    # Reset transistor MN1: pulls the membrane to ground while vk is high.
    circuit.add_mosfet(
        "MN1",
        "vmem",
        "vk",
        "0",
        design.nmos_params,
        width=design.reset_width,
        length=65e-9,
    )
    return circuit


def default_input_spike_train(
    amplitude: ValueLike = "200n",
    *,
    spike_width: ValueLike = "25n",
    period: ValueLike = "50n",
    delay: ValueLike = "5n",
) -> PulseSource:
    """The paper's nominal input: 200 nA / 25 ns spikes with 25 ns spacing."""
    return PulseSource(
        0.0,
        parse_value(amplitude),
        width=spike_width,
        period=period,
        rise="0.5n",
        fall="0.5n",
        delay=delay,
    )


def simulate_if_neuron(
    design: Optional[IFNeuronDesign] = None,
    *,
    input_source=None,
    external_threshold: Optional[float] = None,
    stop_time: ValueLike = "40u",
    time_step: ValueLike = "10n",
    engine: str = "auto",
):
    """Transient simulation of the I&F neuron (paper Fig. 4).

    ``engine`` selects the solver backend (compiled by default, see
    :mod:`repro.analog.compiled`).
    """
    circuit = build_if_neuron(
        design, input_source=input_source, external_threshold=external_threshold
    )
    return transient_analysis(
        circuit,
        stop_time=stop_time,
        time_step=time_step,
        use_initial_conditions=True,
        record_nodes=["vmem", "vthr", "vcmp", "y1", "y2", "vk"],
        engine=engine,
    )
