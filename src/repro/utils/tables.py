"""Plain-text table rendering for experiment and benchmark reports.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers format them readably on a terminal without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_mapping(mapping: Mapping, *, title: str | None = None) -> str:
    """Render a key/value mapping as a two-column table."""
    return format_table(
        ["key", "value"], [(k, v) for k, v in mapping.items()], title=title
    )
