"""A small, self-contained analog circuit simulator.

The paper characterises its neuron circuits in HSPICE with PTM 65 nm models.
This package provides the simulation substrate used by the reproduction:

* :mod:`repro.analog.units` — SI unit suffix parsing and constants.
* :mod:`repro.analog.devices` — linear devices (R, C, L, sources, switches).
* :mod:`repro.analog.mosfet` — a level-1 (square-law) MOSFET model with
  channel-length modulation and a smooth subthreshold tail, parameterised to
  approximate a 65 nm low-power CMOS process.
* :mod:`repro.analog.netlist` — circuit/netlist construction with named nodes
  and hierarchical subcircuits.
* :mod:`repro.analog.mna` — modified nodal analysis matrix assembly (the
  scalar reference engine).
* :mod:`repro.analog.compiled` — the compiled engine: per-topology split
  linear/nonlinear assembly, vectorised MOSFET/diode/switch evaluation and
  LU reuse.  Selected automatically (``engine="auto"``) by the analyses.
* :mod:`repro.analog.sparse` — the large-N engine tier: CSC assembly over
  the compiled scatter maps with ``scipy.sparse.linalg.splu`` factor reuse.
  Selected by ``engine="sparse"`` or automatically at crossbar-scale sizes.
* :mod:`repro.analog.batch` — lockstep batched transients/DC sweeps over
  parameter variants of one topology (stacked ``(B, N, N)`` dense or
  ``(B, nnz)`` sparse solves).
* :mod:`repro.analog.dc` — Newton-Raphson DC operating point and DC sweeps.
* :mod:`repro.analog.transient` — backward-Euler transient analysis.
* :mod:`repro.analog.waveform` — waveform post-processing (spike detection,
  threshold crossings, rise/fall times).
* :mod:`repro.analog.sweep` — parameter sweep drivers used by the
  sensitivity analyses (threshold vs VDD, driver amplitude vs VDD, ...).

The solver is deliberately compact, but it is a real circuit simulator:
every figure-level sensitivity in the paper is produced by solving the
nonlinear device equations, not by table lookup.  Single-neuron testbenches
(tens of nodes) run dense; crossbar-layer netlists (hundreds to a thousand
unknowns, see :mod:`repro.circuits.crossbar`) route to the sparse tier.
"""

from repro.analog.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    PulseSource,
    PiecewiseLinearSource,
    Resistor,
    VoltageControlledSwitch,
    VoltageSource,
)
from repro.analog.mosfet import MOSFET, MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.analog.netlist import Circuit, SubCircuit
from repro.analog.compiled import (
    CompiledCircuit,
    EngineStats,
    estimate_system_size,
    make_system,
)
from repro.analog.sparse import SparseCircuit, try_sparse_system
from repro.analog.batch import (
    BatchedCircuit,
    TopologyMismatchError,
    batched_dc_sweep,
    batched_operating_points,
    batched_transient_analysis,
    shares_topology,
)
from repro.analog.dc import OperatingPoint, dc_operating_point, dc_sweep
from repro.analog.transient import TransientResult, transient_analysis
from repro.analog.waveform import Waveform, detect_spikes, threshold_crossings
from repro.analog.sweep import ParameterSweep, SweepResult
from repro.analog.units import parse_value, si_format

__all__ = [
    "Capacitor",
    "CurrentSource",
    "Diode",
    "Inductor",
    "PulseSource",
    "PiecewiseLinearSource",
    "Resistor",
    "VoltageControlledSwitch",
    "VoltageSource",
    "MOSFET",
    "MOSFETParameters",
    "NMOS_65NM",
    "PMOS_65NM",
    "Circuit",
    "SubCircuit",
    "CompiledCircuit",
    "EngineStats",
    "estimate_system_size",
    "make_system",
    "SparseCircuit",
    "try_sparse_system",
    "BatchedCircuit",
    "TopologyMismatchError",
    "batched_dc_sweep",
    "batched_operating_points",
    "batched_transient_analysis",
    "shares_topology",
    "OperatingPoint",
    "dc_operating_point",
    "dc_sweep",
    "TransientResult",
    "transient_analysis",
    "Waveform",
    "detect_spikes",
    "threshold_crossings",
    "ParameterSweep",
    "SweepResult",
    "parse_value",
    "si_format",
]
