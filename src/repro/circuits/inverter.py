"""CMOS inverter and its switching-threshold extraction.

The Axon-Hillock neuron's membrane threshold *is* the switching threshold of
its first inverter (paper Sec. V-B-2), so the inverter is the primitive whose
supply-voltage sensitivity drives Attacks 2-5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analog import Circuit, dc_sweep
from repro.analog.mosfet import MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.analog.units import ValueLike, parse_value
from repro.utils.validation import check_positive

#: Default device widths chosen so the inverter trips near VDD/2 at VDD = 1 V.
DEFAULT_PMOS_WIDTH = 400e-9
DEFAULT_NMOS_WIDTH = 520e-9
DEFAULT_LENGTH = 65e-9


@dataclass
class InverterSizing:
    """Geometry of a CMOS inverter."""

    pmos_width: float = DEFAULT_PMOS_WIDTH
    nmos_width: float = DEFAULT_NMOS_WIDTH
    length: float = DEFAULT_LENGTH

    def __post_init__(self) -> None:
        check_positive(self.pmos_width, "pmos_width")
        check_positive(self.nmos_width, "nmos_width")
        check_positive(self.length, "length")

    @property
    def pmos_ratio(self) -> float:
        """PMOS W/L."""
        return self.pmos_width / self.length

    @property
    def nmos_ratio(self) -> float:
        """NMOS W/L."""
        return self.nmos_width / self.length

    def scaled_pmos(self, factor: float) -> "InverterSizing":
        """Return a sizing with the PMOS width multiplied by ``factor``."""
        return InverterSizing(self.pmos_width * factor, self.nmos_width, self.length)

    def scaled_nmos(self, factor: float) -> "InverterSizing":
        """Return a sizing with the NMOS width multiplied by ``factor``."""
        return InverterSizing(self.pmos_width, self.nmos_width * factor, self.length)


def add_inverter(
    circuit: Circuit,
    name: str,
    node_in: str,
    node_out: str,
    node_vdd: str,
    *,
    sizing: Optional[InverterSizing] = None,
    nmos_params: MOSFETParameters = NMOS_65NM,
    pmos_params: MOSFETParameters = PMOS_65NM,
) -> None:
    """Add a CMOS inverter (two MOSFETs) to an existing circuit."""
    sizing = sizing or InverterSizing()
    circuit.add_mosfet(
        f"{name}.MP",
        node_out,
        node_in,
        node_vdd,
        pmos_params,
        width=sizing.pmos_width,
        length=sizing.length,
    )
    circuit.add_mosfet(
        f"{name}.MN",
        node_out,
        node_in,
        "0",
        nmos_params,
        width=sizing.nmos_width,
        length=sizing.length,
    )


def build_inverter(
    vdd: ValueLike = 1.0,
    *,
    sizing: Optional[InverterSizing] = None,
    nmos_params: MOSFETParameters = NMOS_65NM,
    pmos_params: MOSFETParameters = PMOS_65NM,
) -> Circuit:
    """Build a standalone inverter with VDD and VIN sources attached.

    Nodes: ``vdd``, ``in``, ``out``.
    """
    circuit = Circuit("cmos_inverter")
    circuit.add_voltage_source("VDD", "vdd", "0", parse_value(vdd))
    circuit.add_voltage_source("VIN", "in", "0", 0.0)
    add_inverter(
        circuit,
        "INV",
        "in",
        "out",
        "vdd",
        sizing=sizing,
        nmos_params=nmos_params,
        pmos_params=pmos_params,
    )
    return circuit


def switching_threshold(
    vdd: ValueLike = 1.0,
    *,
    sizing: Optional[InverterSizing] = None,
    nmos_params: MOSFETParameters = NMOS_65NM,
    pmos_params: MOSFETParameters = PMOS_65NM,
    points: int = 81,
) -> float:
    """Extract the inverter switching threshold at supply ``vdd``.

    The switching threshold is the input voltage at which ``vout == vin``
    (the standard definition; it is also where the voltage transfer curve has
    its highest gain).  It is found by a DC sweep of the input followed by
    interpolation of the ``vout - vin`` zero crossing.
    """
    vdd = parse_value(vdd)
    circuit = build_inverter(
        vdd, sizing=sizing, nmos_params=nmos_params, pmos_params=pmos_params
    )
    vin = np.linspace(0.0, vdd, points)
    sweep = dc_sweep(circuit, "VIN", vin)
    return _threshold_from_transfer(vin, sweep.voltage("out"), vdd)


def _threshold_from_transfer(vin: np.ndarray, vout: np.ndarray, vdd: float) -> float:
    """Interpolate the ``vout == vin`` crossing of one transfer curve."""
    diff = vout - vin
    sign_change = np.nonzero(np.diff(np.sign(diff)) < 0)[0]
    if len(sign_change) == 0:
        raise RuntimeError(
            f"inverter transfer curve never crosses vout == vin for VDD={vdd}"
        )
    idx = int(sign_change[0])
    # Linear interpolation of the zero crossing of (vout - vin).
    x0, x1 = vin[idx], vin[idx + 1]
    y0, y1 = diff[idx], diff[idx + 1]
    return float(x0 - y0 * (x1 - x0) / (y1 - y0))


def threshold_vs_vdd(
    vdd_values,
    *,
    sizing: Optional[InverterSizing] = None,
    nmos_params: MOSFETParameters = NMOS_65NM,
    pmos_params: MOSFETParameters = PMOS_65NM,
    points: int = 81,
    batch: bool = True,
    engine: str = "auto",
) -> np.ndarray:
    """Switching threshold for each VDD in ``vdd_values`` (paper Fig. 6a).

    Every supply voltage is an identical inverter topology with different
    parameter values, so the grid is routed through
    :class:`repro.exec.circuits.CircuitSweepDispatcher`: one stacked
    lockstep DC sweep of all VDD variants instead of one sweep per point.
    ``batch=False`` forces the serial reference path and ``engine`` picks
    the solver backend (see :func:`repro.analog.compiled.make_system`).
    """
    from repro.exec.circuits import CircuitSweepDispatcher

    vdds = [parse_value(v) for v in vdd_values]
    circuits = [
        build_inverter(v, sizing=sizing, nmos_params=nmos_params, pmos_params=pmos_params)
        for v in vdds
    ]
    # Each variant ramps VIN over its own [0, VDD] grid, in lockstep.
    vin_grid = np.stack([np.linspace(0.0, v, points) for v in vdds])
    sweeps = CircuitSweepDispatcher(batch=batch, engine=engine).run_dc_sweep(
        circuits, "VIN", vin_grid
    )
    return np.array(
        [
            _threshold_from_transfer(vin_grid[i], sweep.voltage("out"), vdds[i])
            for i, sweep in enumerate(sweeps)
        ]
    )
