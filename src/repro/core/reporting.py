"""Plain-text reporting of attack results in the paper's figure format,
plus execution instrumentation from the sweep executor."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.results import AttackGridResult, ExperimentResult
from repro.utils.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.exec.executor import ExecutionStats


def format_experiment_result(result: ExperimentResult) -> str:
    """One experiment as a small key/value table."""
    rows = [
        ("attack", result.attack_label),
        ("accuracy", f"{result.accuracy:.4f}"),
        ("mean excitatory spikes", f"{result.mean_excitatory_spikes:.1f}"),
    ]
    if result.baseline_accuracy is not None:
        rows.append(("baseline accuracy", f"{result.baseline_accuracy:.4f}"))
        rows.append(("accuracy change", f"{result.accuracy_change:+.4f}"))
        degradation = result.relative_degradation
        if degradation is not None:
            rows.append(("relative degradation", f"{degradation:+.2%}"))
    for description in result.fault_descriptions:
        rows.append(("fault", description))
    return format_table(["quantity", "value"], rows, title=result.attack_label)


def format_attack_grid(grid: AttackGridResult, *, as_change: bool = False) -> str:
    """Render a 2-D attack sweep the way the paper's figures present it.

    Rows are the threshold changes, columns the fraction of the layer
    affected; cells are absolute accuracy or (with ``as_change=True``) the
    change from the baseline.
    """
    headers = [grid.row_parameter] + [
        f"{grid.column_parameter}={value:g}" for value in grid.column_values
    ]
    rows = []
    for i, row_value in enumerate(grid.row_values):
        cells = [f"{row_value:+g}"]
        for j in range(len(grid.column_values)):
            value = grid.accuracies[i, j]
            if as_change:
                value = value - grid.baseline_accuracy
                cells.append(f"{value:+.4f}")
            else:
                cells.append(f"{value:.4f}")
        rows.append(cells)
    title = f"{grid.name} (baseline accuracy {grid.baseline_accuracy:.4f}, scale {grid.scale_name})"
    return format_table(headers, rows, title=title)


def format_sweep_series(
    parameter_name: str,
    values: Sequence[float],
    accuracies: Sequence[float],
    *,
    baseline_accuracy: float,
    title: str,
) -> str:
    """Render a 1-D sweep (e.g. accuracy vs VDD) as a table."""
    rows = []
    for value, accuracy in zip(values, accuracies):
        rows.append(
            (
                f"{value:g}",
                f"{accuracy:.4f}",
                f"{accuracy - baseline_accuracy:+.4f}",
            )
        )
    return format_table(
        [parameter_name, "accuracy", "change vs baseline"],
        rows,
        title=f"{title} (baseline {baseline_accuracy:.4f})",
    )


def format_execution_report(stats: "ExecutionStats", *, slowest: int = 5) -> str:
    """Render a :class:`~repro.exec.executor.ExecutionStats` summary.

    Shows how much work the executor did, how much the cache saved, and the
    measured parallel speedup (summed task time over wall-clock time).
    """
    mode = f"parallel ({stats.workers} workers)" if stats.workers >= 2 else "serial"
    rows = [
        ("mode", mode),
        ("batches", str(stats.batches)),
        ("tasks executed", str(stats.tasks_executed)),
        ("cache hits", str(stats.cache_hits)),
        ("wall-clock time", f"{stats.wall_seconds:.2f} s"),
        ("summed task time", f"{stats.task_seconds:.2f} s"),
        ("measured speedup", f"{stats.speedup_estimate():.2f}x"),
    ]
    for timing in stats.slowest_tasks(slowest):
        rows.append((f"slowest: {timing.key}", f"{timing.seconds:.2f} s"))
    return format_table(["quantity", "value"], rows, title="sweep execution")
