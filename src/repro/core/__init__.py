"""The experiment pipeline that regenerates the paper's evaluation.

* :mod:`repro.core.config` — experiment configuration presets (paper scale,
  benchmark scale, smoke-test scale).
* :mod:`repro.core.pipeline` — train the Diehl&Cook SNN on the synthetic
  digit task, optionally under a power attack, and measure classification
  accuracy.
* :mod:`repro.core.results` — result containers (baseline vs attacked
  accuracy, sweep grids).
* :mod:`repro.core.reporting` — plain-text "figure series" tables matching
  the paper's plots.
"""

from repro.core.config import ExperimentConfig
from repro.core.pipeline import ClassificationPipeline
from repro.core.results import AttackGridResult, ExperimentResult
from repro.core.reporting import format_attack_grid, format_experiment_result

__all__ = [
    "ExperimentConfig",
    "ClassificationPipeline",
    "ExperimentResult",
    "AttackGridResult",
    "format_attack_grid",
    "format_experiment_result",
]
