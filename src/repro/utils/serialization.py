"""JSON-friendly serialisation of experiment results.

Results produced by the attack pipeline mix NumPy scalars/arrays with plain
Python containers and small dataclasses.  :func:`to_jsonable` converts such a
structure into pure built-in types so it can be dumped with :mod:`json`, and
:func:`save_json` / :func:`load_json` wrap file IO with the conversion
applied.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable built-ins."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialise object of type {type(obj).__name__}")


def save_json(path: str | Path, obj: Any, *, indent: int = 2) -> Path:
    """Serialise ``obj`` to JSON at ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON document previously written with :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
