"""Supply-insensitive voltage references.

The paper's defense for the I&F neuron replaces the VDD-divided threshold
with a bandgap reference (citing Sanborn's sub-1-V design, ±0.56 % output
variation for VDD between 0.85 V and 1 V).  Two models are provided:

* :func:`build_diode_reference` — a circuit-level diode-referenced generator
  whose output moves only logarithmically with VDD (orders of magnitude less
  sensitive than the resistive divider it replaces).  This is the circuit the
  MNA simulator characterises.
* :class:`BandgapReferenceModel` — a behavioural model with the sensitivity
  reported in the cited bandgap paper, used by the defense evaluation where
  only the reference's residual sensitivity matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analog import Circuit, dc_operating_point
from repro.analog.units import ValueLike, parse_value
from repro.utils.validation import check_positive


def build_diode_reference(
    vdd: ValueLike = 1.0,
    *,
    bias_resistance: ValueLike = "1meg",
    saturation_current: float = 1e-16,
) -> Circuit:
    """A diode-referenced voltage generator.

    A resistor from VDD biases a junction diode; the diode voltage (the
    output ``vref``) changes only with the logarithm of the bias current and
    is therefore nearly independent of VDD.
    """
    circuit = Circuit("diode_reference")
    circuit.add_voltage_source("VDD", "vdd", "0", parse_value(vdd))
    circuit.add_resistor("RBIAS", "vdd", "vref", bias_resistance)
    circuit.add_diode("D1", "vref", "0", saturation_current=saturation_current)
    return circuit


def diode_reference_voltage(
    vdd: ValueLike = 1.0,
    *,
    bias_resistance: ValueLike = "1meg",
    saturation_current: float = 1e-16,
) -> float:
    """DC output of the diode reference at supply ``vdd``."""
    circuit = build_diode_reference(
        vdd, bias_resistance=bias_resistance, saturation_current=saturation_current
    )
    return dc_operating_point(circuit).voltage("vref")


def reference_vs_vdd(vdd_values, **kwargs) -> np.ndarray:
    """Diode-reference output across a VDD sweep."""
    return np.array([diode_reference_voltage(v, **kwargs) for v in vdd_values])


@dataclass
class BandgapReferenceModel:
    """Behavioural bandgap reference with a bounded VDD sensitivity.

    Parameters
    ----------
    nominal_output:
        Reference voltage at the nominal supply.
    nominal_vdd:
        Supply voltage at which the nominal output is produced.
    fractional_sensitivity:
        Worst-case fractional output change across the rated supply range
        (the cited design achieves ±0.56 % from 0.85 V to 1 V).
    minimum_supply:
        Below this supply the reference drops out and tracks VDD linearly.
    """

    nominal_output: float = 0.5
    nominal_vdd: float = 1.0
    fractional_sensitivity: float = 0.0056
    minimum_supply: float = 0.6

    def __post_init__(self) -> None:
        check_positive(self.nominal_output, "nominal_output")
        check_positive(self.nominal_vdd, "nominal_vdd")
        check_positive(self.minimum_supply, "minimum_supply")
        if not 0.0 <= self.fractional_sensitivity < 1.0:
            raise ValueError("fractional_sensitivity must be in [0, 1)")

    def output(self, vdd: float) -> float:
        """Reference output at supply ``vdd``.

        Within regulation the output moves linearly between
        ``±fractional_sensitivity`` across a ±20 % supply excursion; below
        ``minimum_supply`` the reference loses headroom and the output
        collapses proportionally with the supply.
        """
        if vdd < self.minimum_supply:
            return self.nominal_output * vdd / self.minimum_supply
        fractional_vdd_change = (vdd - self.nominal_vdd) / self.nominal_vdd
        # ±20 % VDD excursion maps to ±fractional_sensitivity output change.
        fractional_output_change = self.fractional_sensitivity * (
            fractional_vdd_change / 0.2
        )
        return self.nominal_output * (1.0 + fractional_output_change)

    def output_vs_vdd(self, vdd_values) -> np.ndarray:
        """Vectorised :meth:`output`."""
        return np.array([self.output(float(v)) for v in vdd_values])
