"""Three-way parity suite: scalar reference vs dense-compiled vs sparse.

Every registered neuron/defense circuit runs through all three engines
(fixed-step and adaptive, batched and unbatched) and the traces must agree
within solver tolerance, with identical spike/threshold metrics.  The
sparse tier shares the compiled engine's assembly maps, so it is held to a
much tighter contract against the dense engine (``SPARSE_DENSE_ATOL``,
1e-10) than either is against the scalar reference.  The suite also covers
the engine-internal machinery (LU and splu caching, frozen-Jacobian
predictor, scalar fallback for unknown device types) and the transient
satellite fixes (step-count ceiling, capacitor initial-condition
orientation).
"""

import numpy as np
import pytest

from repro.analog import (
    Circuit,
    batched_dc_sweep,
    batched_operating_points,
    batched_transient_analysis,
    dc_operating_point,
    dc_sweep,
    make_system,
    shares_topology,
    transient_analysis,
)
from repro.analog.batch import BatchedCircuit, TopologyMismatchError
from repro.analog.compiled import HAVE_SCIPY, CompiledCircuit
from repro.analog.devices import Resistor
from repro.analog.mna import MNASystem
from repro.analog.sparse import HAVE_SPARSE, SparseCircuit
from repro.analog.transient import time_grid
from repro.circuits import (
    AxonHillockDesign,
    IFNeuronDesign,
    build_axon_hillock,
    build_comparator,
    build_current_driver,
    build_if_neuron,
    build_inverter,
    build_robust_driver,
    simulate_axon_hillock_sweep,
)
from repro.exec import CircuitSweepDispatcher

#: Voltage agreement between engines; both solve to SolverOptions tolerances
#: (1e-6), so traces may differ by a few of those per step.
TRACE_ATOL = 1e-5

#: Sparse-vs-dense agreement.  Both engines assemble bitwise-identical
#: matrices from the same scatter maps and run the same Newton iteration,
#: so they differ only by LU-vs-splu floating-point roundoff.
SPARSE_DENSE_ATOL = 1e-10

needs_sparse = pytest.mark.skipif(
    not HAVE_SPARSE, reason="sparse tier needs scipy"
)

FAST_AH_DESIGN = AxonHillockDesign(
    membrane_capacitance=0.1e-12, feedback_capacitance=0.1e-12
)


def _transient_pair(circuit_builder, **kwargs):
    scalar = transient_analysis(circuit_builder(), engine="scalar", **kwargs)
    compiled = transient_analysis(circuit_builder(), engine="compiled", **kwargs)
    return scalar, compiled


def _transient_trio(circuit_builder, **kwargs):
    """The same transient through all three engines (sparse last)."""
    scalar, compiled = _transient_pair(circuit_builder, **kwargs)
    sparse = transient_analysis(circuit_builder(), engine="sparse", **kwargs)
    return scalar, compiled, sparse


def _assert_traces_match(scalar, compiled, nodes):
    np.testing.assert_allclose(compiled.time, scalar.time, rtol=0, atol=0)
    for node in nodes:
        np.testing.assert_allclose(
            compiled.voltage(node),
            scalar.voltage(node),
            atol=TRACE_ATOL,
            err_msg=f"node {node}",
        )


def _assert_three_way(scalar, compiled, sparse, nodes):
    """Compiled within solver tolerance of scalar; sparse pinned to dense."""
    _assert_traces_match(scalar, compiled, nodes)
    np.testing.assert_allclose(sparse.time, compiled.time, rtol=0, atol=0)
    for node in nodes:
        np.testing.assert_allclose(
            sparse.voltage(node),
            compiled.voltage(node),
            atol=SPARSE_DENSE_ATOL,
            err_msg=f"node {node} (sparse vs dense)",
        )


class TestTransientParity:
    def test_axon_hillock_fixed_step(self):
        kwargs = dict(
            stop_time="2u", time_step="5n", use_initial_conditions=True
        )
        scalar, compiled = _transient_pair(
            lambda: build_axon_hillock(FAST_AH_DESIGN), **kwargs
        )
        _assert_traces_match(scalar, compiled, ["vmem", "va", "vout", "vreset"])
        # Identical spike metrics, not just close traces.
        spikes_scalar = scalar.waveform("vout").detect_spikes(
            0.5, min_separation=200e-9
        )
        spikes_compiled = compiled.waveform("vout").detect_spikes(
            0.5, min_separation=200e-9
        )
        assert len(spikes_scalar) >= 1
        assert len(spikes_scalar) == len(spikes_compiled)
        np.testing.assert_allclose(spikes_compiled, spikes_scalar, atol=5e-9)

    def test_axon_hillock_adaptive(self):
        kwargs = dict(
            stop_time="2u",
            time_step="5n",
            use_initial_conditions=True,
            adaptive=True,
        )
        scalar, compiled = _transient_pair(
            lambda: build_axon_hillock(FAST_AH_DESIGN), **kwargs
        )
        # Adaptive grids are controller-driven; both engines must accept the
        # same steps (iteration counts match) and agree on the waveform.
        np.testing.assert_allclose(compiled.time, scalar.time, rtol=1e-12)
        _assert_traces_match(scalar, compiled, ["vmem", "vout"])

    def test_if_neuron(self):
        kwargs = dict(
            stop_time="4u", time_step="10n", use_initial_conditions=True
        )
        scalar, compiled = _transient_pair(lambda: build_if_neuron(), **kwargs)
        _assert_traces_match(scalar, compiled, ["vmem", "vthr", "vcmp", "vk"])

    def test_current_driver_transient(self):
        kwargs = dict(stop_time="100n", time_step="0.5n")
        scalar, compiled = _transient_pair(
            lambda: build_current_driver(1.0), **kwargs
        )
        _assert_traces_match(scalar, compiled, ["nref", "nsw"])
        np.testing.assert_allclose(
            compiled.current("VLOAD"), scalar.current("VLOAD"), atol=1e-9
        )

    def test_rl_circuit_inductor_companion(self):
        def build():
            circuit = Circuit("rl")
            circuit.add_voltage_source("V1", "in", "0", 1.0)
            circuit.add_resistor("R1", "in", "out", "1k")
            circuit.add_inductor("L1", "out", "0", "1m")
            return circuit

        kwargs = dict(stop_time="10u", time_step="100n")
        scalar, compiled = _transient_pair(build, **kwargs)
        _assert_traces_match(scalar, compiled, ["out"])
        np.testing.assert_allclose(
            compiled.current("L1"), scalar.current("L1"), atol=1e-9
        )


class TestDCParity:
    @pytest.mark.parametrize("vdd", [0.8, 1.0, 1.2])
    def test_inverter_transfer_curve(self, vdd):
        vin = np.linspace(0.0, vdd, 41)
        scalar = dc_sweep(build_inverter(vdd), "VIN", vin, engine="scalar")
        compiled = dc_sweep(build_inverter(vdd), "VIN", vin, engine="compiled")
        np.testing.assert_allclose(
            compiled.voltage("out"), scalar.voltage("out"), atol=TRACE_ATOL
        )

    def test_comparator_sweep(self):
        vin = np.linspace(0.2, 0.8, 31)
        scalar = dc_sweep(build_comparator(), "VIN", vin, engine="scalar")
        compiled = dc_sweep(build_comparator(), "VIN", vin, engine="compiled")
        np.testing.assert_allclose(
            compiled.voltage("vout"), scalar.voltage("vout"), atol=TRACE_ATOL
        )

    def test_robust_driver_operating_point(self):
        guess = {"vset": 0.52}
        scalar = dc_operating_point(
            build_robust_driver(1.0), initial_guess=guess, engine="scalar"
        )
        compiled = dc_operating_point(
            build_robust_driver(1.0), initial_guess=guess, engine="compiled"
        )
        assert compiled.current("VLOAD") == pytest.approx(
            scalar.current("VLOAD"), abs=1e-10
        )

    def test_diode_clamp(self):
        def build():
            circuit = Circuit("diode_clamp")
            circuit.add_voltage_source("V1", "in", "0", 1.0)
            circuit.add_resistor("R1", "in", "out", "10k")
            circuit.add_diode("D1", "out", "0")
            return circuit

        values = np.linspace(0.0, 2.0, 21)
        scalar = dc_sweep(build(), "V1", values, engine="scalar")
        compiled = dc_sweep(build(), "V1", values, engine="compiled")
        np.testing.assert_allclose(
            compiled.voltage("out"), scalar.voltage("out"), atol=TRACE_ATOL
        )

    def test_switch_transition(self):
        def build():
            circuit = Circuit("switched_divider")
            circuit.add_voltage_source("VC", "ctrl", "0", 0.0)
            circuit.add_voltage_source("V1", "top", "0", 1.0)
            circuit.add_resistor("R1", "top", "out", "10k")
            circuit.add_switch("S1", "out", "0", "ctrl", "0", threshold=0.5)
            return circuit

        values = np.linspace(0.0, 1.0, 21)
        scalar = dc_sweep(build(), "VC", values, engine="scalar")
        compiled = dc_sweep(build(), "VC", values, engine="compiled")
        np.testing.assert_allclose(
            compiled.voltage("out"), scalar.voltage("out"), atol=TRACE_ATOL
        )


class TestBatchedParity:
    VDD_GRID = (0.8, 0.9, 1.0, 1.1, 1.2)

    def test_axon_hillock_vdd_sweep(self):
        designs = [FAST_AH_DESIGN.with_vdd(v) for v in self.VDD_GRID]
        batched = simulate_axon_hillock_sweep(
            designs, stop_time="2u", time_step="5n"
        )
        for design, result in zip(designs, batched):
            scalar = transient_analysis(
                build_axon_hillock(design),
                stop_time="2u",
                time_step="5n",
                use_initial_conditions=True,
                engine="scalar",
            )
            _assert_traces_match(scalar, result, ["vmem", "vout"])
            assert len(
                scalar.waveform("vout").detect_spikes(0.5, min_separation=200e-9)
            ) == len(
                result.waveform("vout").detect_spikes(0.5, min_separation=200e-9)
            )

    def test_if_neuron_vdd_sweep(self):
        designs = [IFNeuronDesign().with_vdd(v) for v in (0.8, 1.0, 1.2)]
        circuits = [build_if_neuron(d) for d in designs]
        batched = batched_transient_analysis(
            circuits, stop_time="2u", time_step="10n", use_initial_conditions=True
        )
        for design, result in zip(designs, batched):
            scalar = transient_analysis(
                build_if_neuron(design),
                stop_time="2u",
                time_step="10n",
                use_initial_conditions=True,
                engine="scalar",
            )
            _assert_traces_match(scalar, result, ["vmem", "vthr", "vk"])

    def test_batched_dc_sweep_matches_serial(self):
        circuits = [build_inverter(v) for v in self.VDD_GRID]
        vin = np.stack([np.linspace(0.0, v, 31) for v in self.VDD_GRID])
        batched = batched_dc_sweep(circuits, "VIN", vin)
        for i, vdd in enumerate(self.VDD_GRID):
            serial = dc_sweep(
                build_inverter(vdd), "VIN", vin[i], engine="scalar"
            )
            np.testing.assert_allclose(
                batched[i].voltage("out"), serial.voltage("out"), atol=TRACE_ATOL
            )

    def test_batched_operating_points_match_serial(self):
        circuits = [
            build_current_driver(v, ctrl_source=v) for v in self.VDD_GRID
        ]
        ops = batched_operating_points(circuits)
        for vdd, op in zip(self.VDD_GRID, ops):
            serial = dc_operating_point(
                build_current_driver(vdd, ctrl_source=vdd), engine="scalar"
            )
            assert op.current("VLOAD") == pytest.approx(
                serial.current("VLOAD"), abs=1e-12
            )

    def test_topology_mismatch_is_rejected(self):
        mismatched = [build_inverter(1.0), build_current_driver(1.0)]
        assert not shares_topology(mismatched)
        with pytest.raises(TopologyMismatchError):
            BatchedCircuit(mismatched)

    def test_source_values_restored_after_batched_sweep(self):
        circuits = [build_inverter(v) for v in (0.9, 1.1)]
        originals = [c["VIN"].value for c in circuits]
        batched_dc_sweep(circuits, "VIN", np.linspace(0.0, 0.9, 5))
        assert [c["VIN"].value for c in circuits] == originals


@needs_sparse
class TestThreeWayParity:
    """Scalar / dense-compiled / sparse must agree on every circuit class.

    The scalar-vs-compiled leg reuses the ``TRACE_ATOL`` solver-tolerance
    contract; the sparse-vs-dense leg is held to ``SPARSE_DENSE_ATOL``
    because both engines assemble the identical matrix.
    """

    def test_axon_hillock_fixed_step_and_spike_metrics(self):
        kwargs = dict(stop_time="2u", time_step="5n", use_initial_conditions=True)
        scalar, compiled, sparse = _transient_trio(
            lambda: build_axon_hillock(FAST_AH_DESIGN), **kwargs
        )
        _assert_three_way(
            scalar, compiled, sparse, ["vmem", "va", "vout", "vreset"]
        )
        spikes = [
            r.waveform("vout").detect_spikes(0.5, min_separation=200e-9)
            for r in (scalar, compiled, sparse)
        ]
        assert len(spikes[0]) >= 1
        assert len(spikes[0]) == len(spikes[1]) == len(spikes[2])
        # Sparse spike times are *identical* to dense, not merely close.
        np.testing.assert_allclose(spikes[2], spikes[1], rtol=0, atol=0)

    def test_axon_hillock_adaptive(self):
        kwargs = dict(
            stop_time="2u",
            time_step="5n",
            use_initial_conditions=True,
            adaptive=True,
        )
        scalar, compiled, sparse = _transient_trio(
            lambda: build_axon_hillock(FAST_AH_DESIGN), **kwargs
        )
        # The adaptive controller must accept the same steps on every
        # engine, so the controller-driven grids line up exactly.
        np.testing.assert_allclose(compiled.time, scalar.time, rtol=1e-12)
        np.testing.assert_allclose(sparse.time, compiled.time, rtol=1e-12)
        _assert_traces_match(scalar, compiled, ["vmem", "vout"])
        for node in ("vmem", "vout"):
            np.testing.assert_allclose(
                sparse.voltage(node),
                compiled.voltage(node),
                atol=SPARSE_DENSE_ATOL,
            )

    def test_if_neuron(self):
        kwargs = dict(stop_time="4u", time_step="10n", use_initial_conditions=True)
        scalar, compiled, sparse = _transient_trio(
            lambda: build_if_neuron(), **kwargs
        )
        _assert_three_way(scalar, compiled, sparse, ["vmem", "vthr", "vcmp", "vk"])

    def test_current_driver_transient(self):
        kwargs = dict(stop_time="100n", time_step="0.5n")
        scalar, compiled, sparse = _transient_trio(
            lambda: build_current_driver(1.0), **kwargs
        )
        _assert_three_way(scalar, compiled, sparse, ["nref", "nsw"])
        np.testing.assert_allclose(
            sparse.current("VLOAD"), compiled.current("VLOAD"), atol=SPARSE_DENSE_ATOL
        )

    @pytest.mark.parametrize("vdd", [0.8, 1.2])
    def test_inverter_transfer_curve(self, vdd):
        vin = np.linspace(0.0, vdd, 41)
        scalar = dc_sweep(build_inverter(vdd), "VIN", vin, engine="scalar")
        compiled = dc_sweep(build_inverter(vdd), "VIN", vin, engine="compiled")
        sparse = dc_sweep(build_inverter(vdd), "VIN", vin, engine="sparse")
        np.testing.assert_allclose(
            compiled.voltage("out"), scalar.voltage("out"), atol=TRACE_ATOL
        )
        np.testing.assert_allclose(
            sparse.voltage("out"), compiled.voltage("out"), atol=SPARSE_DENSE_ATOL
        )

    def test_robust_driver_operating_point(self):
        guess = {"vset": 0.52}
        results = {
            engine: dc_operating_point(
                build_robust_driver(1.0), initial_guess=guess, engine=engine
            )
            for engine in ("scalar", "compiled", "sparse")
        }
        assert results["compiled"].current("VLOAD") == pytest.approx(
            results["scalar"].current("VLOAD"), abs=1e-10
        )
        assert results["sparse"].current("VLOAD") == pytest.approx(
            results["compiled"].current("VLOAD"), abs=SPARSE_DENSE_ATOL
        )

    def test_batched_sparse_transient_matches_unbatched(self):
        designs = [FAST_AH_DESIGN.with_vdd(v) for v in (0.9, 1.0, 1.1)]
        circuits = [build_axon_hillock(d) for d in designs]
        batched = batched_transient_analysis(
            circuits,
            stop_time="1u",
            time_step="5n",
            use_initial_conditions=True,
            engine="sparse",
        )
        for design, result in zip(designs, batched):
            solo = transient_analysis(
                build_axon_hillock(design),
                stop_time="1u",
                time_step="5n",
                use_initial_conditions=True,
                engine="sparse",
            )
            for node in ("vmem", "vout"):
                np.testing.assert_allclose(
                    result.voltage(node),
                    solo.voltage(node),
                    atol=SPARSE_DENSE_ATOL,
                )
            scalar = transient_analysis(
                build_axon_hillock(design),
                stop_time="1u",
                time_step="5n",
                use_initial_conditions=True,
                engine="scalar",
            )
            _assert_traces_match(scalar, result, ["vmem", "vout"])

    def test_batched_sparse_dc_paths_match_dense(self):
        vdds = (0.8, 1.0, 1.2)
        circuits = [build_inverter(v) for v in vdds]
        vin = np.stack([np.linspace(0.0, v, 31) for v in vdds])
        sparse = batched_dc_sweep(circuits, "VIN", vin, engine="sparse")
        dense = batched_dc_sweep(
            [build_inverter(v) for v in vdds], "VIN", vin, engine="compiled"
        )
        for s, d in zip(sparse, dense):
            np.testing.assert_allclose(
                s.voltage("out"), d.voltage("out"), atol=SPARSE_DENSE_ATOL
            )
        ops_sparse = batched_operating_points(
            [build_current_driver(v, ctrl_source=v) for v in vdds], engine="sparse"
        )
        ops_dense = batched_operating_points(
            [build_current_driver(v, ctrl_source=v) for v in vdds],
            engine="compiled",
        )
        for s, d in zip(ops_sparse, ops_dense):
            assert s.current("VLOAD") == pytest.approx(
                d.current("VLOAD"), abs=SPARSE_DENSE_ATOL
            )


class TestEngineInternals:
    def rc_circuit(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", "1k")
        circuit.add_capacitor("C1", "out", "0", "1u", initial_voltage=0.0)
        return circuit

    @pytest.mark.skipif(not HAVE_SCIPY, reason="LU reuse needs scipy")
    def test_linear_lu_cache_factorises_once(self):
        circuit = self.rc_circuit()
        system = CompiledCircuit(circuit)
        from repro.analog.mna import SolverOptions
        from repro.analog.transient import _advance, initial_condition_vector

        solution = initial_condition_vector(system, circuit)
        options = SolverOptions()
        for step in range(1, 21):
            solution = _advance(
                system, solution, (step - 1) * 1e-4, step * 1e-4, options, depth=0
            )
        assert system.stats.factorizations == 1
        assert system.stats.lu_reuses == 19

    @needs_sparse
    def test_sparse_splu_cache_mirrors_dense_lu_semantics(self):
        """The sparse tier refactorises exactly as often as the dense one."""
        from repro.analog.mna import SolverOptions
        from repro.analog.transient import _advance, initial_condition_vector

        circuit = self.rc_circuit()
        system = SparseCircuit(circuit)
        solution = initial_condition_vector(system, circuit)
        options = SolverOptions()
        for step in range(1, 21):
            solution = _advance(
                system, solution, (step - 1) * 1e-4, step * 1e-4, options, depth=0
            )
        # One splu factorisation on the first linear step, reused 19 times —
        # identical counters to the dense getrf/getrs cache above.
        assert system.stats.factorizations == 1
        assert system.stats.lu_reuses == 19

    @needs_sparse
    def test_sparse_assembly_is_bitwise_identical_to_dense(self):
        from repro.analog.mna import SolverOptions, StampState

        circuit = build_axon_hillock(FAST_AH_DESIGN)
        dense = CompiledCircuit(circuit)
        sparse = SparseCircuit(circuit)
        options = SolverOptions()
        guess = np.zeros(dense.size)
        for analysis, dt in (("dc", None), ("transient", 5e-9)):
            state_d = StampState(
                dense, analysis=analysis, time=0.0, dt=dt, guess=guess,
                previous=guess,
            )
            state_s = StampState(
                sparse, analysis=analysis, time=0.0, dt=dt, guess=guess,
                previous=guess,
            )
            mat_d, rhs_d = dense.assemble(state_d, options)
            mat_s, rhs_s = sparse.assemble(state_s, options)
            # Same accumulation order over the same scatter maps: the
            # densified sparse matrix matches the dense one bit for bit.
            assert np.array_equal(np.asarray(mat_s.todense()), mat_d)
            assert np.array_equal(rhs_s, rhs_d)

    @needs_sparse
    def test_explicit_sparse_engine_builds_sparse_system(self):
        assert isinstance(make_system(self.rc_circuit(), "sparse"), SparseCircuit)
        # Small circuits stay dense under auto (below the size threshold).
        auto = make_system(self.rc_circuit(), "auto")
        assert isinstance(auto, CompiledCircuit)
        assert not isinstance(auto, SparseCircuit)

    @pytest.mark.skipif(not HAVE_SCIPY, reason="LU reuse needs scipy")
    def test_frozen_jacobian_predictor_engages_on_spiking_workload(self):
        from repro.analog.mna import SolverOptions
        from repro.analog.transient import (
            _advance,
            initial_condition_vector,
            time_grid,
        )

        circuit = build_axon_hillock(FAST_AH_DESIGN)
        system = CompiledCircuit(circuit)
        solution = initial_condition_vector(system, circuit)
        options = SolverOptions()
        times = time_grid(2e-6, 5e-9)
        for step in range(1, len(times)):
            solution = _advance(
                system, solution, times[step - 1], times[step], options, depth=0
            )
        stats = system.stats
        n_steps = len(times) - 1
        # Every step costs at least one assembly; each predictor attempt
        # adds exactly one more, so the attempts are bounded by the steps.
        assert stats.assemblies >= n_steps
        attempts = stats.frozen_accepts + stats.frozen_rejects
        assert attempts <= n_steps
        # The regenerative firing edges of this workload are hard steps, so
        # the predictor must actually engage (and its accounting must not
        # exceed the assemblies that back it).
        assert attempts >= 1
        assert stats.factorizations <= stats.assemblies
        # The workload is nonlinear: no cached-linear-LU solves may appear.
        assert stats.lu_reuses == 0

    def test_auto_engine_selects_compiled_for_known_devices(self):
        assert isinstance(make_system(self.rc_circuit(), "auto"), CompiledCircuit)
        assert isinstance(make_system(self.rc_circuit(), "scalar"), MNASystem)
        with pytest.raises(ValueError):
            make_system(self.rc_circuit(), "warp-drive")

    def test_unknown_device_type_uses_scalar_fallback(self):
        class DoubledResistor(Resistor):
            """A subclass with its own stamp: must not be compiled as linear."""

            def stamp(self, stamper, state):
                a, b = self.nodes
                stamper.stamp_conductance(a, b, 2.0 * self.conductance)

        def build():
            circuit = Circuit("custom")
            circuit.add_voltage_source("V1", "in", "0", 1.0)
            circuit.add(DoubledResistor("RX", "in", "out", "1k"))
            circuit.add_resistor("R2", "out", "0", "1k")
            return circuit

        # Auto mode routes unknown exact types to the scalar engine...
        assert not CompiledCircuit.supports(build())
        assert isinstance(make_system(build(), "auto"), MNASystem)
        # ...and the forced compiled engine stamps them through the scalar
        # fallback, producing the same answer.
        scalar = dc_operating_point(build(), engine="scalar")
        compiled = dc_operating_point(build(), engine="compiled")
        assert compiled.voltage("out") == pytest.approx(
            scalar.voltage("out"), abs=1e-12
        )
        # 2x conductance divider: 1k/2 against 1k -> 2/3 of the supply.
        assert compiled.voltage("out") == pytest.approx(2.0 / 3.0, abs=1e-6)


class TestDispatcher:
    def test_routes_shared_topology_to_batch(self):
        dispatcher = CircuitSweepDispatcher()
        circuits = [
            build_axon_hillock(FAST_AH_DESIGN.with_vdd(v)) for v in (0.9, 1.1)
        ]
        results = dispatcher.run_transients(
            circuits, stop_time="0.5u", time_step="5n", use_initial_conditions=True
        )
        assert dispatcher.batched_sweeps == 1 and dispatcher.serial_sweeps == 0
        assert len(results) == 2

    def test_routes_mismatched_topologies_serially(self):
        dispatcher = CircuitSweepDispatcher()
        ops = dispatcher.run_operating_points(
            [build_inverter(1.0), build_current_driver(1.0)]
        )
        assert dispatcher.serial_sweeps == 1 and dispatcher.batched_sweeps == 0
        assert len(ops) == 2

    def test_batch_disabled_runs_serially(self):
        dispatcher = CircuitSweepDispatcher(batch=False)
        dispatcher.run_operating_points([build_inverter(1.0), build_inverter(1.1)])
        assert dispatcher.serial_sweeps == 1


class TestTransientSatellites:
    def test_step_count_is_ceiled_and_clamped(self):
        # stop_time = 2.4 * dt used to round to 2 steps and stop at 2*dt.
        dt = 1e-6
        times = time_grid(2.4 * dt, dt)
        assert len(times) == 4
        assert times[-1] == pytest.approx(2.4 * dt, rel=0, abs=0)
        assert times[-1] - times[-2] == pytest.approx(0.4 * dt, rel=1e-9)
        # Exact multiples keep the historical uniform grid.
        np.testing.assert_allclose(time_grid(1e-3, 1e-4), np.linspace(0, 1e-3, 11))

    def test_transient_covers_fractional_stop_time(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", "1k")
        circuit.add_capacitor("C1", "out", "0", "1u", initial_voltage=0.0)
        result = transient_analysis(
            circuit,
            stop_time=2.4e-4,
            time_step=1e-4,
            use_initial_conditions=True,
        )
        assert result.time[-1] == pytest.approx(2.4e-4)
        assert len(result) == 4

    @pytest.mark.parametrize("engine", ["scalar", "compiled"])
    def test_capacitor_initial_condition_both_orientations(self, engine):
        def build(flipped: bool):
            circuit = Circuit("ic")
            circuit.add_resistor("R1", "node", "0", "1Meg")
            if flipped:
                # (gnd, node): initial_voltage = v(gnd) - v(node) = -0.5
                # must seed the node at +0.5 V.
                circuit.add_capacitor(
                    "C1", "0", "node", "1u", initial_voltage=-0.5
                )
            else:
                circuit.add_capacitor(
                    "C1", "node", "0", "1u", initial_voltage=0.5
                )
            return circuit

        for flipped in (False, True):
            result = transient_analysis(
                build(flipped),
                stop_time="1u",
                time_step="0.5u",
                use_initial_conditions=True,
                engine=engine,
            )
            assert result.voltage("node")[0] == pytest.approx(0.5), (
                f"flipped={flipped}"
            )
