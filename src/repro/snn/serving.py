"""Inference-only scoring of snapshotted networks (the serving tier).

:class:`ScoringEngine` hydrates a :class:`~repro.snn.snapshot.NetworkSnapshot`
straight into the lockstep batched engine (example-axis batching, no
plasticity state) and scores examples without ever training:

* :meth:`ScoringEngine.score_rasters` — spike counts / labels for encoded
  spike rasters, ``example_chunk`` lanes at a time.
* :meth:`ScoringEngine.score` — pipeline-identical Poisson encoding plus
  scoring: the sequential per-stream encoding stream is consumed exactly as
  :meth:`repro.core.pipeline.ClassificationPipeline.record_responses`
  consumes it, so serving a snapshot reproduces the live pipeline's
  numbers bit for bit.
* :meth:`ScoringEngine.encode_request` — *keyed* per-request encoding for
  the microbatching front-end (:mod:`repro.exec.microbatch`): each
  request's Poisson draws derive from ``(seed, request_id)`` alone, so
  predictions are independent of arrival order and batch partitioning.
* :meth:`ScoringEngine.evaluate` — regenerate the experiment's held-out
  split from the embedded config and re-score it; the accuracy and the
  canonical prediction digest match the snapshot's stored metrics exactly.
* :meth:`ScoringEngine.under_attack` — "evaluate this input under this
  fault": compose the snapshot with an :mod:`repro.attacks` injection,
  using the pipeline's fault-site RNG keying, and score through the
  corrupted network.

Both engines (``"batched"``/``"scalar"``) produce bit-identical spike
counts — the serving-parity suite (``tests/test_snn_snapshot.py``) pins
this across every registered model variant.  Per-lane independence of the
batched engine additionally makes :meth:`score_rasters` invariant under
any partition of the example stream into chunks.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.snn.batched import (
    BatchedNetwork,
    BatchedSpikeMonitor,
    reduction_contract_holds,
)
from repro.snn.encoding import poisson_encode, poisson_encode_batch
from repro.snn.evaluation import all_activity_prediction, classification_accuracy
from repro.snn.network import SpikeMonitor
from repro.snn.nodes import InputNodes
from repro.snn.snapshot import (
    NetworkSnapshot,
    SnapshotError,
    config_from_jsonable,
    hydrate_network,
    prediction_digest,
)
from repro.utils.rng import RandomState
from repro.utils.validation import check_in_choices, check_positive

#: Engine choices accepted by the serving tier (mirrors the pipeline's
#: ``ENGINES``; ``"sparse"`` is a circuit-tier choice treated as ``"auto"``).
SERVING_ENGINES = ("auto", "batched", "scalar", "sparse")


@dataclass
class ScoreResult:
    """Scored examples: predicted labels plus the raw spike-count features."""

    #: Predicted class per example (``-1`` when the snapshot carries no
    #: label assignments and only the raw spike counts are meaningful).
    labels: np.ndarray
    #: Score-layer spike counts, shape ``(examples, n_neurons)``.
    spike_counts: np.ndarray

    @property
    def predictions_sha256(self) -> str:
        """Canonical digest of the predicted labels (cross-process diffable)."""
        return prediction_digest(self.labels)


@dataclass
class ServingEvaluation:
    """The held-out evaluation pass re-run from a snapshot alone."""

    accuracy: float
    mean_spikes: float
    predictions: np.ndarray
    predictions_sha256: str


class ScoringEngine:
    """Inference-only scorer over a hydrated snapshot.

    Parameters
    ----------
    snapshot:
        The trained-state snapshot to serve.
    engine:
        ``"auto"`` (default, lockstep-batched when available),
        ``"batched"`` or ``"scalar"`` (``"sparse"`` behaves like
        ``"auto"``).  Engine choice never changes results, only speed.
    example_chunk:
        How many examples the batched path advances in lockstep per pass.
    attack:
        Optional :class:`~repro.attacks.attacks.PowerAttack` injected into
        the hydrated network before scoring, with the pipeline's
        ``(seed, crc32(label))`` fault-site RNG keying — use
        :meth:`under_attack` to derive attacked engines from a clean one.
    """

    def __init__(
        self,
        snapshot: NetworkSnapshot,
        *,
        engine: str = "auto",
        example_chunk: int = 64,
        attack=None,
    ) -> None:
        check_in_choices(engine, "engine", SERVING_ENGINES)
        self.snapshot = snapshot
        self.engine = engine
        self.example_chunk = int(check_positive(example_chunk, "example_chunk"))
        self.attack = attack
        self.network = hydrate_network(snapshot)
        self.fault_records: List = []
        if attack is not None:
            from repro.attacks.injector import FaultInjector

            label_key = zlib.crc32(attack.label().encode("utf-8"))
            rng = RandomState(
                (snapshot.seed, label_key), name=f"faults[{attack.label()}]"
            )
            self.fault_records = attack.apply(
                FaultInjector(self.network, rng=rng)
            )
        self._input_layer = self._find_input_layer()
        self._monitor = self._find_score_monitor()
        self._batched: Optional[BatchedNetwork] = None
        self._batched_monitor: Optional[BatchedSpikeMonitor] = None

    # ----------------------------------------------------------------- wiring
    def _find_input_layer(self) -> str:
        for name, nodes in self.network.layers.items():
            if isinstance(nodes, InputNodes):
                return name
        raise SnapshotError("hydrated network has no input layer")

    def _find_score_monitor(self) -> SpikeMonitor:
        for monitor in self.network.monitors.values():
            if (
                isinstance(monitor, SpikeMonitor)
                and monitor.layer_name == self.snapshot.score_layer
            ):
                return monitor
        raise SnapshotError(
            f"hydrated network has no spike monitor on score layer "
            f"{self.snapshot.score_layer!r}"
        )

    @property
    def resolved_engine(self) -> str:
        """The engine actually used: ``"batched"`` or ``"scalar"``."""
        if self.engine == "scalar":
            return "scalar"
        if self.engine == "batched":
            return "batched"
        return "batched" if reduction_contract_holds() else "scalar"

    def _batched_network(self) -> Tuple[BatchedNetwork, BatchedSpikeMonitor]:
        if self._batched is None:
            self._batched = BatchedNetwork.from_networks([self.network])
            self._batched_monitor = self._batched.add_monitor(
                "serving_counts",
                BatchedSpikeMonitor(self.snapshot.score_layer, counts_only=True),
            )
        return self._batched, self._batched_monitor

    # ---------------------------------------------------------------- scoring
    def score_rasters(self, rasters: np.ndarray) -> ScoreResult:
        """Score pre-encoded spike rasters (no plasticity, no normalisation).

        ``rasters`` is ``(time_steps, n_inputs)`` for one example or
        ``(examples, time_steps, n_inputs)`` for a batch.  Lanes of the
        batched engine do not interact, so the result is bit-identical to
        scoring each example alone (and to the scalar engine) — which is
        what makes microbatch coalescing safe.
        """
        rasters = np.asarray(rasters, dtype=bool)
        if rasters.ndim == 2:
            rasters = rasters[None, :, :]
        if self.resolved_engine == "batched":
            counts = self._score_rasters_batched(rasters)
        else:
            counts = self._score_rasters_scalar(rasters)
        return ScoreResult(labels=self._predict(counts), spike_counts=counts)

    def _score_rasters_batched(self, rasters: np.ndarray) -> np.ndarray:
        batched, monitor = self._batched_network()
        chunks: List[np.ndarray] = []
        for start in range(0, len(rasters), self.example_chunk):
            chunk = rasters[start : start + self.example_chunk]
            batched.present({self._input_layer: chunk}, learning=False)
            chunks.append(monitor.spike_counts()[0])
        return np.concatenate(chunks, axis=0)

    def _score_rasters_scalar(self, rasters: np.ndarray) -> np.ndarray:
        self.network.set_learning(False)
        counts: List[np.ndarray] = []
        for raster in rasters:
            self.network.reset_monitors()
            self.network.reset_state_variables()
            self.network.run({self._input_layer: raster})
            counts.append(self._monitor.spike_counts())
        return np.asarray(counts)

    def _predict(self, counts: np.ndarray) -> np.ndarray:
        assignments = self.snapshot.assignments
        if assignments is None or not self.snapshot.n_classes:
            return np.full(len(counts), -1, dtype=np.int64)
        return np.asarray(
            all_activity_prediction(counts, assignments, self.snapshot.n_classes),
            dtype=np.int64,
        )

    def score(self, images: Sequence[np.ndarray], *, stream: str = "eval") -> ScoreResult:
        """Poisson-encode and score ``images`` with the pipeline's stream.

        The per-stream sequential encoding generator
        (``RandomState(seed, name=f"{stream}_encoding")``) is consumed in
        ``example_chunk`` chunks exactly as the live pipeline consumes it,
        so scoring the experiment's evaluation images with
        ``stream="eval"`` reproduces the pipeline's spike counts bit for
        bit.  Note the stream is *sequential*: results depend on each
        image's position, which is what evaluation parity requires — use
        :meth:`encode_request` for order-independent serving traffic.
        """
        images = np.asarray(images, dtype=float)
        rng = RandomState(self.snapshot.seed, name=f"{stream}_encoding")
        count_chunks: List[np.ndarray] = []
        label_chunks: List[np.ndarray] = []
        for start in range(0, len(images), self.example_chunk):
            rasters = poisson_encode_batch(
                images[start : start + self.example_chunk],
                time_steps=self.snapshot.time_steps,
                max_rate=self.snapshot.max_rate,
                rng=rng,
            )
            result = self.score_rasters(rasters)
            count_chunks.append(result.spike_counts)
            label_chunks.append(result.labels)
        counts = np.concatenate(count_chunks, axis=0)
        return ScoreResult(
            labels=np.concatenate(label_chunks), spike_counts=counts
        )

    def encode_request(self, image: np.ndarray, request_id: int) -> np.ndarray:
        """Poisson-encode one serving request with a *keyed* stream.

        The draws derive from ``(snapshot.seed, request_id)`` alone —
        never from shared stream position — so a request's raster (and
        therefore its prediction) is identical no matter when it arrives,
        which microbatch it lands in, or which process encodes it.
        """
        rng = RandomState(
            (self.snapshot.seed, int(request_id)), name=f"request[{request_id}]"
        )
        return poisson_encode(
            image,
            time_steps=self.snapshot.time_steps,
            max_rate=self.snapshot.max_rate,
            rng=rng,
        )

    # ------------------------------------------------------------- evaluation
    def _eval_split(self):
        if self.snapshot.config is None:
            raise SnapshotError(
                "snapshot carries no experiment config; evaluate() needs one "
                "to regenerate the held-out split"
            )
        from repro.datasets.digits import SyntheticDigits
        from repro.datasets.loaders import train_test_split

        config = config_from_jsonable(self.snapshot.config)
        root = RandomState(config.seed, name="pipeline")
        dataset_rng = root.spawn("dataset")
        split_rng = root.spawn("split")
        dataset = SyntheticDigits(n_samples=config.n_samples, seed=dataset_rng)
        _train_x, _train_y, eval_x, eval_y = train_test_split(
            dataset.flattened(),
            dataset.labels,
            test_fraction=config.test_fraction,
            rng=split_rng,
        )
        return eval_x[: config.n_eval], eval_y[: config.n_eval]

    def evaluate(self) -> ServingEvaluation:
        """Re-run the held-out evaluation pass from the snapshot alone.

        Regenerates the dataset and its train/test split from the embedded
        config (the same seed-derived streams the pipeline constructor
        uses) and scores the evaluation images with the pipeline's
        ``"eval"`` encoding stream.  Accuracy, mean spike count and the
        prediction digest are bit-identical to the live pipeline's — no
        retraining involved.
        """
        eval_images, eval_labels = self._eval_split()
        result = self.score(eval_images, stream="eval")
        accuracy = classification_accuracy(result.labels, eval_labels)
        return ServingEvaluation(
            accuracy=float(accuracy),
            mean_spikes=float(result.spike_counts.sum(axis=1).mean()),
            predictions=result.labels,
            predictions_sha256=result.predictions_sha256,
        )

    # ------------------------------------------------------------------ faults
    def under_attack(self, attack) -> "ScoringEngine":
        """A new engine scoring through a fault-injected copy of the network.

        The injection reuses the pipeline's fault-site RNG keying
        (``(seed, crc32(attack.label()))``), so "evaluate this input under
        this fault" selects the same neurons a live pipeline run of the
        same attack would — composing a snapshot with an attack is a pure
        function of ``(snapshot, attack)``.
        """
        return ScoringEngine(
            self.snapshot,
            engine=self.engine,
            example_chunk=self.example_chunk,
            attack=attack,
        )
