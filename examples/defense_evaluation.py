"""Evaluate the paper's countermeasures (Sec. V).

Shows, for each defense, how much of the attack-induced parameter corruption
survives, what it costs, and whether the dummy-neuron detector flags the
supply fault.

Figures reproduced
    The defense columns of Figs. 9b/9c/10a (residual corruption), Fig. 10b/c
    (dummy-neuron detector) and Table comparisons of Sec. V (area/power
    overheads).
Expected runtime
    A few seconds on a laptop (behavioural models and small circuit solves
    only; no SNN training).

Usage::

    python examples/defense_evaluation.py
"""

from repro.defenses import (
    BandgapThresholdDefense,
    ComparatorNeuronDefense,
    DummyNeuronDetector,
    RobustDriverDefense,
    SizingDefense,
    overhead_report,
)
from repro.utils.tables import format_table

ATTACK_VDD = 0.8


def residual_corruption_table() -> None:
    robust = RobustDriverDefense()
    bandgap = BandgapThresholdDefense()
    sizing = SizingDefense()
    comparator = ComparatorNeuronDefense()
    rows = [
        (
            "robust current driver",
            f"{robust.undefended_theta_scale(ATTACK_VDD) - 1:+.1%} drive",
            f"{robust.residual_theta_change(ATTACK_VDD):+.2%} drive",
        ),
        (
            "bandgap threshold (I&F)",
            f"{bandgap.undefended_threshold_scale(ATTACK_VDD) - 1:+.1%} threshold",
            f"{bandgap.residual_threshold_change(ATTACK_VDD):+.2%} threshold",
        ),
        (
            "32x sizing (Axon-Hillock)",
            f"{sizing.threshold_change(1.0, ATTACK_VDD):+.1%} threshold",
            f"{sizing.threshold_change(32.0, ATTACK_VDD):+.1%} threshold",
        ),
        (
            "comparator neuron (Axon-Hillock)",
            f"{comparator.undefended_threshold_scale(ATTACK_VDD) - 1:+.1%} threshold",
            f"{comparator.threshold_scale(ATTACK_VDD) - 1:+.2%} threshold",
        ),
    ]
    print(
        format_table(
            ["defense", "corruption without defense", "residual corruption"],
            rows,
            title=f"Residual parameter corruption at VDD = {ATTACK_VDD} V",
        )
    )


def detector_table() -> None:
    rows = []
    for neuron_type in ("axon_hillock", "if_amplifier"):
        detector = DummyNeuronDetector(neuron_type=neuron_type)
        for outcome in detector.sweep((0.8, 0.9, 1.0, 1.1, 1.2)):
            rows.append(
                (
                    neuron_type,
                    outcome.vdd,
                    outcome.spike_count,
                    f"{outcome.deviation:+.1%}",
                    "ATTACK" if outcome.detected else "ok",
                )
            )
    print()
    print(
        format_table(
            ["dummy neuron", "VDD", "spike count", "deviation", "verdict"],
            rows,
            title="Dummy-neuron VFI detector (Fig. 10c)",
        )
    )


def overhead_table() -> None:
    print()
    print(
        format_table(
            ["defense", "power overhead", "area overhead", "protects"],
            [overhead.as_row() for overhead in overhead_report(200)],
            title="Defense overheads for the 200-neuron SNN (paper Sec. V)",
        )
    )


def main() -> None:
    residual_corruption_table()
    detector_table()
    overhead_table()


if __name__ == "__main__":
    main()
