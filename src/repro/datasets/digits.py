"""Stroke-skeleton digit rendering and the synthetic digit dataset.

Each digit class is described by a set of polylines in a unit box; a sample
is rendered by applying a random affine jitter (shift, rotation, scale,
stroke thickness) to the skeleton and converting the distance from each
pixel to the nearest stroke into a grey-scale intensity.  The result is a
28×28 image with intensities in [0, 255], the same format the Diehl & Cook
pipeline expects from MNIST.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive

Point = Tuple[float, float]
Polyline = Sequence[Point]


def _arc(
    center: Point,
    radius_x: float,
    radius_y: float,
    start_deg: float,
    stop_deg: float,
    points: int = 12,
) -> List[Point]:
    """Sample an elliptical arc as a polyline (angles in degrees, y axis down)."""
    angles = np.linspace(math.radians(start_deg), math.radians(stop_deg), points)
    return [
        (center[0] + radius_x * math.cos(a), center[1] + radius_y * math.sin(a))
        for a in angles
    ]


#: Stroke skeletons for the ten digit classes, in a [0, 1] x [0, 1] box with
#: the y axis pointing down (row direction).  Each class is a list of
#: polylines.
DIGIT_SKELETONS: Dict[int, List[List[Point]]] = {
    0: [_arc((0.5, 0.5), 0.28, 0.38, 0, 360, 24)],
    1: [[(0.35, 0.25), (0.55, 0.12), (0.55, 0.88)], [(0.35, 0.88), (0.75, 0.88)]],
    2: [
        _arc((0.5, 0.30), 0.26, 0.20, 180, 360, 10),
        [(0.76, 0.30), (0.70, 0.52), (0.40, 0.72), (0.24, 0.88)],
        [(0.24, 0.88), (0.78, 0.88)],
    ],
    3: [
        _arc((0.47, 0.30), 0.24, 0.19, 150, 380, 10),
        _arc((0.47, 0.69), 0.26, 0.21, 340, 580, 10),
    ],
    4: [
        [(0.62, 0.12), (0.24, 0.62)],
        [(0.24, 0.62), (0.80, 0.62)],
        [(0.62, 0.12), (0.62, 0.90)],
    ],
    5: [
        [(0.74, 0.14), (0.30, 0.14)],
        [(0.30, 0.14), (0.28, 0.48)],
        _arc((0.48, 0.66), 0.26, 0.23, 250, 470, 12),
    ],
    6: [
        [(0.66, 0.12), (0.38, 0.42), (0.30, 0.62)],
        _arc((0.50, 0.68), 0.22, 0.21, 0, 360, 18),
    ],
    7: [
        [(0.24, 0.14), (0.78, 0.14)],
        [(0.78, 0.14), (0.44, 0.88)],
        [(0.34, 0.52), (0.66, 0.52)],
    ],
    8: [
        _arc((0.5, 0.30), 0.21, 0.18, 0, 360, 18),
        _arc((0.5, 0.70), 0.25, 0.21, 0, 360, 18),
    ],
    9: [
        _arc((0.48, 0.32), 0.22, 0.20, 0, 360, 18),
        [(0.70, 0.32), (0.68, 0.60), (0.56, 0.88)],
    ],
}


def _segment_distances(
    pixel_x: np.ndarray, pixel_y: np.ndarray, p0: Point, p1: Point
) -> np.ndarray:
    """Distance from every pixel centre to the segment ``p0``-``p1``."""
    px, py = p0
    qx, qy = p1
    dx, dy = qx - px, qy - py
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        return np.hypot(pixel_x - px, pixel_y - py)
    t = ((pixel_x - px) * dx + (pixel_y - py) * dy) / length_sq
    t = np.clip(t, 0.0, 1.0)
    nearest_x = px + t * dx
    nearest_y = py + t * dy
    return np.hypot(pixel_x - nearest_x, pixel_y - nearest_y)


def render_digit(
    digit: int,
    *,
    size: int = 28,
    thickness: float = 0.055,
    rotation_deg: float = 0.0,
    scale: float = 1.0,
    shift: Tuple[float, float] = (0.0, 0.0),
    noise_amplitude: float = 0.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Render one digit image.

    Parameters
    ----------
    digit:
        Class label in 0-9.
    size:
        Image side length in pixels.
    thickness:
        Stroke half-width in unit-box coordinates.
    rotation_deg, scale, shift:
        Affine jitter applied to the skeleton around the box centre.
    noise_amplitude:
        Standard deviation of additive Gaussian pixel noise (0-255 scale).
    rng:
        Seed or generator (only used when ``noise_amplitude > 0``).

    Returns
    -------
    np.ndarray of float, shape ``(size, size)``, intensities in [0, 255].
    """
    if digit not in DIGIT_SKELETONS:
        raise ValueError(f"digit must be in 0-9, got {digit}")
    check_positive(size, "size")
    check_positive(thickness, "thickness")
    check_positive(scale, "scale")

    cos_r = math.cos(math.radians(rotation_deg))
    sin_r = math.sin(math.radians(rotation_deg))

    def transform(point: Point) -> Point:
        x, y = point[0] - 0.5, point[1] - 0.5
        x, y = scale * (cos_r * x - sin_r * y), scale * (sin_r * x + cos_r * y)
        return x + 0.5 + shift[0], y + 0.5 + shift[1]

    coords = (np.arange(size) + 0.5) / size
    pixel_x, pixel_y = np.meshgrid(coords, coords)  # pixel_y is the row axis

    distance = np.full((size, size), np.inf)
    for polyline in DIGIT_SKELETONS[digit]:
        transformed = [transform(p) for p in polyline]
        for p0, p1 in zip(transformed[:-1], transformed[1:]):
            distance = np.minimum(distance, _segment_distances(pixel_x, pixel_y, p0, p1))

    # Soft-edged stroke: full intensity inside the stroke, Gaussian falloff
    # just outside it (gives anti-aliased, MNIST-like grey levels).
    falloff = thickness * 0.6
    image = np.where(
        distance <= thickness,
        1.0,
        np.exp(-((distance - thickness) ** 2) / (2.0 * falloff**2)),
    )
    image = 255.0 * image
    if noise_amplitude > 0:
        generator = ensure_rng(rng, name="digit_noise")
        image = image + generator.normal(0.0, noise_amplitude, image.shape)
    return np.clip(image, 0.0, 255.0)


@dataclass
class SyntheticDigits:
    """A reproducible synthetic digit dataset.

    Parameters
    ----------
    n_samples:
        Total number of images to generate (classes are balanced by cycling
        through 0-9).
    size:
        Image side length in pixels.
    jitter:
        If True, apply per-sample geometric jitter and pixel noise.
    seed:
        Seed for the jitter stream (the dataset is deterministic given the
        seed).
    """

    n_samples: int = 1000
    size: int = 28
    jitter: bool = True
    seed: SeedLike = 0
    max_rotation_deg: float = 12.0
    max_shift: float = 0.06
    scale_range: Tuple[float, float] = (0.9, 1.1)
    thickness_range: Tuple[float, float] = (0.03, 0.05)
    noise_amplitude: float = 8.0
    images: np.ndarray = field(init=False, repr=False)
    labels: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.n_samples, "n_samples")
        check_positive(self.size, "size")
        rng = ensure_rng(self.seed, name="synthetic_digits")
        images = np.zeros((self.n_samples, self.size, self.size))
        labels = np.zeros(self.n_samples, dtype=int)
        # Balanced, shuffled class sequence.
        classes = np.tile(np.arange(10), self.n_samples // 10 + 1)[: self.n_samples]
        rng.shuffle(classes)
        for i, digit in enumerate(classes):
            if self.jitter:
                rotation = rng.generator.uniform(-self.max_rotation_deg, self.max_rotation_deg)
                shift = tuple(rng.generator.uniform(-self.max_shift, self.max_shift, 2))
                scale = rng.generator.uniform(*self.scale_range)
                thickness = rng.generator.uniform(*self.thickness_range)
                noise = self.noise_amplitude
            else:
                rotation, shift, scale = 0.0, (0.0, 0.0), 1.0
                thickness, noise = 0.055, 0.0
            images[i] = render_digit(
                int(digit),
                size=self.size,
                thickness=thickness,
                rotation_deg=rotation,
                scale=scale,
                shift=shift,
                noise_amplitude=noise,
                rng=rng,
            )
            labels[i] = digit
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return self.n_samples

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def flattened(self) -> np.ndarray:
        """Images flattened to ``(n_samples, size*size)``."""
        return self.images.reshape(self.n_samples, -1)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=10)
