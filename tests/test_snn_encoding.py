"""Tests for the spike encoders."""

import numpy as np
import pytest

from repro.snn.encoding import bernoulli_encode, poisson_encode, regular_rate_encode


def test_poisson_shape_and_dtype():
    image = np.full((28, 28), 128.0)
    spikes = poisson_encode(image, time_steps=50, rng=0)
    assert spikes.shape == (50, 784)
    assert spikes.dtype == bool


def test_poisson_rate_proportional_to_intensity():
    image = np.array([0.0, 255.0])
    spikes = poisson_encode(image, time_steps=20000, max_rate=100.0, rng=1)
    rates = spikes.mean(axis=0) / 1e-3  # spikes per second with dt = 1 ms
    assert rates[0] == 0.0
    assert rates[1] == pytest.approx(100.0, rel=0.1)


def test_poisson_is_reproducible_with_seed():
    image = np.full(10, 200.0)
    a = poisson_encode(image, time_steps=100, rng=42)
    b = poisson_encode(image, time_steps=100, rng=42)
    assert np.array_equal(a, b)


def test_poisson_rejects_negative_intensities():
    with pytest.raises(ValueError):
        poisson_encode(np.array([-1.0]), time_steps=10)


def test_poisson_zero_image_is_silent():
    spikes = poisson_encode(np.zeros(5), time_steps=100, rng=0)
    assert spikes.sum() == 0


def test_bernoulli_probability_bounds():
    image = np.array([255.0] * 4)
    spikes = bernoulli_encode(image, time_steps=2000, max_probability=0.25, rng=0)
    assert spikes.mean() == pytest.approx(0.25, abs=0.03)


def test_bernoulli_rejects_bad_probability():
    with pytest.raises(ValueError):
        bernoulli_encode(np.ones(4), time_steps=10, max_probability=0.0)


def test_regular_rate_encoding_is_deterministic_and_counts_match():
    image = np.array([255.0, 127.5, 0.0])
    spikes = regular_rate_encode(image, time_steps=1000, max_rate=100.0)
    counts = spikes.sum(axis=0)
    assert counts[0] == pytest.approx(100, abs=1)
    assert counts[1] == pytest.approx(50, abs=1)
    assert counts[2] == 0
    again = regular_rate_encode(image, time_steps=1000, max_rate=100.0)
    assert np.array_equal(spikes, again)


def test_regular_rate_encoding_caps_at_time_steps():
    spikes = regular_rate_encode(np.array([255.0]), time_steps=10, max_rate=10000.0)
    assert spikes.sum() <= 10
