"""Tests for the SNN node groups (LIF, adaptive LIF, attack knobs)."""

import numpy as np
import pytest

from repro.snn.nodes import AdaptiveLIFNodes, InputNodes, LIFNodes


class TestInputNodes:
    def test_set_spikes(self):
        nodes = InputNodes(5)
        nodes.set_spikes(np.array([1, 0, 1, 0, 1], dtype=bool))
        assert nodes.spikes.sum() == 3

    def test_set_spikes_validates_shape(self):
        with pytest.raises(ValueError):
            InputNodes(5).set_spikes(np.zeros(4, dtype=bool))

    def test_step_ignores_current(self):
        nodes = InputNodes(3)
        nodes.set_spikes(np.array([1, 0, 0], dtype=bool))
        assert np.array_equal(nodes.step(np.zeros(3)), nodes.spikes)


class TestLIFNodes:
    def test_integrates_and_fires(self):
        nodes = LIFNodes(1)
        gap = nodes.thresh[0] - nodes.rest
        spikes = nodes.step(np.array([gap + 1.0]))
        assert spikes[0]
        assert nodes.v[0] == nodes.reset

    def test_subthreshold_input_does_not_fire(self):
        nodes = LIFNodes(1)
        spikes = nodes.step(np.array([1.0]))
        assert not spikes[0]
        assert nodes.v[0] > nodes.rest

    def test_leak_decays_towards_rest(self):
        nodes = LIFNodes(1)
        nodes.step(np.array([5.0]))
        v_after_input = nodes.v[0]
        nodes.step(np.array([0.0]))
        assert nodes.rest < nodes.v[0] < v_after_input

    def test_refractory_period_blocks_integration(self):
        nodes = LIFNodes(1, refractory_period=5.0)
        gap = nodes.thresh[0] - nodes.rest
        nodes.step(np.array([gap + 5.0]))  # fires
        nodes.step(np.array([gap + 5.0]))  # refractory: input ignored
        assert not nodes.spikes[0]

    def test_traces_decay_and_reset_on_spike(self):
        nodes = LIFNodes(1)
        gap = nodes.thresh[0] - nodes.rest
        nodes.step(np.array([gap + 1.0]))
        assert nodes.traces[0] == 1.0
        nodes.step(np.array([0.0]))
        assert 0.9 < nodes.traces[0] < 1.0

    def test_reset_state_variables(self):
        nodes = LIFNodes(3)
        nodes.step(np.full(3, 100.0))
        nodes.reset_state_variables()
        assert np.all(nodes.v == nodes.rest)
        assert not nodes.spikes.any()
        assert np.all(nodes.traces == 0.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            LIFNodes(2).step(np.zeros(3))
        with pytest.raises(ValueError):
            LIFNodes(0)


class TestAttackKnobs:
    def test_signed_value_convention_scales_threshold_directly(self):
        nodes = LIFNodes(4, thresh=-40.0, threshold_convention="signed_value")
        nodes.set_threshold_scale(0.8)
        assert np.allclose(nodes.thresh, -32.0)
        nodes.set_threshold_scale(1.2)
        assert np.allclose(nodes.thresh, -48.0)

    def test_rest_gap_convention_scales_gap(self):
        nodes = LIFNodes(4, thresh=-40.0, rest=-60.0, threshold_convention="rest_gap")
        nodes.set_threshold_scale(0.8)
        assert np.allclose(nodes.thresh, -60.0 + 0.8 * 20.0)

    def test_unknown_convention_rejected(self):
        with pytest.raises(ValueError):
            LIFNodes(1, threshold_convention="absolute")

    def test_threshold_scale_with_mask(self):
        nodes = LIFNodes(4)
        mask = np.array([True, False, True, False])
        nodes.set_threshold_scale(0.5, mask)
        assert np.allclose(nodes.threshold_scale, [0.5, 1.0, 0.5, 1.0])
        nodes.clear_threshold_scale()
        assert np.allclose(nodes.threshold_scale, 1.0)

    def test_threshold_scale_validation(self):
        nodes = LIFNodes(4)
        with pytest.raises(ValueError):
            nodes.set_threshold_scale(0.0)
        with pytest.raises(ValueError):
            nodes.set_threshold_scale(0.5, np.array([True]))

    def test_input_gain_scales_drive(self):
        attacked = LIFNodes(1)
        nominal = LIFNodes(1)
        attacked.set_input_gain(0.5)
        attacked.step(np.array([10.0]))
        nominal.step(np.array([5.0]))
        assert attacked.v[0] == pytest.approx(nominal.v[0])

    def test_input_gain_mask_validation(self):
        with pytest.raises(ValueError):
            LIFNodes(3).set_input_gain(0.5, np.array([True, False]))


class TestAdaptiveLIFNodes:
    def test_theta_grows_with_spikes_during_learning(self):
        nodes = AdaptiveLIFNodes(1, theta_plus=0.5)
        gap = nodes.thresh[0] - nodes.rest
        nodes.step(np.array([gap + 5.0]))
        assert nodes.theta[0] == pytest.approx(0.5)

    def test_theta_frozen_when_not_learning(self):
        nodes = AdaptiveLIFNodes(1, theta_plus=0.5)
        nodes.learning = False
        gap = nodes.thresh[0] - nodes.rest
        nodes.step(np.array([gap + 5.0]))
        assert nodes.theta[0] == 0.0

    def test_theta_raises_effective_threshold(self):
        nodes = AdaptiveLIFNodes(2, theta_plus=1.0)
        base = nodes.thresh.copy()
        nodes.theta[:] = 2.0
        assert np.allclose(nodes.thresh, base + 2.0)

    def test_theta_persists_across_reset(self):
        nodes = AdaptiveLIFNodes(1, theta_plus=0.3)
        gap = nodes.thresh[0] - nodes.rest
        nodes.step(np.array([gap + 5.0]))
        nodes.reset_state_variables()
        assert nodes.theta[0] == pytest.approx(0.3)
        assert nodes.v[0] == nodes.rest

    def test_threshold_corruption_composes_with_theta(self):
        nodes = AdaptiveLIFNodes(1, thresh=-52.0)
        nodes.theta[:] = 1.0
        nodes.set_threshold_scale(0.8)
        assert nodes.thresh[0] == pytest.approx(-52.0 * 0.8 + 1.0)
