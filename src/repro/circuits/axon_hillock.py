"""Axon-Hillock spiking neuron circuit (paper Fig. 2a).

The Axon-Hillock neuron (Mead's classic analog VLSI neuron) integrates the
input current on a membrane capacitor ``Cmem``.  A two-inverter amplifier
senses the membrane voltage; when it crosses the first inverter's switching
threshold the output snaps to VDD, positive feedback through the capacitive
divider ``Cfb`` reinforces the transition, and the output turns on a reset
path (``MN1`` in series with the ``Vpw``-biased ``MN2``) that discharges the
membrane until the amplifier flips back.

The paper's nominal design values are used by default: ``Cmem = Cfb = 1 pF``,
input spikes of 200 nA / 25 ns at 40 MHz, ``VDD = 1 V``.  For unit tests the
capacitances can be scaled down to keep transient runs short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analog import Circuit, PulseSource, transient_analysis
from repro.analog.mosfet import MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.analog.units import ValueLike, parse_value
from repro.circuits.inverter import InverterSizing, add_inverter
from repro.utils.validation import check_positive


@dataclass
class AxonHillockDesign:
    """Component values for the Axon-Hillock neuron.

    Attributes mirror the paper's experimental setup (Sec. II-B-1).
    """

    membrane_capacitance: float = 1e-12
    feedback_capacitance: float = 1e-12
    vdd: float = 1.0
    #: Gate bias of the reset-current transistor MN2.  Sets the reset current
    #: (and therefore the output pulse width); it must exceed the average
    #: input current for the membrane to reset.
    pulse_width_bias: float = 0.38
    first_inverter: InverterSizing = field(default_factory=InverterSizing)
    second_inverter: InverterSizing = field(default_factory=InverterSizing)
    reset_width: float = 2e-6
    nmos_params: MOSFETParameters = NMOS_65NM
    pmos_params: MOSFETParameters = PMOS_65NM

    def __post_init__(self) -> None:
        check_positive(self.membrane_capacitance, "membrane_capacitance")
        check_positive(self.feedback_capacitance, "feedback_capacitance")
        check_positive(self.vdd, "vdd")
        check_positive(self.reset_width, "reset_width")

    def with_vdd(self, vdd: float) -> "AxonHillockDesign":
        """Copy of the design at a different supply voltage (attack knob)."""
        return AxonHillockDesign(
            membrane_capacitance=self.membrane_capacitance,
            feedback_capacitance=self.feedback_capacitance,
            vdd=vdd,
            pulse_width_bias=self.pulse_width_bias,
            first_inverter=self.first_inverter,
            second_inverter=self.second_inverter,
            reset_width=self.reset_width,
            nmos_params=self.nmos_params,
            pmos_params=self.pmos_params,
        )


def build_axon_hillock(
    design: Optional[AxonHillockDesign] = None,
    *,
    input_source=None,
) -> Circuit:
    """Build the Axon-Hillock neuron circuit.

    Nodes: ``vdd``, ``vmem`` (membrane), ``va`` (first-inverter output),
    ``vout`` (neuron output), ``vreset`` (reset-path internal node),
    ``vpw`` (reset bias).

    Parameters
    ----------
    design:
        Component values; paper defaults when omitted.
    input_source:
        Value or waveform for the input current source ``Iin`` (injected into
        the membrane).  Defaults to a 200 nA, 25 ns-wide, 40 MHz pulse train.
    """
    design = design or AxonHillockDesign()
    if input_source is None:
        input_source = default_input_spike_train()

    circuit = Circuit("axon_hillock_neuron")
    circuit.add_voltage_source("VDD", "vdd", "0", design.vdd)
    circuit.add_voltage_source("VPW", "vpw", "0", design.pulse_width_bias)
    # Input current is injected into the membrane node.
    circuit.add_current_source("IIN", "0", "vmem", input_source)
    circuit.add_capacitor("CMEM", "vmem", "0", design.membrane_capacitance)
    circuit.add_capacitor("CFB", "vout", "vmem", design.feedback_capacitance)

    # Two-inverter amplifier: vmem -> va -> vout.  The first inverter's
    # switching threshold is the neuron's membrane threshold.
    add_inverter(
        circuit,
        "INV1",
        "vmem",
        "va",
        "vdd",
        sizing=design.first_inverter,
        nmos_params=design.nmos_params,
        pmos_params=design.pmos_params,
    )
    add_inverter(
        circuit,
        "INV2",
        "va",
        "vout",
        "vdd",
        sizing=design.second_inverter,
        nmos_params=design.nmos_params,
        pmos_params=design.pmos_params,
    )
    # Small parasitic load on the inter-stage node keeps the regenerative
    # transition numerically well behaved (real layouts have this parasitic).
    circuit.add_capacitor("CA", "va", "0", "5f")

    # Reset path: MN1 (gated by the output) in series with MN2 (gated by Vpw)
    # discharges the membrane when the neuron fires.
    circuit.add_mosfet(
        "MN1",
        "vmem",
        "vout",
        "vreset",
        design.nmos_params,
        width=design.reset_width,
        length=65e-9,
    )
    circuit.add_mosfet(
        "MN2",
        "vreset",
        "vpw",
        "0",
        design.nmos_params,
        width=design.reset_width,
        length=65e-9,
    )
    return circuit


def default_input_spike_train(
    amplitude: ValueLike = "200n",
    *,
    spike_width: ValueLike = "12.5n",
    period: ValueLike = "25n",
    delay: ValueLike = "5n",
) -> PulseSource:
    """The paper's nominal input: 200 nA spikes at a 40 MHz repetition rate."""
    return PulseSource(
        0.0,
        parse_value(amplitude),
        width=spike_width,
        period=period,
        rise="0.5n",
        fall="0.5n",
        delay=delay,
    )


def simulate_axon_hillock(
    design: Optional[AxonHillockDesign] = None,
    *,
    input_source=None,
    stop_time: ValueLike = "2u",
    time_step: ValueLike = "2n",
    adaptive: bool = False,
    engine: str = "auto",
):
    """Transient simulation of the Axon-Hillock neuron (paper Fig. 3).

    Returns the :class:`~repro.analog.transient.TransientResult`; the
    membrane is node ``vmem`` and the output is node ``vout``.  Pass
    ``adaptive=True`` for the adaptive-step engine (several times fewer
    solves on long waveforms, at the cost of a non-uniform time grid) and
    ``engine="scalar"``/``"compiled"`` to force a solver backend (the
    default compiles the netlist, see :mod:`repro.analog.compiled`).
    """
    circuit = build_axon_hillock(design, input_source=input_source)
    return transient_analysis(
        circuit,
        stop_time=stop_time,
        time_step=time_step,
        use_initial_conditions=True,
        record_nodes=["vmem", "va", "vout", "vreset"],
        adaptive=adaptive,
        engine=engine,
    )


def simulate_axon_hillock_sweep(
    designs,
    *,
    input_source=None,
    stop_time: ValueLike = "2u",
    time_step: ValueLike = "2n",
):
    """Lockstep transient simulation of several Axon-Hillock design variants.

    All designs share the neuron topology (they differ only in VDD, bias or
    sizing values), so the whole sweep advances through the batched engine
    (:func:`repro.analog.batch.batched_transient_analysis`) with stacked
    matrices — one simulation pass for the whole grid.  Returns one
    :class:`~repro.analog.transient.TransientResult` per design, in order.
    """
    from repro.analog import batched_transient_analysis

    circuits = [
        build_axon_hillock(design, input_source=input_source) for design in designs
    ]
    return batched_transient_analysis(
        circuits,
        stop_time=stop_time,
        time_step=time_step,
        use_initial_conditions=True,
        record_nodes=["vmem", "va", "vout", "vreset"],
    )
