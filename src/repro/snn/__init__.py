"""A compact NumPy spiking-neural-network framework.

The paper builds its victim network with BindsNET (Diehl & Cook's
unsupervised MNIST SNN).  This package reimplements the pieces that network
needs, with the same update equations and defaults, so the attack experiments
run without PyTorch:

* :mod:`repro.snn.encoding` — Poisson / Bernoulli / regular-rate encoders.
* :mod:`repro.snn.nodes` — input, LIF, adaptive-threshold (Diehl&Cook) and
  current-based LIF node groups.  Thresholds and input gains are per-neuron
  arrays, which is what lets the fault injector corrupt a *fraction* of a
  layer.
* :mod:`repro.snn.topology` — dense connections with weight clamping and
  per-target normalisation.
* :mod:`repro.snn.learning` — PostPre STDP (the Diehl&Cook rule), a
  weight-dependent variant and a no-op rule.
* :mod:`repro.snn.network` — the scalar simulation engine and monitors.
* :mod:`repro.snn.batched` — the lockstep batched engine: attack-variant
  and example batching with bit-exact parity against the scalar engine.
* :mod:`repro.snn.models` — the DiehlAndCook2015 three-layer architecture
  and the ``MODEL_VARIANTS`` registry the parity suite iterates.
* :mod:`repro.snn.evaluation` — neuron-to-class assignment and the
  all-activity / proportion-weighting accuracy metrics.
* :mod:`repro.snn.snapshot` — trained-state snapshots: capture a trained
  network (weights, theta, thresholds, labels, encoding params) into a
  schema-versioned, digest-verified ``store`` artifact and hydrate it back.
* :mod:`repro.snn.serving` — the inference-only scoring engine: hydrates a
  snapshot straight into the batched engine and scores examples (clean or
  under an injected fault) without any training.
"""

from repro.snn.batched import (
    BatchedNetwork,
    BatchedNetworkError,
    BatchedSpikeMonitor,
    BatchedStateMonitor,
    NetworkTopologyMismatchError,
    reduction_contract_holds,
    UnsupportedNetworkError,
)
from repro.snn.encoding import (
    bernoulli_encode,
    poisson_encode,
    poisson_encode_batch,
    regular_rate_encode,
)
from repro.snn.nodes import (
    AdaptiveLIFNodes,
    InputNodes,
    LIFNodes,
    Nodes,
)
from repro.snn.topology import Connection
from repro.snn.learning import NoOp, PostPre, WeightDependentPostPre
from repro.snn.network import Network, SpikeMonitor, StateMonitor
from repro.snn.models import DiehlAndCook2015, DiehlAndCookParameters, MODEL_VARIANTS
from repro.snn.evaluation import (
    all_activity_prediction,
    assign_labels,
    classification_accuracy,
    proportion_weighting_prediction,
)
from repro.snn.serving import (
    SERVING_ENGINES,
    ScoreResult,
    ScoringEngine,
    ServingEvaluation,
)
from repro.snn.snapshot import (
    NetworkSnapshot,
    SnapshotError,
    capture_snapshot,
    hydrate_network,
    load_snapshot,
    prediction_digest,
    save_snapshot,
    snapshot_from_pipeline,
)

__all__ = [
    "BatchedNetwork",
    "BatchedNetworkError",
    "BatchedSpikeMonitor",
    "BatchedStateMonitor",
    "NetworkTopologyMismatchError",
    "UnsupportedNetworkError",
    "reduction_contract_holds",
    "bernoulli_encode",
    "poisson_encode",
    "poisson_encode_batch",
    "regular_rate_encode",
    "MODEL_VARIANTS",
    "Nodes",
    "InputNodes",
    "LIFNodes",
    "AdaptiveLIFNodes",
    "Connection",
    "NoOp",
    "PostPre",
    "WeightDependentPostPre",
    "Network",
    "SpikeMonitor",
    "StateMonitor",
    "DiehlAndCook2015",
    "DiehlAndCookParameters",
    "assign_labels",
    "all_activity_prediction",
    "proportion_weighting_prediction",
    "classification_accuracy",
    "NetworkSnapshot",
    "SnapshotError",
    "capture_snapshot",
    "hydrate_network",
    "load_snapshot",
    "prediction_digest",
    "save_snapshot",
    "snapshot_from_pipeline",
    "SERVING_ENGINES",
    "ScoreResult",
    "ScoringEngine",
    "ServingEvaluation",
]
