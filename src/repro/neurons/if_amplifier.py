"""Behavioural model of the voltage-amplifier I&F neuron.

The model captures the three properties the attacks rely on (paper Fig. 2b,
4, 5c, 6c):

* the threshold ``V_thr`` is derived from VDD by a resistive divider, so it
  scales linearly with the supply (unless the bandgap defense pins it);
* the membrane integrates the input spikes on ``C_mem`` against a small leak
  (the ``V_lk``-biased transistor), modelled as an ohmic conductance — the
  leak makes the time-to-threshold super-linear in the threshold voltage,
  which is why the paper's Fig. 6c slows down by more than the threshold
  increase (+23.5 % for a +17 % threshold change);
* after each spike the refractory capacitor ``C_k`` holds the membrane in
  reset for a supply-independent refractory period, which *dilutes* the
  sensitivity of the firing period to input-amplitude changes (the paper's
  Fig. 5c shows the I&F neuron is roughly 4x less sensitive than the
  Axon-Hillock neuron for this reason).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.neurons.metrics import SpikeMetrics
from repro.utils.validation import check_positive


@dataclass
class IFAmplifierModel:
    """Behavioural voltage-amplifier I&F neuron.

    Parameters
    ----------
    membrane_capacitance, refractory_capacitance:
        The paper's 10 pF membrane and 20 pF refractory capacitors.
    vdd:
        Supply voltage (the attack knob).
    threshold_divider_ratio:
        ``V_thr / VDD`` of the threshold divider (0.5 nominally).
    leak_conductance:
        Ohmic approximation of the ``V_lk``-biased leak transistor.
    refractory_period:
        Supply-independent hold time set by the ``C_k`` discharge.
    threshold_override:
        When set, the threshold is pinned to this value regardless of VDD —
        models the bandgap-referenced threshold defense.
    """

    membrane_capacitance: float = 10e-12
    refractory_capacitance: float = 20e-12
    vdd: float = 1.0
    threshold_divider_ratio: float = 0.5
    leak_conductance: float = 50e-9
    refractory_period_seconds: float = 200e-6
    threshold_override: float | None = None
    nominal_vdd: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.membrane_capacitance, "membrane_capacitance")
        check_positive(self.refractory_capacitance, "refractory_capacitance")
        check_positive(self.vdd, "vdd")
        check_positive(self.leak_conductance, "leak_conductance")
        check_positive(self.refractory_period_seconds, "refractory_period_seconds")
        if not 0.0 < self.threshold_divider_ratio < 1.0:
            raise ValueError("threshold_divider_ratio must be in (0, 1)")

    # ------------------------------------------------------------- threshold
    def membrane_threshold(self, vdd: float | None = None) -> float:
        """Threshold voltage at supply ``vdd`` (divider-derived)."""
        if self.threshold_override is not None:
            return self.threshold_override
        vdd = self.vdd if vdd is None else vdd
        return vdd * self.threshold_divider_ratio

    def threshold_change(self, vdd: float) -> float:
        """Fractional threshold change at ``vdd`` vs the nominal supply."""
        nominal = self.membrane_threshold(self.nominal_vdd)
        return (self.membrane_threshold(vdd) - nominal) / nominal

    # ------------------------------------------------------------------ leak
    def leak_current(self, membrane_voltage: float) -> float:
        """Leak current drawn from the membrane at ``membrane_voltage``."""
        return self.leak_conductance * membrane_voltage

    # ------------------------------------------------------------- behaviour
    def refractory_period(self) -> float:
        """Supply-independent refractory period after each spike."""
        return self.refractory_period_seconds

    def integration_time(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        vdd: float | None = None,
    ) -> float:
        """Time for the membrane to integrate from rest to threshold.

        With an average input current ``I`` and leak conductance ``g`` the
        membrane follows ``V(t) = (I/g)(1 - exp(-g t / C))``; the threshold
        crossing time is ``-(C/g) ln(1 - g V_thr / I)`` and is infinite when
        the leak wins (``g V_thr >= I``).
        """
        check_positive(input_amplitude, "input_amplitude")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        vdd = self.vdd if vdd is None else vdd
        average_current = input_amplitude * duty_cycle
        threshold = self.membrane_threshold(vdd)
        x = self.leak_conductance * threshold / average_current
        if x >= 1.0:
            return math.inf
        return -(self.membrane_capacitance / self.leak_conductance) * math.log1p(-x)

    def time_to_first_spike(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        vdd: float | None = None,
    ) -> float:
        """Time to the first output spike from rest (no refractory term).

        This is the metric swept against VDD in paper Fig. 6c.
        """
        return self.integration_time(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)

    def inter_spike_interval(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        vdd: float | None = None,
    ) -> float:
        """Steady-state firing period (integration plus refractory period).

        The refractory term is independent of the input amplitude and of
        VDD, which is what makes this neuron markedly less sensitive to
        input-amplitude corruption than the Axon-Hillock neuron (Fig. 5c).
        """
        integration = self.integration_time(
            input_amplitude, duty_cycle=duty_cycle, vdd=vdd
        )
        return integration + self.refractory_period()

    def simulate(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        duration: float = 1e-3,
        vdd: float | None = None,
    ) -> SpikeMetrics:
        """Event-driven simulation over ``duration`` seconds."""
        first = self.time_to_first_spike(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)
        if not math.isfinite(first):
            return SpikeMetrics.from_spike_times([])
        period = self.inter_spike_interval(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)
        spikes: List[float] = []
        t = first
        while t <= duration:
            spikes.append(t)
            t += period
        return SpikeMetrics.from_spike_times(spikes)

    def membrane_trajectory(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        duration: float = 500e-6,
        points: int = 2000,
        vdd: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(time, membrane) trace mirroring paper Fig. 2d."""
        vdd = self.vdd if vdd is None else vdd
        threshold = self.membrane_threshold(vdd)
        average_current = input_amplitude * duty_cycle
        integration = self.integration_time(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)
        refractory = self.refractory_period()
        time = np.linspace(0.0, duration, points)
        membrane = np.zeros_like(time)
        if not math.isfinite(integration):
            # Leak-dominated: exponential saturation below threshold.
            tau = self.membrane_capacitance / self.leak_conductance
            membrane = (average_current / self.leak_conductance) * (
                1.0 - np.exp(-time / tau)
            )
            return time, membrane
        period = integration + refractory
        tau = self.membrane_capacitance / self.leak_conductance
        steady = average_current / self.leak_conductance
        for i, t in enumerate(time):
            phase = t % period
            if phase < integration:
                membrane[i] = steady * (1.0 - math.exp(-phase / tau))
            else:
                # Pulled up to VDD at the spike, then held at ground by the
                # reset transistor for the refractory period.
                membrane[i] = vdd if (phase - integration) < 0.02 * refractory else 0.0
        return time, membrane
