"""Tests for the linear devices and source waveforms."""

import numpy as np
import pytest

from repro.analog.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    PiecewiseLinearSource,
    PulseSource,
    Resistor,
    SineSource,
    VoltageControlledSwitch,
    VoltageSource,
)


class TestPulseSource:
    def test_levels_through_one_period(self):
        pulse = PulseSource(0.0, 1.0, width="10n", period="20n", rise="1n", fall="1n")
        assert pulse(0.0) == 0.0
        assert pulse(0.5e-9) == pytest.approx(0.5)
        assert pulse(5e-9) == 1.0
        assert pulse(11.5e-9) == pytest.approx(0.5)
        assert pulse(15e-9) == 0.0

    def test_periodicity(self):
        pulse = PulseSource(0.0, 2.0, width="10n", period="20n")
        assert pulse(5e-9) == pulse(25e-9) == pulse(45e-9)

    def test_delay(self):
        pulse = PulseSource(0.0, 1.0, width="10n", period="20n", delay="100n")
        assert pulse(50e-9) == 0.0
        assert pulse(105e-9) == 1.0

    def test_rejects_inconsistent_period(self):
        with pytest.raises(ValueError, match="period"):
            PulseSource(0, 1, width="15n", period="10n")


class TestPWLAndSine:
    def test_pwl_interpolates(self):
        pwl = PiecewiseLinearSource([(0, 0), (1e-6, 1.0), (2e-6, 0.5)])
        assert pwl(0.5e-6) == pytest.approx(0.5)
        assert pwl(1.5e-6) == pytest.approx(0.75)
        assert pwl(5e-6) == pytest.approx(0.5)  # holds last value

    def test_pwl_requires_increasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinearSource([(0, 0), (0, 1)])

    def test_pwl_requires_two_points(self):
        with pytest.raises(ValueError):
            PiecewiseLinearSource([(0, 0)])

    def test_sine_offset_and_peak(self):
        sine = SineSource(0.5, 0.1, 1e6)
        assert sine(0.0) == pytest.approx(0.5)
        assert sine(0.25e-6) == pytest.approx(0.6, abs=1e-6)


class TestSimpleDevices:
    def test_resistor_requires_positive_value(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "b", 0)

    def test_resistor_conductance_and_current(self):
        resistor = Resistor("R1", "a", "b", "2k")
        assert resistor.conductance == pytest.approx(5e-4)
        assert resistor.current(1.0, 0.0) == pytest.approx(5e-4)

    def test_capacitor_parses_value(self):
        assert Capacitor("C1", "a", "0", "10p").capacitance == pytest.approx(10e-12)

    def test_sources_evaluate_constants_and_waveforms(self):
        vsrc = VoltageSource("V1", "a", "0", "1.5")
        assert vsrc.value_at(0.0) == 1.5
        isrc = CurrentSource("I1", "a", "0", lambda t: 2.0 * t)
        assert isrc.value_at(3.0) == 6.0

    def test_device_repr_contains_name(self):
        assert "R1" in repr(Resistor("R1", "a", "b", 1.0))


class TestDiode:
    def test_forward_current_increases_exponentially(self):
        diode = Diode("D1", "a", "0")
        i_low, _ = diode.current_and_conductance(0.4)
        i_high, _ = diode.current_and_conductance(0.5)
        assert i_high > 30 * i_low > 0

    def test_reverse_current_saturates(self):
        diode = Diode("D1", "a", "0", saturation_current=1e-14)
        current, conductance = diode.current_and_conductance(-1.0)
        assert current == pytest.approx(-1e-14, rel=1e-3)
        assert conductance > 0

    def test_large_forward_bias_does_not_overflow(self):
        diode = Diode("D1", "a", "0")
        current, conductance = diode.current_and_conductance(5.0)
        assert np.isfinite(current) and np.isfinite(conductance)


class TestSwitch:
    def test_conductance_transitions_with_control(self):
        switch = VoltageControlledSwitch(
            "S1", "a", "b", "c", "0", threshold=0.5, on_resistance=1e3, off_resistance=1e9
        )
        g_off, _ = switch.conductance_at(0.0)
        g_on, _ = switch.conductance_at(1.0)
        # The smooth (logistic) transition never quite reaches the asymptotes,
        # but off/on must differ by orders of magnitude.
        assert g_off < 1e-6
        assert g_on == pytest.approx(1e-3, rel=0.1)
        assert g_on / g_off > 1e3

    def test_transition_derivative_is_positive_at_threshold(self):
        switch = VoltageControlledSwitch("S1", "a", "b", "c", "0", threshold=0.5)
        _, dg = switch.conductance_at(0.5)
        assert dg > 0
