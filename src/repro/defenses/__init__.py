"""Countermeasures against power-oriented fault injection (paper Sec. V).

* :mod:`repro.defenses.robust_driver` — the op-amp regulated current driver
  that keeps the input spike amplitude constant (Fig. 9b).
* :mod:`repro.defenses.bandgap_threshold` — bandgap-referenced threshold for
  the I&F neuron (Sec. V-B-1).
* :mod:`repro.defenses.sizing` — transistor up-sizing of the Axon-Hillock
  first inverter to desensitise its switching threshold (Fig. 9c).
* :mod:`repro.defenses.comparator_neuron` — replacing the first inverter with
  a reference-biased comparator (Fig. 10a).
* :mod:`repro.defenses.dummy_detector` — the dummy-neuron VFI detector
  (Fig. 10b/10c).
* :mod:`repro.defenses.overhead` — area/power overhead accounting for every
  defense.
* :mod:`repro.defenses.evaluation` — accuracy-recovery evaluation of the
  threshold defenses through the classification pipeline (executor-backed).
"""

from repro.defenses.robust_driver import RobustDriverDefense
from repro.defenses.bandgap_threshold import BandgapThresholdDefense
from repro.defenses.sizing import SizingDefense, SizingSweepPoint
from repro.defenses.comparator_neuron import ComparatorNeuronDefense
from repro.defenses.dummy_detector import DetectionOutcome, DummyNeuronDetector
from repro.defenses.evaluation import (
    DefendedAccuracyPoint,
    DefenseAccuracyEvaluator,
    residual_defense_factors,
)
from repro.defenses.overhead import DefenseOverhead, overhead_report

__all__ = [
    "DefendedAccuracyPoint",
    "DefenseAccuracyEvaluator",
    "RobustDriverDefense",
    "BandgapThresholdDefense",
    "SizingDefense",
    "SizingSweepPoint",
    "ComparatorNeuronDefense",
    "DummyNeuronDetector",
    "DetectionOutcome",
    "DefenseOverhead",
    "overhead_report",
    "residual_defense_factors",
]
