"""Figs. 3 & 4 — spike-generation waveforms of both analog neurons.

Thin wrapper over the ``fig3``/``fig4`` entries of the figure registry
(:mod:`repro.figures`), which simulate the MNA circuit netlists; run them
standalone with ``python -m repro run fig3 fig4``.
"""

from repro.figures import get_figure


def test_fig3_axon_hillock_waveform(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig3").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert result.metrics["output_spikes"] >= 1
    assert result.metrics["output_peak_V"] > 0.5


def test_fig4_if_neuron_waveform(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig4").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert result.metrics["comparator_spikes"] >= 1
    assert result.metrics["membrane_peak_V"] > 0.45
