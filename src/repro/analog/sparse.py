"""Sparse large-N circuit engine: CSC assembly with ``splu`` factor reuse.

At crossbar scale (hundreds to a thousand neurons) the MNA stamp matrix is
overwhelmingly sparse — a few percent of the ``(N, N)`` entries are ever
touched — so the dense compiled engine's O(N^3) LU factorisations and
O(N^2) per-iteration ``memcpy`` dominate everything else.
:class:`SparseCircuit` is the large-N tier of the engine family:

* **CSC assembly from the compiled scatter maps** — the sparsity pattern is
  the union of every flat index the dense engine would ever write (static
  stamps, capacitor/inductor companions, the vectorised device groups'
  matrix entries, the gmin diagonal), frozen once at compile time.  Each
  precomputed flat-index map is translated into positions in the CSC
  ``data`` array, so per-iteration assembly is the same ``memcpy`` + source
  stamps + vectorised nonlinear re-stamps as the dense engine — just into a
  ``nnz``-sized vector instead of an ``(N, N)`` matrix.  The accumulation
  order per entry is identical to the dense engine's, so the assembled
  matrices agree bit-for-bit (pinned by ``tests/test_property_based.py``).
* **``splu`` factor reuse** — mirrors the dense ``getrf``/``getrs`` cache:
  linear circuits cache the :func:`scipy.sparse.linalg.splu` factorisation
  per ``(analysis, dt, gmin)`` and each step costs one triangular solve;
  nonlinear transients keep the factors of the last assembled Jacobian for
  the frozen-Jacobian first iterate (:meth:`CompiledCircuit.predict_step`
  is inherited unchanged — the residual check works on sparse matrices),
  with full Newton preserved as the fallback.
* **Degradation, not failure** — :func:`try_sparse_system` returns ``None``
  (after one warning per process and reason) when SciPy is missing or the
  circuit contains device types outside the compiled set, and
  :func:`repro.analog.compiled.make_system` then falls back to the dense
  engine, so ``engine="sparse"`` and large-N ``engine="auto"`` never crash
  on a SciPy-free install.

Routing: ``engine="sparse"`` forces this tier; ``engine="auto"`` selects it
for compiled-supported circuits with at least
:data:`repro.analog.compiled.SPARSE_SIZE_THRESHOLD` unknowns.  The batched
lockstep engine (:mod:`repro.analog.batch`) stacks per-variant CSC ``data``
arrays over the shared pattern and solves each variant through its own
``splu`` factorisation.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

import numpy as np

from repro.analog.compiled import _CACHE_LIMIT, CompiledCircuit
from repro.analog.devices import GMIN
from repro.analog.mna import SolverOptions, StampState
from repro.analog.netlist import Circuit

try:  # SciPy is optional; without it the sparse tier degrades to dense.
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu

    HAVE_SPARSE = True
except ImportError:  # pragma: no cover - exercised on scipy-free installs
    csc_matrix = splu = None
    HAVE_SPARSE = False

#: Reasons already warned about (one warning per process and reason).
_WARNED: set = set()


def _warn_once(reason: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per process per reason."""
    if reason in _WARNED:
        return
    _WARNED.add(reason)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def try_sparse_system(
    circuit: Circuit, *, explicit: bool
) -> Optional["SparseCircuit"]:
    """A :class:`SparseCircuit` for ``circuit``, or ``None`` to degrade.

    ``explicit`` marks an ``engine="sparse"`` request (vs the ``auto``
    heuristic): unsupported device types are only worth a warning when the
    caller asked for sparse by name, since ``auto`` checks support before
    routing here.  A missing SciPy always warns (once per process) because
    both routes promise the sparse tier's memory/speed profile.
    """
    if not HAVE_SPARSE:
        _warn_once(
            "no-scipy",
            "scipy.sparse is unavailable: the sparse circuit engine tier "
            "degrades to the dense compiled engine (install scipy to "
            "simulate large-N circuits efficiently)",
        )
        return None
    if not CompiledCircuit.supports(circuit):
        if explicit:
            _warn_once(
                "unsupported-devices",
                f"circuit {circuit.name!r} contains device types outside "
                "the compiled set: engine='sparse' degrades to the dense "
                "compiled engine (scalar fallback stamping needs a dense "
                "matrix)",
            )
        return None
    return SparseCircuit(circuit)


class SparseCircuit(CompiledCircuit):
    """A :class:`CompiledCircuit` assembling into CSC and solving via ``splu``.

    Drop-in compatible with every solver entry point: :meth:`assemble`
    returns a ``scipy.sparse.csc_matrix`` (sharing the engine's persistent
    ``data`` buffer) and :meth:`solve_assembled` factors it with
    :func:`scipy.sparse.linalg.splu`.  Requires every device to be a
    compiled type — scalar fallback stamping writes arbitrary dense
    entries, which a frozen sparsity pattern cannot absorb — and raises
    ``ValueError`` otherwise (:func:`try_sparse_system` screens for this).
    """

    def __init__(self, circuit: Circuit) -> None:
        if not HAVE_SPARSE:  # pragma: no cover - guarded by try_sparse_system
            raise RuntimeError("SparseCircuit requires scipy.sparse")
        super().__init__(circuit)
        # The dense workspaces of the parent engines are never touched:
        # release the (N, N) matrix immediately so peak memory stays
        # O(nnz) at crossbar scale.
        self._matrix = None
        #: Column-ordering spec passed to ``splu``; selected adaptively at
        #: the first factorisation (see :meth:`_factor`).
        self._permc_spec: Optional[str] = None

    # ------------------------------------------------------------- compilation
    def _finalise_pattern(self) -> None:
        """Freeze the CSC pattern and translate every scatter map into it.

        The pattern is the union of all flat (row-major) indices the dense
        engine would write; position maps are built by ranking each flat
        index within the column-major (CSC) ordering of that union.
        """
        if self._fallback:
            unsupported = sorted({type(d).__name__ for d in self._fallback})
            raise ValueError(
                "the sparse engine supports compiled device types only; "
                f"circuit {self.circuit.name!r} contains "
                f"{', '.join(unsupported)}"
            )
        size = self.size
        rows, cols, values = self._static_entries
        static_flat = rows * size + cols
        sources = [
            static_flat,
            self._cap_mat_flat,
            self._ind_diag_flat,
            self._node_diag_flat,
        ] + [group._mat_flat for group in self._groups]
        flats = np.unique(
            np.concatenate([np.asarray(s, dtype=np.intp) for s in sources])
        )
        nnz = len(flats)
        entry_rows = flats // size
        entry_cols = flats % size
        # Column-major rank of every pattern entry = its CSC data position.
        order = np.argsort(entry_cols * size + entry_rows, kind="stable")
        rank = np.empty(nnz, dtype=np.intp)
        rank[order] = np.arange(nnz, dtype=np.intp)

        def positions(flat: np.ndarray) -> np.ndarray:
            return rank[np.searchsorted(flats, np.asarray(flat, dtype=np.intp))]

        self._csc_indices = entry_rows[order].astype(np.int32)
        counts = np.bincount(entry_cols, minlength=size)
        self._csc_indptr = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.int32)
        self._static_pos = positions(static_flat)
        self._cap_mat_pos = positions(self._cap_mat_flat)
        self._ind_diag_pos = positions(self._ind_diag_flat)
        self._diag_pos = positions(self._node_diag_flat)
        self._group_mat_pos = [
            positions(group._mat_flat) for group in self._groups
        ]
        # Static stamps accumulated in compilation order (matches the dense
        # engine's np.add.at into the dense static matrix bit-for-bit).
        static_data = np.zeros(nnz)
        np.add.at(static_data, self._static_pos, values)
        self._static_data = static_data
        self._base_data_cache: Dict[tuple, np.ndarray] = {}
        self._sparse = csc_matrix(
            (np.zeros(nnz), self._csc_indices, self._csc_indptr),
            shape=(size, size),
        )
        self._data = self._sparse.data

    @property
    def nnz(self) -> int:
        """Number of structurally nonzero entries of the frozen pattern."""
        return len(self._data)

    # ----------------------------------------------------------- base matrices
    def _base_data_for(self, key: tuple, analysis: str, dt: float) -> np.ndarray:
        """CSC ``data`` of the constant linear stamps for one ``(analysis, dt)``.

        Mirrors the dense engine's :meth:`CompiledCircuit._base_for` (same
        LRU bound, same companion-conductance accumulation order) on the
        pattern's ``data`` vector.
        """
        data = self._base_data_cache.pop(key, None)
        if data is None:
            data = self._static_data.copy()
            if len(self._cap_values):
                geq = (
                    np.full_like(self._cap_values, GMIN)
                    if analysis == "dc"
                    else self._cap_values / dt
                )
                np.add.at(
                    data,
                    self._cap_mat_pos,
                    self._cap_mat_sign * geq[self._cap_mat_src],
                )
            if len(self._ind_values) and analysis == "transient":
                data[self._ind_diag_pos] -= self._ind_values / dt
            if len(self._base_data_cache) >= _CACHE_LIMIT:
                self._base_data_cache.pop(next(iter(self._base_data_cache)))
        self._base_data_cache[key] = data
        return data

    def base_matrix(self, analysis: str, dt: float):
        """The constant linear stamp pattern as a ``csc_matrix`` copy."""
        data = self._base_data_for(self.step_key(analysis, dt), analysis, dt)
        return csc_matrix(
            (data.copy(), self._csc_indices, self._csc_indptr),
            shape=(self.size, self.size),
        )

    # ---------------------------------------------------------------- assembly
    def assemble(self, state: StampState, options: SolverOptions) -> tuple:
        """Sparse replacement of :meth:`CompiledCircuit.assemble`.

        Same contract (the returned matrix/RHS are reusable workspaces),
        but the matrix comes back as a ``csc_matrix`` whose ``data`` buffer
        is overwritten in place per iteration.
        """
        analysis = state.analysis
        key = self.step_key(analysis, state.dt)
        data, rhs = self._data, self._rhs
        np.copyto(data, self._base_data_for(key, analysis, state.dt))
        rhs.fill(0.0)
        self._assemble_source_rhs(rhs, state.time)
        if analysis == "transient":
            self._assemble_companion_rhs(rhs, state)
        if self._groups:
            padded = self._padded(state.guess, self._padded_guess)
            for group, mat_index in zip(self._groups, self._group_mat_pos):
                mat_comp, rhs_comp = group.evaluate(padded)
                group.scatter(
                    data, rhs, mat_comp, rhs_comp, mat_index=mat_index
                )
        gmin = state.gmin if state.gmin else options.gmin
        data[self._diag_pos] += gmin
        self._last_key = key
        self._linear_signature = (key, gmin) if self._fully_linear else None
        self.stats.assemblies += 1
        return self._sparse, rhs

    # ----------------------------------------------------------------- solving
    def _factor(self, matrix) -> Optional[object]:
        """``splu`` factorisation of ``matrix`` or None when singular.

        The first call selects the column ordering: MNA numbers unknowns
        nodes-first in netlist order, which on crossbar-shaped circuits
        (many columns each coupled to a small shared row block) makes the
        ``NATURAL`` ordering nearly fill-free — several times cheaper than
        the general-purpose ``COLAMD`` default.  Both are factored once and
        the spec with the smaller L+U fill is kept for every later
        factorisation, so irregular circuits still get COLAMD.
        """
        try:
            if self._permc_spec is None:
                candidates = []
                for spec in ("COLAMD", "NATURAL"):
                    factors = splu(matrix, permc_spec=spec)
                    candidates.append((factors.nnz, spec, factors))
                fill, self._permc_spec, factors = min(
                    candidates, key=lambda entry: entry[0]
                )
            else:
                factors = splu(matrix, permc_spec=self._permc_spec)
        except RuntimeError:  # "Factor is exactly singular"
            return None
        self.stats.factorizations += 1
        return factors

    @staticmethod
    def _back_substitute(factors, rhs: np.ndarray) -> np.ndarray:
        """Solve through a cached ``splu`` factorisation."""
        return factors.solve(rhs)

    def _rescue_solve(self, matrix, rhs: np.ndarray) -> np.ndarray:
        """Densified fallback for (near-)singular systems (rare rescue path)."""
        dense = matrix.toarray()
        try:
            return np.linalg.solve(dense, rhs)
        except np.linalg.LinAlgError:
            return np.linalg.lstsq(dense, rhs, rcond=None)[0]

    def solve_assembled(
        self, matrix, rhs: np.ndarray, *, iteration: int = 0
    ) -> np.ndarray:
        """Sparse mirror of :meth:`CompiledCircuit.solve_assembled`.

        Linear circuits reuse one cached ``splu`` factorisation per
        ``(analysis, dt, gmin)``; nonlinear solves keep the last factors
        for the inherited frozen-Jacobian predictor.
        """
        if iteration == 0:
            self._frozen_fresh = False
        self._solve_iterations = iteration + 1
        if self._linear_signature is not None:
            factors = self._lu_cache.pop(self._linear_signature, None)
            if factors is None:
                factors = self._factor(matrix)
                if factors is None:
                    return self._rescue_solve(matrix, rhs)
                if len(self._lu_cache) >= _CACHE_LIMIT:
                    self._lu_cache.pop(next(iter(self._lu_cache)))
            else:
                self.stats.lu_reuses += 1
            self._lu_cache[self._linear_signature] = factors
            return factors.solve(rhs)
        factors = self._factor(matrix)
        if factors is None:
            return self._rescue_solve(matrix, rhs)
        self._frozen_lu = factors
        self._frozen_key = self._last_key
        self._frozen_fresh = True
        return factors.solve(rhs)
