"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog import Circuit, NMOS_65NM, PMOS_65NM, dc_operating_point
from repro.analog.units import parse_value, si_format
from repro.analog.waveform import Waveform
from repro.attacks import FaultInjector
from repro.exec.microbatch import Microbatcher
from repro.neurons import AxonHillockModel, CurrentDriverModel, IFAmplifierModel
from repro.snn.encoding import poisson_encode
from repro.snn.evaluation import all_activity_prediction, assign_labels, classification_accuracy
from repro.snn.models import (
    DiehlAndCook2015,
    DiehlAndCookParameters,
    EXCITATORY_LAYER,
    MODEL_VARIANTS,
)
from repro.snn.serving import ScoringEngine
from repro.snn.snapshot import capture_snapshot
from repro.utils.rng import RandomState
from repro.utils.tables import format_table


# --------------------------------------------------------------------- analog
@given(
    mantissa=st.floats(min_value=0.001, max_value=999.0, allow_nan=False),
    suffix=st.sampled_from(["f", "p", "n", "u", "m", "", "k", "meg", "g"]),
)
def test_parse_value_applies_magnitude(mantissa, suffix):
    scale = {"f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6, "m": 1e-3,
             "": 1.0, "k": 1e3, "meg": 1e6, "g": 1e9}[suffix]
    assert parse_value(f"{mantissa}{suffix}") == pytest.approx(mantissa * scale, rel=1e-9)


@given(value=st.floats(min_value=1e-14, max_value=1e12, allow_nan=False))
def test_si_format_always_returns_text(value):
    text = si_format(value, "V")
    assert isinstance(text, str) and len(text) > 0


@given(
    r_top=st.floats(min_value=10.0, max_value=1e6),
    r_bottom=st.floats(min_value=10.0, max_value=1e6),
    supply=st.floats(min_value=0.1, max_value=5.0),
)
@settings(max_examples=25, deadline=None)
def test_voltage_divider_matches_analytic_solution(r_top, r_bottom, supply):
    circuit = Circuit("divider")
    circuit.add_voltage_source("V1", "in", "0", supply)
    circuit.add_resistor("R1", "in", "out", r_top)
    circuit.add_resistor("R2", "out", "0", r_bottom)
    op = dc_operating_point(circuit)
    expected = supply * r_bottom / (r_top + r_bottom)
    assert op["out"] == pytest.approx(expected, rel=1e-6)


@given(
    level=st.floats(min_value=0.05, max_value=0.95),
    n_periods=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_waveform_crossings_alternate_and_count_periods(level, n_periods):
    time = np.linspace(0, n_periods, n_periods * 200, endpoint=False)
    values = ((time % 1.0) < 0.5).astype(float)
    wave = Waveform(time, values)
    rising = wave.threshold_crossings(level, direction="rising")
    falling = wave.threshold_crossings(level, direction="falling")
    assert len(rising) == n_periods - 1  # the waveform starts already high
    assert abs(len(rising) - len(falling)) <= 1


# --------------------------------------------------- random netlists (sparse)
def _random_netlist(seed: int) -> Circuit:
    """A seeded, always-solvable small circuit with a random device mix.

    A resistor spanning tree pins every node to ground (no floating
    subgraphs), a pulse source drives node ``n1`` so transients are
    non-trivial, and a random assortment of R/C/diode/switch/MOSFET extras
    is layered on top.  The same seed always builds the same netlist, so
    two calls give independent ``Circuit`` objects with identical stamps.
    """
    from repro.analog.devices import PulseSource

    rng = np.random.default_rng(seed)
    n_nodes = int(rng.integers(3, 8))
    nodes = [f"n{i}" for i in range(1, n_nodes + 1)]
    circuit = Circuit(f"random_{seed}")
    circuit.add_voltage_source(
        "V1", "n1", "0", PulseSource(0.0, 1.0, delay=10e-9, rise=5e-9,
                                     fall=5e-9, width=60e-9, period=150e-9)
    )
    # Spanning tree: every node reaches ground through resistors.
    for i, node in enumerate(nodes):
        parent = "0" if i == 0 else nodes[int(rng.integers(0, i))]
        circuit.add_resistor(
            f"RT{i}", node, parent, float(rng.uniform(1e3, 100e3))
        )
    def pick() -> str:
        return nodes[int(rng.integers(0, n_nodes))]

    for k in range(int(rng.integers(2, 7))):
        kind = rng.choice(["resistor", "capacitor", "diode", "switch", "mosfet"])
        a, b = pick(), pick()
        if kind == "resistor" and a != b:
            circuit.add_resistor(f"RX{k}", a, b, float(rng.uniform(1e3, 1e6)))
        elif kind == "capacitor":
            circuit.add_capacitor(
                f"CX{k}", a, "0", float(rng.uniform(1e-14, 1e-12))
            )
        elif kind == "diode":
            anode, cathode = (a, "0") if rng.random() < 0.5 else ("0", a)
            circuit.add_diode(f"DX{k}", anode, cathode)
        elif kind == "switch":
            circuit.add_switch(
                f"SX{k}", a, "0", b, "0",
                threshold=float(rng.uniform(0.2, 0.8)),
                on_resistance=float(rng.uniform(1e3, 1e5)),
            )
        else:
            params = NMOS_65NM if rng.random() < 0.5 else PMOS_65NM
            circuit.add_mosfet(
                f"MX{k}", a, b, "0", params, width=200e-9, length=65e-9
            )
    return circuit


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_random_netlist_sparse_assembly_is_bitwise_dense(seed):
    """Sparse CSC assembly densifies to the exact dense compiled matrix."""
    from repro.analog.compiled import CompiledCircuit
    from repro.analog.mna import SolverOptions, StampState
    from repro.analog.sparse import HAVE_SPARSE, SparseCircuit

    if not HAVE_SPARSE:
        pytest.skip("sparse tier needs scipy")
    dense = CompiledCircuit(_random_netlist(seed))
    sparse = SparseCircuit(_random_netlist(seed))
    guess = np.random.default_rng(seed + 1).normal(0.0, 0.3, dense.size)
    options = SolverOptions()
    for analysis, dt, time in (("dc", None, 0.0), ("transient", 5e-9, 20e-9)):
        state_d = StampState(
            dense, analysis=analysis, time=time, dt=dt, guess=guess,
            previous=guess,
        )
        state_s = StampState(
            sparse, analysis=analysis, time=time, dt=dt, guess=guess,
            previous=guess,
        )
        mat_d, rhs_d = dense.assemble(state_d, options)
        mat_s, rhs_s = sparse.assemble(state_s, options)
        assert np.array_equal(np.asarray(mat_s.todense()), mat_d), (
            f"{analysis} stamp mismatch for seed {seed}"
        )
        assert np.array_equal(rhs_s, rhs_d)


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_random_netlist_sparse_transient_matches_dense(seed):
    from repro.analog import transient_analysis
    from repro.analog.mna import ConvergenceError
    from repro.analog.sparse import HAVE_SPARSE

    if not HAVE_SPARSE:
        pytest.skip("sparse tier needs scipy")
    kwargs = dict(stop_time=200e-9, time_step=10e-9, use_initial_conditions=True)
    try:
        dense = transient_analysis(
            _random_netlist(seed), engine="compiled", **kwargs
        )
    except ConvergenceError:
        with pytest.raises(ConvergenceError):
            transient_analysis(_random_netlist(seed), engine="sparse", **kwargs)
        return
    sparse = transient_analysis(_random_netlist(seed), engine="sparse", **kwargs)
    np.testing.assert_allclose(sparse.time, dense.time, rtol=0, atol=0)
    for node in dense.node_voltages:
        np.testing.assert_allclose(
            sparse.voltage(node),
            dense.voltage(node),
            atol=1e-10,
            err_msg=f"node {node}, seed {seed}",
        )


# ------------------------------------------------------------------ neurons
@given(vdd=st.floats(min_value=0.8, max_value=1.2))
@settings(max_examples=30, deadline=None)
def test_driver_amplitude_is_monotone_and_positive(vdd):
    driver = CurrentDriverModel()
    assert driver.amplitude(vdd) > 0
    assert driver.amplitude(vdd + 0.01) > driver.amplitude(vdd)


@given(
    vdd=st.floats(min_value=0.8, max_value=1.2),
    amplitude=st.floats(min_value=1e-7, max_value=4e-7),
)
@settings(max_examples=30, deadline=None)
def test_time_to_spike_decreases_with_drive_for_both_neurons(vdd, amplitude):
    for model in (AxonHillockModel(), IFAmplifierModel()):
        slower = model.time_to_first_spike(amplitude, vdd=vdd)
        faster = model.time_to_first_spike(amplitude * 1.2, vdd=vdd)
        assert faster < slower


# ---------------------------------------------------------------------- rng
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_random_state_reproducibility(seed):
    assert np.array_equal(RandomState(seed).random(8), RandomState(seed).random(8))


# ---------------------------------------------------------------------- snn
@given(intensity=st.floats(min_value=0.0, max_value=255.0))
@settings(max_examples=20, deadline=None)
def test_poisson_encoding_rate_bounded_by_max_rate(intensity):
    spikes = poisson_encode(np.full(16, intensity), time_steps=300, max_rate=100.0, rng=0)
    rate_hz = spikes.mean() / 1e-3
    assert rate_hz <= 100.0 + 1e-9 or rate_hz == pytest.approx(100.0, rel=0.25)


@given(
    n_examples=st.integers(min_value=4, max_value=30),
    n_neurons=st.integers(min_value=3, max_value=20),
    n_classes=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_assignment_and_prediction_invariants(n_examples, n_neurons, n_classes):
    rng = np.random.default_rng(0)
    counts = rng.poisson(3.0, (n_examples, n_neurons)).astype(float)
    labels = rng.integers(0, n_classes, n_examples)
    assignments, rates = assign_labels(counts, labels, n_classes)
    assert assignments.shape == (n_neurons,)
    assert np.all((assignments >= 0) & (assignments < n_classes))
    predictions = all_activity_prediction(counts, assignments, n_classes)
    assert np.all((predictions >= 0) & (predictions < n_classes))
    accuracy = classification_accuracy(predictions, labels)
    assert 0.0 <= accuracy <= 1.0


# -------------------------------------------------------------------- attacks
@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    scale=st.floats(min_value=0.5, max_value=1.5),
)
@settings(max_examples=25, deadline=None)
def test_fault_injector_affects_exactly_the_requested_fraction(fraction, scale):
    network = DiehlAndCook2015(DiehlAndCookParameters(n_inputs=9, n_neurons=40), rng=0)
    injector = FaultInjector(network, rng=1)
    record = injector.inject_threshold_fault(EXCITATORY_LAYER, scale, fraction=fraction)
    assert record.n_affected == int(round(fraction * 40))
    corrupted = ~np.isclose(network.excitatory_layer.threshold_scale, 1.0)
    if not np.isclose(scale, 1.0):
        assert corrupted.sum() == record.n_affected


# ------------------------------------------------------------- microbatching
_SERVING_CACHE = {}


def _tiny_serving_engine() -> ScoringEngine:
    """One small snapshot-backed scoring engine, shared across examples.

    Scoring is stateless (per-presentation transients reset every pass), so
    hypothesis examples can share the hydrated engine without interacting.
    """
    if "engine" not in _SERVING_CACHE:
        network = MODEL_VARIANTS["lif_feedforward_postpre"](3)
        n_readout = network.layers["readout"].n
        snapshot = capture_snapshot(
            network,
            seed=3,
            time_steps=30,
            max_rate=63.75,
            model={"kind": "variant", "name": "lif_feedforward_postpre"},
            assignments=np.random.default_rng(0).integers(0, 3, n_readout),
            n_classes=3,
            with_defenses=False,
        )
        _SERVING_CACHE["engine"] = ScoringEngine(snapshot)
    return _SERVING_CACHE["engine"]


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_microbatch_partition_and_order_never_change_predictions(data):
    """Any partition into microbatches, any arrival order: same predictions.

    Keyed per-request encoding plus per-lane independence of the batched
    engine make the demuxed predictions of an arbitrarily-partitioned,
    arbitrarily-ordered request stream ``np.array_equal`` to one monolithic
    pass over the same requests — including size-1 batches and ragged
    tails, which the drawn ``example_chunk`` and clock jumps produce.
    """
    engine = _tiny_serving_engine()
    n_inputs = engine.network.layers["input"].n
    n = data.draw(st.integers(min_value=3, max_value=10), label="n_requests")
    chunk = data.draw(st.integers(min_value=1, max_value=4), label="example_chunk")
    image_seed = data.draw(st.integers(min_value=0, max_value=10**6))
    images = np.random.default_rng(image_seed).random((n, n_inputs)) * 255.0
    rasters = [engine.encode_request(image, rid) for rid, image in enumerate(images)]
    monolithic = engine.score_rasters(np.stack(rasters))

    clock = [0.0]
    batcher = Microbatcher(
        lambda payloads: list(engine.score_rasters(np.stack(payloads)).labels),
        example_chunk=chunk,
        linger=1.0,
        time_source=lambda: clock[0],
    )
    arrival = data.draw(st.permutations(list(range(n))), label="arrival order")
    for rid in arrival:
        batcher.submit(rid, rasters[rid])
        if data.draw(st.booleans()):
            clock[0] += data.draw(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
            )
            batcher.poll()
    batcher.drain()

    claim = data.draw(st.permutations(list(range(n))), label="claim order")
    results = {rid: batcher.result(rid) for rid in claim}
    demuxed = np.array([results[rid] for rid in range(n)])
    assert np.array_equal(demuxed, monolithic.labels)

    events = batcher.stats.serving_events()
    assert events["microbatch_requests"] == n
    assert (
        events["microbatch_full_flushes"]
        + events["microbatch_linger_flushes"]
        + events["microbatch_drain_flushes"]
        == events["microbatches"]
    )


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=8),
    chunk=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_microbatch_counters_always_sum_to_requests(sizes, chunk):
    """Counter invariants hold for every submit/drain interleaving."""
    batcher = Microbatcher(
        lambda payloads: [payload * 10 for payload in payloads],
        example_chunk=chunk,
        time_source=lambda: 0.0,
    )
    rid = 0
    for size in sizes:
        for _ in range(size):
            batcher.submit(rid, rid)
            rid += 1
        batcher.drain()
    assert batcher.pending == 0
    events = batcher.stats.serving_events()
    assert events["microbatch_requests"] == rid == sum(sizes)
    assert (
        events["microbatch_full_flushes"]
        + events["microbatch_linger_flushes"]
        + events["microbatch_drain_flushes"]
        == events["microbatches"]
    )
    assert 0.0 < batcher.stats.mean_microbatch_occupancy() <= chunk
    for i in range(rid):
        assert batcher.result(i) == i * 10
    with pytest.raises(KeyError):
        batcher.result(rid + 1)


def test_microbatch_rejects_duplicate_request_ids():
    batcher = Microbatcher(lambda payloads: payloads, example_chunk=4)
    batcher.submit("a", 1)
    with pytest.raises(ValueError, match="duplicate"):
        batcher.submit("a", 2)


def test_microbatch_context_manager_drains_pending():
    flushed = []
    with Microbatcher(
        lambda payloads: flushed.append(list(payloads)) or payloads,
        example_chunk=10,
    ) as batcher:
        batcher.submit(0, "x")
        batcher.submit(1, "y")
    assert flushed == [["x", "y"]]
    assert batcher.stats.microbatch_drain_flushes == 1


# ------------------------------------------------------------------ reporting
@given(
    rows=st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                min_size=1,
                max_size=8,
            ),
            st.floats(allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=20, deadline=None)
def test_format_table_line_count(rows):
    text = format_table(["name", "value"], rows)
    assert len(text.splitlines()) == 2 + len(rows)
