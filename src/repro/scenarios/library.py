"""The built-in scenario library: threat space beyond the paper's figures.

The paper evaluates five hand-picked sweeps (Figs. 7b-9a).  Its threat
model — supply faults translated through circuit calibration into SNN
parameter corruption — supports a much richer space; this module registers
ready-to-run scenarios spanning it:

* per-layer droop asymmetry and partial laser reach,
* compound faults (driver gain + threshold corruption at once, the
  separate-domain Case-1 adversary),
* attack-under-defense matrices built from the Sec. V countermeasures,
* adaptive worst-case searches that locate accuracy-collapse thresholds
  in O(log n) pipeline runs.

Every entry is pure declarative data (:class:`ScenarioSpec` /
:class:`CompositeScenario`); ``python -m repro scenarios list`` renders
this registry, and ``scenarios run`` executes it at any scale.
"""

from __future__ import annotations

from repro.scenarios.composite import CompositeScenario
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import BisectionSettings, ScenarioSpec

# --------------------------------------------------------------------------
# Grid scenarios.
# --------------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="layer_droop_asymmetry",
        family="layer_threshold",
        title="Per-layer droop asymmetry",
        description="The same threshold droop applied to the excitatory vs "
        "the inhibitory layer: the inhibitory layer is the soft target.",
        tags=("attack", "asymmetry"),
        grid={
            "layer": ("excitatory", "inhibitory"),
            "threshold_change": (-0.2, -0.1, 0.1, 0.2),
        },
    )
)

register_scenario(
    ScenarioSpec(
        name="partial_glitch_reach",
        family="layer_threshold",
        title="Partial laser reach on the inhibitory layer",
        description="Accuracy vs the fraction of the inhibitory layer a "
        "localised glitch covers, for adjacent (contiguous) vs scattered "
        "(random) fault sites.",
        tags=("attack", "local-glitch"),
        fixed={"layer": "inhibitory", "threshold_change": 0.2},
        grid={
            "selection": ("random", "contiguous"),
            "fraction": (0.25, 0.5, 0.75, 1.0),
        },
    )
)

register_scenario(
    ScenarioSpec(
        name="vdd_droop_fine",
        family="global_vdd",
        title="Fine-grained global supply sweep",
        description="The black-box Attack-5 surface between the paper's "
        "five coarse VDD points.",
        tags=("attack", "black-box"),
        grid={"vdd": (0.8, 0.85, 0.9, 0.95, 1.05, 1.1, 1.15, 1.2)},
    )
)

register_scenario(
    ScenarioSpec(
        name="defense_sensitivity_matrix",
        family="both_thresholds",
        title="Threshold defenses vs attack severity",
        description="Attack-4 threshold corruption co-evaluated against the "
        "Sec. V threshold defenses: each defense's residual corruption runs "
        "through the pipeline next to the undefended attack.",
        tags=("defense", "matrix"),
        grid={"threshold_change": (-0.2, 0.2)},
        defenses=("sizing32", "comparator", "bandgap"),
    )
)

register_scenario(
    ScenarioSpec(
        name="driver_droop_under_robust_driver",
        family="input_gain",
        title="Driver droop under the robust current driver",
        description="Attack-1 theta corruption with and without the op-amp "
        "regulated driver: the defense leaves <1% of the excursion.",
        tags=("defense", "driver"),
        grid={"theta_change": (-0.2, -0.1, 0.1, 0.2)},
        defenses=("robust_driver",),
    )
)

# --------------------------------------------------------------------------
# Composite scenarios (compound faults on a single network).
# --------------------------------------------------------------------------

register_scenario(
    CompositeScenario(
        name="combined_gain_threshold",
        title="Compound driver-gain + threshold fault",
        description="A driver-domain droop (input-gain corruption) and a "
        "shared threshold droop injected into the same network — the "
        "compound white-box adversary the paper's per-figure sweeps never "
        "evaluate.",
        tags=("attack", "composite"),
        mode="product",
        members=(
            ScenarioSpec(
                name="combined_gain_threshold.gain",
                family="input_gain",
                grid={"theta_change": (-0.2, -0.1)},
            ),
            ScenarioSpec(
                name="combined_gain_threshold.threshold",
                family="both_thresholds",
                grid={"threshold_change": (-0.2, 0.2)},
            ),
        ),
    )
)

register_scenario(
    CompositeScenario(
        name="separate_domain_droop",
        title="Case-1 separate-domain asymmetric droop",
        description="The separate-power-domain adversary droops the driver "
        "domain and the excitatory layer by different amounts at once "
        "(threat-model Case 1).",
        tags=("attack", "composite", "case1"),
        mode="product",
        members=(
            ScenarioSpec(
                name="separate_domain_droop.drivers",
                family="input_gain",
                grid={"theta_change": (-0.2,)},
            ),
            ScenarioSpec(
                name="separate_domain_droop.excitatory",
                family="layer_threshold",
                fixed={"layer": "excitatory"},
                grid={"threshold_change": (-0.1, -0.2)},
            ),
        ),
    )
)

# --------------------------------------------------------------------------
# Adaptive worst-case searches (bisection).
# --------------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="inhibitory_collapse_search",
        family="layer_threshold",
        title="Inhibitory collapse threshold (adaptive)",
        description="Bisection for the smallest inhibitory threshold "
        "increase that halves the baseline accuracy — O(log n) pipeline "
        "runs instead of a dense Fig. 8b-style grid.",
        tags=("attack", "adaptive"),
        fixed={"layer": "inhibitory"},
        grid={
            "threshold_change": (
                0.025, 0.05, 0.075, 0.1, 0.125, 0.15, 0.175, 0.2,
            )
        },
        strategy="bisect",
        search=BisectionSettings(target_degradation=0.5),
    )
)

register_scenario(
    ScenarioSpec(
        name="excitatory_collapse_search",
        family="layer_threshold",
        title="Excitatory collapse threshold (adaptive)",
        description="The same search on the excitatory layer: expected "
        "outcome is *no collapse* (the paper's Fig. 8a worst case loses "
        "only ~7%), certified with a single probe of the severest value.",
        tags=("attack", "adaptive"),
        fixed={"layer": "excitatory"},
        grid={
            "threshold_change": (
                -0.025, -0.05, -0.075, -0.1, -0.125, -0.15, -0.175, -0.2,
            )
        },
        strategy="bisect",
        search=BisectionSettings(target_degradation=0.5),
    )
)

register_scenario(
    ScenarioSpec(
        name="global_droop_collapse_search",
        family="global_vdd",
        title="Global-VDD collapse threshold (adaptive)",
        description="How far the shared supply must droop before accuracy "
        "halves, searched adaptively over a fine VDD ladder (black box).",
        tags=("attack", "black-box", "adaptive"),
        grid={
            "vdd": (0.975, 0.95, 0.925, 0.9, 0.875, 0.85, 0.825, 0.8),
        },
        strategy="bisect",
        search=BisectionSettings(target_degradation=0.5),
    )
)
