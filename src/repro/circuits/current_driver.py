"""SNN input current driver (paper Fig. 5a) and its VDD sensitivity.

The driver is a resistor-programmed NMOS current mirror: ``R1`` from VDD into
a diode-connected NMOS (``MN3``) sets the reference current
``I_ref = (VDD - V_GS) / R1`` which ``MN2`` mirrors into the neuron.  ``MN1``
is a series switch gated by the incoming voltage spike ``Vctr`` so the output
current is delivered as spikes.  Because ``V_GS`` is roughly constant, the
output amplitude moves *super-linearly* with VDD (the paper measures
136 nA at 0.8 V and 264 nA at 1.2 V, i.e. −32 %/+32 % for a ±20 % VDD change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analog import Circuit, PulseSource, dc_operating_point, transient_analysis
from repro.analog.mosfet import MOSFETParameters, NMOS_65NM
from repro.analog.units import ValueLike, parse_value
from repro.utils.validation import check_positive

#: Default reference resistor chosen so the nominal output is ~200 nA at 1 V.
DEFAULT_REFERENCE_RESISTANCE = 2.89e6

#: Default mirror transistor width (long-ish channel for better matching).
DEFAULT_MIRROR_WIDTH = 1e-6
DEFAULT_MIRROR_LENGTH = 260e-9


@dataclass
class CurrentDriverDesign:
    """Component values of the current-mirror driver."""

    reference_resistance: float = DEFAULT_REFERENCE_RESISTANCE
    mirror_width: float = DEFAULT_MIRROR_WIDTH
    mirror_length: float = DEFAULT_MIRROR_LENGTH
    switch_width: float = 2e-6
    nmos_params: MOSFETParameters = NMOS_65NM

    def __post_init__(self) -> None:
        check_positive(self.reference_resistance, "reference_resistance")
        check_positive(self.mirror_width, "mirror_width")
        check_positive(self.mirror_length, "mirror_length")
        check_positive(self.switch_width, "switch_width")


def build_current_driver(
    vdd: ValueLike = 1.0,
    *,
    design: Optional[CurrentDriverDesign] = None,
    load_voltage: float = 0.2,
    ctrl_source=1.0,
) -> Circuit:
    """Build the current-mirror driver with a measurement load.

    Nodes: ``vdd``, ``nref`` (mirror gate), ``nsw`` (switch/mirror junction),
    ``out``.  The output current is measured as the branch current of the
    ``VLOAD`` source holding the output node at ``load_voltage`` (a proxy for
    the neuron membrane sitting below threshold).

    Parameters
    ----------
    vdd:
        Supply voltage.
    design:
        Component values.
    load_voltage:
        Voltage of the measurement load node.
    ctrl_source:
        Value or waveform of the spike control input ``Vctr``.
    """
    design = design or CurrentDriverDesign()
    vdd = parse_value(vdd)
    circuit = Circuit("current_driver")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    circuit.add_voltage_source("VCTR", "vctr", "0", ctrl_source)
    circuit.add_voltage_source("VLOAD", "out", "0", load_voltage)

    # Reference branch: R1 from VDD into diode-connected MN3.
    circuit.add_resistor("R1", "vdd", "nref", design.reference_resistance)
    circuit.add_mosfet(
        "MN3",
        "nref",
        "nref",
        "0",
        design.nmos_params,
        width=design.mirror_width,
        length=design.mirror_length,
    )
    # Output branch: MN1 switch in series with mirror transistor MN2.
    circuit.add_mosfet(
        "MN1",
        "out",
        "vctr",
        "nsw",
        design.nmos_params,
        width=design.switch_width,
        length=65e-9,
    )
    circuit.add_mosfet(
        "MN2",
        "nsw",
        "nref",
        "0",
        design.nmos_params,
        width=design.mirror_width,
        length=design.mirror_length,
    )
    return circuit


def output_current(
    vdd: ValueLike = 1.0,
    *,
    design: Optional[CurrentDriverDesign] = None,
    load_voltage: float = 0.2,
) -> float:
    """Steady-state output spike amplitude (amperes) with the switch closed.

    This is the quantity plotted against VDD in paper Fig. 5b.  The sign is
    returned as a positive magnitude (the mirror sinks current from the load).
    """
    circuit = build_current_driver(
        vdd, design=design, load_voltage=load_voltage, ctrl_source=parse_value(vdd)
    )
    op = dc_operating_point(circuit)
    return abs(op.current("VLOAD"))


def amplitude_vs_vdd(
    vdd_values,
    *,
    design: Optional[CurrentDriverDesign] = None,
    load_voltage: float = 0.2,
    batch: bool = True,
    engine: str = "auto",
) -> np.ndarray:
    """Output amplitude for each supply voltage (paper Fig. 5b).

    All supply points share the driver topology, so the grid is routed
    through :class:`repro.exec.circuits.CircuitSweepDispatcher`: one
    lockstep batched DC solve instead of one operating point per supply.
    ``batch=False`` forces the serial per-point reference path and
    ``engine`` picks the solver backend.
    """
    from repro.exec.circuits import CircuitSweepDispatcher

    values = [parse_value(v) for v in vdd_values]
    circuits = [
        build_current_driver(
            v, design=design, load_voltage=load_voltage, ctrl_source=v
        )
        for v in values
    ]
    ops = CircuitSweepDispatcher(batch=batch, engine=engine).run_operating_points(
        circuits
    )
    return np.array([abs(op.current("VLOAD")) for op in ops])


def spike_train_response(
    vdd: ValueLike = 1.0,
    *,
    design: Optional[CurrentDriverDesign] = None,
    spike_width: ValueLike = "25n",
    spike_period: ValueLike = "50n",
    n_periods: int = 4,
    time_step: ValueLike = "0.5n",
    load_voltage: float = 0.2,
):
    """Transient response of the driver to a pulse train on ``Vctr``.

    Returns the :class:`~repro.analog.transient.TransientResult`; the output
    current waveform is the ``VLOAD`` branch current.
    """
    vdd = parse_value(vdd)
    ctrl = PulseSource(
        0.0,
        vdd,
        width=spike_width,
        period=spike_period,
        rise="0.2n",
        fall="0.2n",
        delay="2n",
    )
    circuit = build_current_driver(
        vdd, design=design, load_voltage=load_voltage, ctrl_source=ctrl
    )
    stop = parse_value(spike_period) * n_periods
    return transient_analysis(circuit, stop_time=stop, time_step=time_step)
