"""Spike encoders that turn image intensities into input spike trains.

The Diehl & Cook pipeline converts each 28×28 image into per-pixel Poisson
spike trains whose rates are proportional to the pixel intensities (the
paper feeds "Poisson-encoded training images" to the excitatory layer).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive


def _prepare_intensity(image: np.ndarray, max_intensity: float) -> np.ndarray:
    """Flatten an image and normalise intensities to [0, 1]."""
    flat = np.asarray(image, dtype=float).reshape(-1)
    if np.any(flat < 0):
        raise ValueError("pixel intensities must be non-negative")
    if max_intensity <= 0:
        raise ValueError("max_intensity must be positive")
    return np.clip(flat / max_intensity, 0.0, 1.0)


def poisson_encode(
    image: np.ndarray,
    *,
    time_steps: int,
    dt: float = 1.0,
    max_rate: float = 63.75,
    max_intensity: float = 255.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Poisson spike encoding of an image.

    Each pixel fires as an independent Poisson process whose rate is
    ``max_rate * intensity / max_intensity`` Hz (the Diehl&Cook convention of
    dividing the 0-255 intensity by 4 gives ``max_rate = 63.75`` Hz).

    Parameters
    ----------
    image:
        Array of pixel intensities (any shape; flattened).
    time_steps:
        Number of simulation steps to generate.
    dt:
        Simulation step in milliseconds.
    max_rate:
        Firing rate (Hz) of a full-intensity pixel.
    max_intensity:
        Intensity that maps to ``max_rate``.
    rng:
        Seed or random generator.

    Returns
    -------
    np.ndarray of bool, shape ``(time_steps, n_pixels)``.
    """
    check_positive(time_steps, "time_steps")
    check_positive(dt, "dt")
    check_positive(max_rate, "max_rate")
    rng = ensure_rng(rng, name="poisson_encode")
    intensity = _prepare_intensity(image, max_intensity)
    # Probability of a spike in one dt-millisecond bin.
    probability = np.clip(max_rate * intensity * (dt * 1e-3), 0.0, 1.0)
    draws = rng.random((int(time_steps), intensity.size))
    return draws < probability[None, :]


def poisson_encode_batch(
    images: np.ndarray,
    *,
    time_steps: int,
    dt: float = 1.0,
    max_rate: float = 63.75,
    max_intensity: float = 255.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Poisson-encode a batch of images with one RNG call.

    Bit-identical to encoding the images one by one through
    :func:`poisson_encode` from the same generator: NumPy fills the batched
    ``(n_images, time_steps, n_pixels)`` draw in C order, which consumes the
    generator's stream exactly as ``n_images`` sequential per-image draws
    would.  This is what lets the example-batched inference engine
    (:mod:`repro.snn.batched`) share the scalar pipeline's encoding streams.

    Parameters
    ----------
    images:
        Array of shape ``(n_images, ...)``; each image is flattened.
    time_steps, dt, max_rate, max_intensity, rng:
        As in :func:`poisson_encode`.

    Returns
    -------
    np.ndarray of bool, shape ``(n_images, time_steps, n_pixels)``.
    """
    check_positive(time_steps, "time_steps")
    check_positive(dt, "dt")
    check_positive(max_rate, "max_rate")
    rng = ensure_rng(rng, name="poisson_encode_batch")
    images = np.asarray(images, dtype=float)
    if images.ndim < 2:
        raise ValueError("poisson_encode_batch expects a batch of images")
    flat = images.reshape(len(images), -1)
    intensity = np.stack([_prepare_intensity(image, max_intensity) for image in flat])
    probability = np.clip(max_rate * intensity * (dt * 1e-3), 0.0, 1.0)
    draws = rng.random((len(flat), int(time_steps), flat.shape[1]))
    return draws < probability[:, None, :]


def bernoulli_encode(
    image: np.ndarray,
    *,
    time_steps: int,
    max_probability: float = 0.25,
    max_intensity: float = 255.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Bernoulli encoding: per-step spike probability proportional to intensity."""
    check_positive(time_steps, "time_steps")
    if not 0.0 < max_probability <= 1.0:
        raise ValueError("max_probability must be in (0, 1]")
    rng = ensure_rng(rng, name="bernoulli_encode")
    intensity = _prepare_intensity(image, max_intensity)
    probability = intensity * max_probability
    draws = rng.random((int(time_steps), intensity.size))
    return draws < probability[None, :]


def regular_rate_encode(
    image: np.ndarray,
    *,
    time_steps: int,
    dt: float = 1.0,
    max_rate: float = 63.75,
    max_intensity: float = 255.0,
) -> np.ndarray:
    """Deterministic rate encoding with evenly spaced spikes.

    Useful for tests that need reproducible spike counts without Poisson
    variance.
    """
    check_positive(time_steps, "time_steps")
    check_positive(dt, "dt")
    intensity = _prepare_intensity(image, max_intensity)
    expected_spikes = max_rate * intensity * (time_steps * dt * 1e-3)
    spikes = np.zeros((int(time_steps), intensity.size), dtype=bool)
    for pixel, count in enumerate(expected_spikes):
        n_spikes = int(round(count))
        if n_spikes <= 0:
            continue
        n_spikes = min(n_spikes, int(time_steps))
        positions = np.linspace(0, int(time_steps) - 1, n_spikes).astype(int)
        spikes[positions, pixel] = True
    return spikes
