"""Train / attack / evaluate pipeline for the Diehl&Cook digit classifier.

The pipeline owns the dataset, the encoding, the training loop, the label
assignment and the evaluation — everything the attack figures need.  A power
attack is modelled as a *persistent hardware fault*: it is injected before
training and stays in place through training, label assignment and
evaluation, matching the paper's "corrupt crucial training parameters"
framing.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.attacks import NoAttack, PowerAttack
from repro.attacks.injector import FaultInjector
from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.datasets.digits import SyntheticDigits
from repro.datasets.loaders import train_test_split
from repro.snn.encoding import poisson_encode
from repro.snn.evaluation import (
    all_activity_prediction,
    assign_labels,
    classification_accuracy,
)
from repro.snn.models import DiehlAndCook2015
from repro.utils.rng import RandomState


class ClassificationPipeline:
    """End-to-end digit-classification experiment, with optional attacks.

    Parameters
    ----------
    config:
        Experiment scale and network hyper-parameters.

    Notes
    -----
    The dataset and its train/test split are generated once per pipeline and
    reused across runs, so baseline and attacked runs see identical images
    and identical Poisson seeds — accuracy differences are attributable to
    the injected faults alone.

    Every random stream consumed by :meth:`run` (weight init, Poisson
    encoding, fault-site selection) is derived from ``config.seed`` and the
    attack label alone — never from mutable state accumulated by earlier
    runs.  Two consequences the execution subsystem relies on:

    * ``run(attack)`` is a pure function of ``(config, attack)``: the same
      attack gives bit-identical results regardless of run order.
    * A pipeline rebuilt from the same config in another process (see
      :class:`repro.exec.executor.PipelineFromConfig`) produces the same
      results, so parallel sweeps match serial sweeps exactly.
    """

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig.benchmark()
        root = RandomState(self.config.seed, name="pipeline")
        self._dataset_rng = root.spawn("dataset")
        self._split_rng = root.spawn("split")

        dataset = SyntheticDigits(
            n_samples=self.config.n_samples, seed=self._dataset_rng
        )
        train_x, train_y, eval_x, eval_y = train_test_split(
            dataset.flattened(),
            dataset.labels,
            test_fraction=self.config.test_fraction,
            rng=self._split_rng,
        )
        self.train_images = train_x[: self.config.n_train]
        self.train_labels = train_y[: self.config.n_train]
        self.eval_images = eval_x[: self.config.n_eval]
        self.eval_labels = eval_y[: self.config.n_eval]
        self._baseline_result: Optional[ExperimentResult] = None

    # ----------------------------------------------------------------- pieces
    def build_network(self) -> DiehlAndCook2015:
        """A freshly initialised Diehl&Cook network (deterministic per seed)."""
        return DiehlAndCook2015(
            self.config.network, rng=RandomState(self.config.seed, name="weights")
        )

    def _encode(self, image: np.ndarray, rng: RandomState) -> np.ndarray:
        return poisson_encode(
            image,
            time_steps=self.config.time_steps,
            max_rate=self.config.max_rate,
            rng=rng,
        )

    def train(self, network: DiehlAndCook2015) -> None:
        """Run STDP training over the training images."""
        rng = RandomState(self.config.seed, name="train_encoding")
        for image in self.train_images:
            network.present(self._encode(image, rng), learning=True)

    def record_responses(
        self, network: DiehlAndCook2015, images: np.ndarray, *, stream: str
    ) -> np.ndarray:
        """Excitatory spike counts for each image, with learning disabled."""
        rng = RandomState(self.config.seed, name=f"{stream}_encoding")
        counts: List[np.ndarray] = []
        for image in images:
            counts.append(network.present(self._encode(image, rng), learning=False))
        return np.asarray(counts)

    def assign(self, network: DiehlAndCook2015) -> Tuple[np.ndarray, np.ndarray]:
        """Assign each excitatory neuron to a digit class from training activity."""
        counts = self.record_responses(network, self.train_images, stream="assign")
        return assign_labels(counts, self.train_labels, self.config.n_classes)

    def evaluate(
        self, network: DiehlAndCook2015, assignments: np.ndarray
    ) -> Tuple[float, float]:
        """Accuracy and mean excitatory spike count on the held-out images."""
        counts = self.record_responses(network, self.eval_images, stream="eval")
        predictions = all_activity_prediction(
            counts, assignments, self.config.n_classes
        )
        accuracy = classification_accuracy(predictions, self.eval_labels)
        return accuracy, float(counts.sum(axis=1).mean())

    def _fault_rng(self, attack: PowerAttack) -> RandomState:
        """Fault-site selection stream for one attack.

        Keyed on ``(config.seed, crc32(attack.label()))`` so the stream is a
        pure function of the configuration and the attack — independent of
        how many runs happened before, of the process running it, and of
        Python's per-process hash randomisation.  This is what makes
        parallel sweeps bit-identical to serial ones.
        """
        label_key = zlib.crc32(attack.label().encode("utf-8"))
        return RandomState(
            (self.config.seed, label_key), name=f"faults[{attack.label()}]"
        )

    # ------------------------------------------------------------------- runs
    def run(self, attack: Optional[PowerAttack] = None) -> ExperimentResult:
        """Train and evaluate one network, optionally under a persistent attack."""
        attack = attack or NoAttack()
        network = self.build_network()
        injector = FaultInjector(network, rng=self._fault_rng(attack))
        records = attack.apply(injector)
        self.train(network)
        assignments, _rates = self.assign(network)
        accuracy, mean_spikes = self.evaluate(network, assignments)
        baseline = (
            self._baseline_result.accuracy
            if self._baseline_result is not None
            else (accuracy if isinstance(attack, NoAttack) else None)
        )
        result = ExperimentResult(
            attack_label=attack.label(),
            accuracy=accuracy,
            baseline_accuracy=baseline,
            mean_excitatory_spikes=mean_spikes,
            fault_descriptions=[record.describe() for record in records],
            scale_name=self.config.scale_name,
        )
        if isinstance(attack, NoAttack) and self._baseline_result is None:
            self._baseline_result = result
        return result

    def run_many(
        self,
        attacks: Sequence[Optional[PowerAttack]],
        *,
        workers: int = 0,
        executor=None,
    ) -> List[ExperimentResult]:
        """Evaluate a batch of attacks through the execution subsystem.

        ``None`` entries request the attack-free baseline.  With
        ``workers >= 2`` the evaluations fan out over a process pool (each
        worker rebuilds this pipeline from ``self.config``); accuracies and
        spike counts are identical to the serial path either way.  The
        back-referencing ``baseline_accuracy`` field is filled on attacked
        results only once the baseline is known to the executor — include a
        ``None`` entry in the batch (as the campaign sweeps do) to guarantee
        it in both modes; without one, a serial run may still inherit it
        from this pipeline's cached baseline while a parallel run cannot.
        """
        from repro.exec.executor import SweepExecutor

        executor = executor or SweepExecutor(self, workers=workers)
        return executor.map(attacks)

    def run_baseline(self) -> ExperimentResult:
        """Run (or return the cached) attack-free experiment."""
        if self._baseline_result is None:
            self._baseline_result = self.run(NoAttack())
        return self._baseline_result

    @property
    def baseline_accuracy(self) -> float:
        """Accuracy of the attack-free run (computed on demand)."""
        return self.run_baseline().accuracy
