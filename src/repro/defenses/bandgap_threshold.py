"""Bandgap-referenced threshold defense for the I&F neuron (paper Sec. V-B-1).

Generating ``V_thr`` from a bandgap reference instead of a VDD divider bounds
the threshold corruption to the reference's own drift (±0.56 % over the rated
supply range in the cited design), which reduces the accuracy degradation of
the threshold attacks to ~0 %.  The bandgap costs ~65 % area for a 200-neuron
SNN but amortises as the network grows or when the reference is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.bandgap import BandgapReferenceModel
from repro.neurons.if_amplifier import IFAmplifierModel
from repro.utils.validation import check_positive


@dataclass
class BandgapThresholdDefense:
    """Pins the I&F neuron threshold to a bandgap reference output."""

    reference: BandgapReferenceModel = field(
        default_factory=lambda: BandgapReferenceModel(nominal_output=0.5)
    )
    neuron: IFAmplifierModel = field(default_factory=IFAmplifierModel)
    #: Area overhead of the bandgap for the paper's 200-neuron SNN.
    area_overhead_200_neurons: float = 0.65
    power_overhead: float = 0.02

    def __post_init__(self) -> None:
        check_positive(self.area_overhead_200_neurons, "area_overhead_200_neurons")

    def threshold(self, vdd: float) -> float:
        """Defended threshold voltage at supply ``vdd``."""
        return self.reference.output(vdd)

    def threshold_scale(self, vdd: float) -> float:
        """Defended threshold relative to nominal (≈1 across the attack range)."""
        return self.threshold(vdd) / self.reference.nominal_output

    def undefended_threshold_scale(self, vdd: float) -> float:
        """Threshold scale of the unprotected divider-derived threshold."""
        return self.neuron.membrane_threshold(vdd) / self.neuron.membrane_threshold(
            self.neuron.nominal_vdd
        )

    def residual_threshold_change(self, vdd: float) -> float:
        """Fractional threshold change surviving the defense."""
        return self.threshold_scale(vdd) - 1.0

    def threshold_vs_vdd(self, vdd_values) -> np.ndarray:
        """Defended threshold across a VDD sweep."""
        return np.array([self.threshold(float(v)) for v in vdd_values])

    def area_overhead(self, n_neurons: int) -> float:
        """Area overhead scaled to a different network size.

        The bandgap is a fixed-area block, so its relative overhead shrinks
        inversely with the number of neurons sharing it.
        """
        check_positive(n_neurons, "n_neurons")
        return self.area_overhead_200_neurons * 200.0 / float(n_neurons)
