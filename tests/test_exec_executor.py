"""Tests for the execution subsystem: caching, dedup, serial/parallel parity."""

import dataclasses

import pytest

from repro.attacks import (
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack5GlobalSupply,
    NoAttack,
)
from repro.core import ClassificationPipeline, ExperimentConfig
from repro.core.reporting import format_execution_report
from repro.core.results import ExperimentResult
from repro.exec import ResultCache, SweepExecutor, attack_cache_key


@dataclasses.dataclass
class CountingConfig:
    scale_name: str = "fake"


class CountingPipeline:
    """Pipeline-protocol stub that counts how often each attack really runs."""

    def __init__(self) -> None:
        self.config = CountingConfig()
        self.calls = []

    def run(self, attack) -> ExperimentResult:
        self.calls.append(attack.label())
        return ExperimentResult(attack_label=attack.label(), accuracy=0.5)

    def run_baseline(self) -> ExperimentResult:
        self.calls.append("baseline")
        return ExperimentResult(attack_label="baseline", accuracy=0.9)


def tiny_config() -> ExperimentConfig:
    """A sub-smoke scale so parallel tests stay fast."""
    return ExperimentConfig.tiny()


class TestCacheKeys:
    def test_baseline_aliases(self):
        assert attack_cache_key(None) == attack_cache_key(NoAttack()) == "baseline"

    def test_equal_attacks_share_a_key(self):
        a = Attack3InhibitoryThreshold(threshold_change=0.2, fraction=0.5)
        b = Attack3InhibitoryThreshold(threshold_change=0.2, fraction=0.5)
        assert a is not b
        assert attack_cache_key(a) == attack_cache_key(b)

    def test_different_parameters_differ(self):
        a = Attack3InhibitoryThreshold(threshold_change=0.2, fraction=0.5)
        b = Attack3InhibitoryThreshold(threshold_change=0.2, fraction=0.75)
        c = Attack2ExcitatoryThreshold(threshold_change=0.2, fraction=0.5)
        assert len({attack_cache_key(x) for x in (a, b, c)}) == 3

    def test_attack5_key_stable_across_runs(self):
        # Running Attack 5 must not change its key (no self-mutation).
        attack = Attack5GlobalSupply(vdd=0.8)
        before = attack_cache_key(attack)
        attack.induced_theta_scale()
        attack.induced_threshold_scale()
        assert attack_cache_key(attack) == before


class TestSerialExecutor:
    def test_dedup_and_cache(self):
        pipeline = CountingPipeline()
        executor = SweepExecutor(pipeline)
        attacks = [
            None,
            Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0),
            Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0),
            None,
        ]
        results = executor.map(attacks)
        # Four requests, two unique evaluations.
        assert pipeline.calls.count("baseline") == 1
        assert len(pipeline.calls) == 2
        assert results[0] is results[3]
        assert results[1] is results[2]
        # A second batch is served entirely from cache.
        again = executor.map(attacks)
        assert len(pipeline.calls) == 2
        assert [r is s for r, s in zip(results, again)] == [True] * 4
        assert executor.stats.tasks_executed == 2
        assert executor.stats.cache_hits >= 4

    def test_shared_cache_across_executors(self):
        pipeline = CountingPipeline()
        cache = ResultCache()
        first = SweepExecutor(pipeline, cache=cache)
        first.run_baseline()
        second = SweepExecutor(pipeline, cache=cache)
        second.run_baseline()
        assert pipeline.calls.count("baseline") == 1

    def test_progress_callback(self):
        pipeline = CountingPipeline()
        seen = []
        executor = SweepExecutor(
            pipeline, progress=lambda timing, done, total: seen.append((done, total))
        )
        executor.map([None, Attack3InhibitoryThreshold(threshold_change=0.2)])
        assert seen == [(1, 2), (2, 2)]

    def test_requires_pipeline_or_factory(self):
        with pytest.raises(ValueError):
            SweepExecutor()

    def test_execution_report_renders(self):
        pipeline = CountingPipeline()
        executor = SweepExecutor(pipeline)
        executor.run_baseline()
        report = format_execution_report(executor.stats)
        assert "serial" in report
        assert "tasks executed" in report


class TestParallelParity:
    """Parallel results must be bit-identical to serial ones (fixed seeds)."""

    def test_parallel_equals_serial_on_small_sweep(self):
        config = tiny_config()
        attacks = [
            None,
            Attack3InhibitoryThreshold(threshold_change=0.2, fraction=0.5),
            Attack2ExcitatoryThreshold(threshold_change=-0.2, fraction=1.0),
            Attack5GlobalSupply(vdd=0.8),
        ]
        serial = SweepExecutor(ClassificationPipeline(config), workers=0)
        serial_results = serial.map(attacks)
        parallel = SweepExecutor(ClassificationPipeline(config), workers=2)
        parallel_results = parallel.map(attacks)
        for left, right in zip(serial_results, parallel_results):
            assert left.attack_label == right.attack_label
            assert left.accuracy == right.accuracy  # bit-identical, not approx
            assert left.mean_excitatory_spikes == right.mean_excitatory_spikes
        assert parallel.stats.tasks_executed == len(attacks)

    def test_run_order_does_not_change_results(self):
        # The fault streams are keyed on (seed, attack label), so the same
        # attack gives the same result no matter what ran before it.
        config = tiny_config()
        attack = Attack3InhibitoryThreshold(threshold_change=0.2, fraction=0.5)
        first = ClassificationPipeline(config).run(attack)
        pipeline = ClassificationPipeline(config)
        pipeline.run(Attack5GlobalSupply(vdd=0.8))  # consume other streams
        second = pipeline.run(attack)
        assert first.accuracy == second.accuracy
        assert first.mean_excitatory_spikes == second.mean_excitatory_spikes

    def test_pipeline_run_many_parallel(self):
        config = tiny_config()
        pipeline = ClassificationPipeline(config)
        attacks = [None, Attack5GlobalSupply(vdd=0.8)]
        serial_results = pipeline.run_many(attacks, workers=0)
        parallel_results = ClassificationPipeline(config).run_many(attacks, workers=2)
        for left, right in zip(serial_results, parallel_results):
            assert left.accuracy == right.accuracy

    def test_campaign_results_carry_baseline_accuracy(self):
        # Regression: on a fresh pipeline (no pre-run baseline), sweep
        # outcomes must still reference the baseline so relative_degradation
        # is computable — identically in serial and parallel mode.
        from repro.attacks import AttackCampaign

        config = tiny_config()
        serial_sweep = AttackCampaign(
            ClassificationPipeline(config)
        ).sweep_both_layers((-0.2,))
        parallel_sweep = AttackCampaign(
            ClassificationPipeline(config), workers=2
        ).sweep_both_layers((-0.2,))
        for sweep in (serial_sweep, parallel_sweep):
            result = sweep.worst_case().result
            assert result.baseline_accuracy == sweep.baseline_accuracy
            assert result.relative_degradation is not None
        assert (
            serial_sweep.worst_case().result.baseline_accuracy
            == parallel_sweep.worst_case().result.baseline_accuracy
        )


@dataclasses.dataclass
class FlakyConfig:
    scale_name: str = "flaky"


class FlakyPipeline:
    """Picklable pipeline whose run() fails for one specific attack."""

    def __init__(self, config=None) -> None:
        self.config = config or FlakyConfig()

    def run(self, attack) -> ExperimentResult:
        if attack.threshold_change == -0.1:
            raise RuntimeError("injected task failure")
        return ExperimentResult(attack_label=attack.label(), accuracy=0.5)

    def run_baseline(self) -> ExperimentResult:
        return ExperimentResult(attack_label="baseline", accuracy=0.9)


class TestScopedCacheAndFailures:
    def test_shared_cache_does_not_alias_different_configs(self):
        cache = ResultCache()
        smoke = CountingPipeline()
        other = CountingPipeline()
        other.config = CountingConfig(scale_name="other")
        SweepExecutor(smoke, cache=cache).run_baseline()
        SweepExecutor(other, cache=cache).run_baseline()
        # Different config content → different cache scope → both ran.
        assert smoke.calls.count("baseline") == 1
        assert other.calls.count("baseline") == 1

    def test_campaign_rejects_mismatched_executor(self):
        from repro.attacks import AttackCampaign

        pipeline_a, pipeline_b = CountingPipeline(), CountingPipeline()
        executor = SweepExecutor(pipeline_a)
        with pytest.raises(ValueError):
            AttackCampaign(pipeline_b, executor=executor)
        AttackCampaign(pipeline_a, executor=executor)  # same pipeline: fine

    def test_parallel_failure_preserves_completed_siblings(self):
        # The stub is not a ClassificationPipeline, so the workers need an
        # explicit factory (the class itself) instead of PipelineFromConfig.
        executor = SweepExecutor(
            FlakyPipeline(), workers=2, pipeline_factory=FlakyPipeline
        )
        good = [
            Attack3InhibitoryThreshold(threshold_change=0.2),
            Attack3InhibitoryThreshold(threshold_change=0.3),
        ]
        bad = Attack3InhibitoryThreshold(threshold_change=-0.1)
        with pytest.raises(RuntimeError, match="injected task failure"):
            executor.map(good + [bad])
        # The two successful siblings were drained into the cache...
        assert executor.stats.tasks_executed == 2
        results = executor.map(good)  # ...so a retry serves them from cache.
        assert executor.stats.tasks_executed == 2
        assert [r.accuracy for r in results] == [0.5, 0.5]
        executor.close()
