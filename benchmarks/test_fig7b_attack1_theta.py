"""Fig. 7b — Attack 1: accuracy vs per-spike membrane-charge (theta) change.

The paper finds the classification accuracy stays within about ±2 % of the
baseline for driver corruptions of ±20 % (worst case −1.5 %).
"""

from repro.attacks import AttackCampaign
from repro.core.reporting import format_sweep_series

THETA_CHANGES = (-0.2, -0.1, 0.0, 0.1, 0.2)


def test_fig7b_attack1_theta_sweep(benchmark, pipeline, baseline_accuracy):
    campaign = AttackCampaign(pipeline)
    sweep = benchmark.pedantic(
        campaign.sweep_attack1_theta, args=(THETA_CHANGES,), rounds=1, iterations=1
    )
    print(
        format_sweep_series(
            "theta change",
            sweep.values,
            sweep.accuracies(),
            baseline_accuracy=baseline_accuracy,
            title="Fig. 7b — Attack 1 (input-driver corruption)",
        )
    )
    # The driver-only attack must stay far from the catastrophic (-85 %)
    # regime of Attacks 3-5.  The paper reports ±2 % at its 1000-image scale;
    # the reduced benchmark scale re-trains per point with ~100 evaluation
    # images, which carries noticeably more run-to-run noise, so the bound
    # here only excludes a qualitative accuracy collapse.
    worst = sweep.worst_case()
    assert worst.result.relative_degradation < 0.3
