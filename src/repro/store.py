"""Persistent, schema-versioned figure-result artifacts and a disk cache.

Two persistence layers back the ``python -m repro`` CLI:

* **Figure artifacts** — :func:`save_figure_result` writes one JSON document
  (metrics, rendered tables, paper claims, full provenance: config, seed,
  scale, git SHA, wall-clock, executor cache hits, library versions) plus
  one NPZ file holding the figure's arrays.  :func:`load_figure_result`
  reads both back; the JSON carries a SHA-256 digest per array so artifact
  integrity is checkable offline.
* **The executor result cache** — :class:`PersistentResultCache` is a
  :class:`~repro.exec.cache.ResultCache` that mirrors every
  :class:`~repro.core.results.ExperimentResult` it stores to a JSON file.
  A new process pointed at the same file resumes where the last one
  stopped: already-evaluated attack configurations are served as cache
  hits with bit-identical numbers (JSON round-trips Python floats
  exactly), and only missing grid points are trained.

Artifacts are forward-compatible through ``schema_version``; loaders
reject documents from a newer schema instead of misreading them.

Both layers are hardened against the failure modes of real campaigns:

* Every file (JSON document, NPZ array bundle, cache flush) is written
  atomically — temp file in the same directory, ``fsync``, ``os.replace``
  — so a process killed mid-write can never leave a half-written artifact
  that later fails digest checks; the worst case is losing the write.
* Every persisted cache entry carries a SHA-256 digest of its content.
  A corrupt entry (or a truncated/empty/unparseable cache file) is
  **quarantined** on load — moved aside with a warning and recomputed as
  a cache miss — instead of crashing the campaign or, worse, silently
  serving wrong numbers.  Quarantine counts surface in executor stats and
  artifact provenance (see :mod:`repro.exec.resilience`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import re
import shutil
import subprocess
import sys
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

import numpy as np

import repro
from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.exec.cache import ResultCache
from repro.figures import FigureResult, FigureSpec
from repro.utils.serialization import to_jsonable

#: Version of the artifact document layout.  Bump on breaking changes.
SCHEMA_VERSION = 1


class CacheCorruptionError(ValueError):
    """A persistent cache file is unreadable or not a cache document.

    A :class:`ValueError` subclass so existing sibling-preload error
    handling keeps working; the cache's own loader catches it to
    quarantine the file instead of crashing.  Schema-newer files raise a
    plain :class:`ValueError` — refusing a future format is not
    corruption and must stay loud.
    """


def git_revision(repo_root: Optional[Path] = None) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = output.stdout.strip()
    return sha if output.returncode == 0 and sha else "unknown"


@dataclass(frozen=True)
class ArtifactPaths:
    """Where one figure's artifact pair was written."""

    json_path: Path
    npz_path: Path


@dataclass
class StoredFigure:
    """A figure artifact loaded back from disk."""

    document: Dict[str, Any]
    arrays: Dict[str, np.ndarray]

    @property
    def figure(self) -> str:
        """Registry name of the figure."""
        return self.document["figure"]

    @property
    def metrics(self) -> Dict[str, Any]:
        """Scalar metrics of the reproduction."""
        return self.document["metrics"]

    @property
    def provenance(self) -> Dict[str, Any]:
        """Config/seed/git-SHA/timing provenance of the run."""
        return self.document["provenance"]


def _array_digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def build_provenance(
    result: FigureResult, config: ExperimentConfig, *, git_sha: Optional[str] = None
) -> Dict[str, Any]:
    """The provenance block stored with every artifact."""
    return {
        "config": to_jsonable(config),
        "seed": config.seed,
        "scale": config.scale_name,
        "git_sha": git_sha if git_sha is not None else git_revision(),
        "created_at_unix": time.time(),
        "wall_seconds": result.wall_seconds,
        "workers": result.workers,
        "executor_tasks": result.executor_tasks,
        "executor_cache_hits": result.executor_cache_hits,
        # Fault-tolerance counters (repro.exec.resilience): all zero on a
        # clean run, nonzero when faults (real or --chaos-injected) were
        # recovered from — the numbers themselves are unaffected.
        "resilience": {
            "retries": getattr(result, "executor_retries", 0),
            "timeouts": getattr(result, "executor_timeouts", 0),
            "requeues": getattr(result, "executor_requeues", 0),
            "pool_rebuilds": getattr(result, "executor_pool_rebuilds", 0),
            "cache_quarantined": getattr(result, "cache_quarantined", 0),
        },
        # Elastic work-stealing counters (repro.exec.elastic): all zero
        # unless the campaign ran under ``--elastic``; like the resilience
        # block they audit recovery without affecting the numbers.
        "elastic": {
            "worker": getattr(result, "worker", ""),
            "leases_claimed": getattr(result, "leases_claimed", 0),
            "leases_stolen": getattr(result, "leases_stolen", 0),
            "leases_expired": getattr(result, "leases_expired", 0),
            "duplicate_wins": getattr(result, "duplicate_wins", 0),
            "peers_joined": getattr(result, "peers_joined", 0),
            "peers_lost": getattr(result, "peers_lost", 0),
        },
        "versions": {
            "repro": repro.__version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
    }


def save_figure_result(
    spec: FigureSpec,
    result: FigureResult,
    out_dir: Path | str,
    *,
    config: ExperimentConfig,
    git_sha: Optional[str] = None,
) -> ArtifactPaths:
    """Persist ``result`` as ``<name>.json`` + ``<name>.npz`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / f"{spec.name}.json"
    npz_path = out_dir / f"{spec.name}.npz"

    _atomic_write_npz(npz_path, result.arrays)
    document = {
        "schema_version": SCHEMA_VERSION,
        "figure": spec.name,
        "title": spec.title,
        "description": spec.description,
        "tags": list(spec.tags),
        "metrics": to_jsonable(result.metrics),
        "tables": [
            {"title": t.title, "headers": t.headers, "rows": t.rows}
            for t in result.tables
        ],
        "claims": [
            {
                "metric": claim.metric,
                "paper_value": claim.paper_value,
                "description": claim.description,
            }
            for claim in spec.claims
        ],
        "arrays": {
            name: {
                "npz": npz_path.name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "sha256": _array_digest(array),
            }
            for name, array in result.arrays.items()
        },
        "provenance": build_provenance(result, config, git_sha=git_sha),
    }
    _atomic_write_json(json_path, document)
    return ArtifactPaths(json_path=json_path, npz_path=npz_path)


def _load_artifact_pair(json_path: Path) -> tuple:
    """Read one JSON document plus its verified NPZ arrays.

    Shared by the figure and scenario loaders: validates the schema
    version and every array's SHA-256 digest, raising :class:`ValueError`
    on any mismatch (and propagating :class:`OSError` when a referenced
    NPZ file is missing).
    """
    with open(json_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise ValueError(
            f"{json_path} has artifact schema {version!r}; this build reads "
            f"schemas <= {SCHEMA_VERSION}"
        )
    arrays: Dict[str, np.ndarray] = {}
    manifest = document.get("arrays", {})
    if manifest:
        npz_names = {entry["npz"] for entry in manifest.values()}
        loaded: Dict[str, np.ndarray] = {}
        for npz_name in sorted(npz_names):
            with np.load(json_path.parent / npz_name) as payload:
                loaded.update({key: payload[key] for key in payload.files})
        for name, entry in manifest.items():
            if name not in loaded:
                raise ValueError(
                    f"array {name!r} of {json_path} is missing from its NPZ file"
                )
            array = loaded[name]
            digest = _array_digest(array)
            if digest != entry["sha256"]:
                raise ValueError(
                    f"array {name!r} of {json_path} is corrupt: digest mismatch"
                )
            arrays[name] = array
    return document, arrays


def load_figure_result(json_path: Path | str) -> StoredFigure:
    """Load one artifact pair; verifies the schema and array digests."""
    document, arrays = _load_artifact_pair(Path(json_path))
    return StoredFigure(document=document, arrays=arrays)


def classify_artifact_json(json_path: Path | str) -> str:
    """What kind of document one ``.json`` file holds.

    Returns ``"figure"`` / ``"scenario"`` for artifact documents,
    ``"other"`` for JSON that parses but is not an artifact (skippable,
    e.g. a stray config), ``"corrupt"`` for files that are not valid JSON
    and ``"unreadable"`` for files that cannot be opened at all.  The
    report commands treat the last two as failures — a truncated or
    unreadable artifact must fail the run, not vanish from it.
    """
    try:
        with open(json_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError:
        return "unreadable"
    except ValueError:
        return "corrupt"
    if not isinstance(document, dict) or "schema_version" not in document:
        return "other"
    if "figure" in document:
        return "figure"
    if "scenario" in document:
        return "scenario"
    if "snapshot" in document:
        return "snapshot"
    return "other"


def is_figure_artifact(json_path: Path | str) -> bool:
    """True when ``json_path`` looks like a figure artifact document."""
    return classify_artifact_json(json_path) == "figure"


# --------------------------------------------------------------------------
# Scenario artifacts (the ``python -m repro scenarios`` tier).
# --------------------------------------------------------------------------


@dataclass
class StoredScenario:
    """A scenario artifact loaded back from disk."""

    document: Dict[str, Any]
    arrays: Dict[str, np.ndarray]

    @property
    def scenario(self) -> str:
        """Registry name of the scenario."""
        return self.document["scenario"]

    @property
    def metrics(self) -> Dict[str, Any]:
        """Scalar metrics of the evaluation."""
        return self.document["metrics"]

    @property
    def provenance(self) -> Dict[str, Any]:
        """Config/seed/git-SHA/timing provenance of the run."""
        return self.document["provenance"]


def save_scenario_result(
    scenario,
    result,
    out_dir: Path | str,
    *,
    config: ExperimentConfig,
    git_sha: Optional[str] = None,
) -> ArtifactPaths:
    """Persist a :class:`~repro.scenarios.runner.ScenarioResult` pair.

    Writes ``scenario-<name>.json`` + ``scenario-<name>.npz`` under
    ``out_dir`` with the same provenance/digest discipline as figure
    artifacts, plus the *full declarative spec* (``scenario.to_dict()``)
    so an artifact is reproducible from itself.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / f"scenario-{scenario.name}.json"
    npz_path = out_dir / f"scenario-{scenario.name}.npz"

    _atomic_write_npz(npz_path, result.arrays)
    document = {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario.name,
        "title": scenario.title or scenario.name,
        "description": scenario.description,
        "tags": list(scenario.tags),
        "strategy": result.strategy,
        "engine": result.engine,
        "shard": result.shard,
        "spec": to_jsonable(scenario.to_dict()),
        "metrics": to_jsonable(result.metrics),
        "cases": to_jsonable(result.cases),
        "tables": [
            {"title": t.title, "headers": t.headers, "rows": t.rows}
            for t in result.tables
        ],
        "arrays": {
            name: {
                "npz": npz_path.name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "sha256": _array_digest(array),
            }
            for name, array in result.arrays.items()
        },
        "provenance": build_provenance(result, config, git_sha=git_sha),
    }
    _atomic_write_json(json_path, document)
    return ArtifactPaths(json_path=json_path, npz_path=npz_path)


def load_scenario_result(json_path: Path | str) -> StoredScenario:
    """Load one scenario artifact pair; verifies schema and array digests."""
    document, arrays = _load_artifact_pair(Path(json_path))
    return StoredScenario(document=document, arrays=arrays)


def is_scenario_artifact(json_path: Path | str) -> bool:
    """True when ``json_path`` looks like a scenario artifact document."""
    return classify_artifact_json(json_path) == "scenario"


# --------------------------------------------------------------------------
# Snapshot artifacts (the ``python -m repro snapshot`` serving tier).
# --------------------------------------------------------------------------


@dataclass
class StoredSnapshot:
    """A trained-state snapshot artifact loaded back from disk.

    Written by :func:`repro.snn.snapshot.save_snapshot`; the ``arrays``
    dict holds the verified network state (``layer.*`` / ``connection.*``
    keys) plus the label-assignment arrays (``labels.*``).
    """

    document: Dict[str, Any]
    arrays: Dict[str, np.ndarray]

    @property
    def name(self) -> str:
        """The snapshot's artifact name (e.g. ``"fig8"``)."""
        return self.document["snapshot"]

    @property
    def metrics(self) -> Dict[str, Any]:
        """Training-time metrics (accuracy, prediction digest, ...)."""
        return self.document.get("metrics", {})

    @property
    def provenance(self) -> Dict[str, Any]:
        """Config/seed/git-SHA/timing provenance of the exporting run."""
        return self.document["provenance"]


def load_snapshot_result(json_path: Path | str) -> StoredSnapshot:
    """Load one snapshot artifact pair; verifies schema and array digests."""
    document, arrays = _load_artifact_pair(Path(json_path))
    return StoredSnapshot(document=document, arrays=arrays)


def is_snapshot_artifact(json_path: Path | str) -> bool:
    """True when ``json_path`` looks like a snapshot artifact document."""
    return classify_artifact_json(json_path) == "snapshot"


def _atomic_write_json(path: Path, payload: Any) -> None:
    """Write ``payload`` as JSON via temp file + fsync + rename.

    ``os.replace`` within one directory is atomic on POSIX, so readers see
    either the previous complete file or the new complete file — never a
    torn write, even when the process is killed mid-``json.dump``.
    """
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _atomic_write_npz(path: Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Write an NPZ bundle via temp file + fsync + rename (see above)."""
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _entry_digest(fields: Mapping[str, Any]) -> str:
    """SHA-256 of one cache entry's canonical JSON content."""
    return hashlib.sha256(
        json.dumps(fields, sort_keys=True).encode("utf-8")
    ).hexdigest()


def quarantine_path(path: Path) -> Path:
    """A fresh ``<name>.quarantined[-N]`` sibling path for a corrupt file."""
    candidate = path.with_name(path.name + ".quarantined")
    counter = 0
    while candidate.exists():
        counter += 1
        candidate = path.with_name(f"{path.name}.quarantined-{counter}")
    return candidate


class PersistentResultCache(ResultCache):
    """A :class:`ResultCache` whose experiment results survive the process.

    Every :class:`~repro.core.results.ExperimentResult` put into the cache
    is mirrored to one JSON file (written atomically), keyed by the
    executor's scoped content key.  Loading the file back reconstructs the
    results exactly — JSON preserves Python floats bit-for-bit — so a
    re-run of the same figures completes from cache hits alone.  Values of
    other types stay in memory only (the executor never produces them for
    the registered figures).

    Every persisted entry carries a SHA-256 digest of its content, checked
    on load.  Corrupt state never crashes a campaign and never silently
    serves wrong numbers: an unreadable/truncated/empty cache file is
    **quarantined** (moved aside with a :class:`RuntimeWarning`) and the
    cache starts fresh; individual entries failing their digest are
    dropped (the file is copied aside once for post-mortem) and recomputed
    as cache misses.  ``quarantined_entries`` / ``quarantined_files``
    record what happened, and flow into executor stats and artifact
    provenance through :class:`repro.exec.resilience.ResilientExecutor`.
    A cache file from a *newer* schema still raises: refusing to guess at
    a future format is not a corruption-recovery case.
    """

    def __init__(self, path: Path | str) -> None:
        super().__init__()
        self.path = Path(path)
        self._persisted: Dict[str, Dict[str, Any]] = {}
        #: Entries dropped for failing their content digest (all files).
        self.quarantined_entries = 0
        #: Corrupt files moved (or copied) aside, in quarantine order.
        self.quarantined_files: list = []
        if self.path.exists():
            self._load_own_file()

    def _load_own_file(self) -> None:
        """Adopt this cache's own file, quarantining corrupt state."""
        try:
            entries, bad = self._read_entries(self.path)
        except CacheCorruptionError as error:
            moved = quarantine_path(self.path)
            os.replace(self.path, moved)
            self.quarantined_files.append(moved)
            warnings.warn(
                f"quarantined corrupt result cache {self.path} -> {moved.name} "
                f"({error}); its results will be recomputed",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        if bad:
            # Keep the good entries, but preserve the damaged original for
            # post-mortem before the next flush overwrites it.
            copied = quarantine_path(self.path)
            shutil.copy2(self.path, copied)
            self.quarantined_files.append(copied)
            self.quarantined_entries += bad
            warnings.warn(
                f"dropped {bad} corrupt entr{'y' if bad == 1 else 'ies'} from "
                f"result cache {self.path} (digest mismatch; original copied "
                f"to {copied.name}); they will be recomputed",
                RuntimeWarning,
                stacklevel=3,
            )
        for key, fields, result in entries:
            self._persisted[key] = fields
            self._results[key] = result

    @staticmethod
    def _read_entries(path: Path):
        """Read one cache file; returns ``(entries, corrupt_count)``.

        ``entries`` is a list of ``(key, raw_fields, ExperimentResult)``
        for every entry that parsed and passed its digest check;
        ``corrupt_count`` counts entries that failed it.  Raises
        :class:`CacheCorruptionError` when the file as a whole is not a
        cache document (unreadable, truncated, empty, not a JSON object)
        and plain :class:`ValueError` for newer-schema files.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise CacheCorruptionError(f"cannot read cache file: {error}") from None
        except ValueError as error:
            raise CacheCorruptionError(f"not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise CacheCorruptionError("cache document is not a JSON object")
        version = payload.get("schema_version")
        if not isinstance(version, int):
            raise CacheCorruptionError(f"missing/invalid schema_version {version!r}")
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"{path} has cache schema {version!r}; this build "
                f"reads schemas <= {SCHEMA_VERSION} — delete the file to "
                "start a fresh cache"
            )
        raw = payload.get("results", {})
        if not isinstance(raw, dict):
            raise CacheCorruptionError("cache 'results' is not a JSON object")
        entries = []
        corrupt = 0
        for key, entry in raw.items():
            if isinstance(entry, dict) and "fields" in entry:
                fields = entry.get("fields")
                digest = entry.get("sha256")
                if not isinstance(fields, dict) or _entry_digest(fields) != digest:
                    corrupt += 1
                    continue
            else:
                # Entry written before per-entry digests existed: accept
                # (layout unchanged, just unverifiable).
                fields = entry
            try:
                result = ExperimentResult(**fields)
            except TypeError:
                # An entry written by a different ExperimentResult layout
                # (same schema, drifted fields): drop it — a cache miss
                # re-trains the point, a bad hit would corrupt figures.
                continue
            entries.append((key, fields, result))
        return entries, corrupt

    #: Pause before the single re-read of a sibling file that failed its
    #: first read — long enough for a peer's atomic flush to land.
    PRELOAD_RETRY_DELAY = 0.05

    def _read_sibling_entries(self, path: Path):
        """Read a *sibling* cache file, retrying once on a failed first read.

        A peer flushing concurrently replaces the file between our
        ``open`` and ``read`` — the first read can then see a vanished
        file or (on filesystems without atomic rename visibility) torn
        content.  That is transient, not corruption: one short retry
        reads the peer's completed flush.  Only a *second* consecutive
        failure is treated as real corruption (exceptions propagate,
        corrupt-entry counts stand), so a healthy sibling mid-flush is
        never quarantined.
        """
        try:
            entries, bad = self._read_entries(path)
            if not bad:
                return entries, bad
        except (CacheCorruptionError, OSError):
            pass
        time.sleep(self.PRELOAD_RETRY_DELAY)
        return self._read_entries(path)

    def preload(self, path: Path | str) -> int:
        """Seed in-memory entries from *another* cache file, without adopting.

        Entries already present (from this cache's own file or earlier
        preloads) win.  Preloaded results are served as cache hits but are
        **not** re-persisted to this cache's file, so concurrent shard
        invocations writing disjoint files never clobber each other's
        entries.  A first read that fails (a peer's concurrent flush
        replacing the file mid-read) is retried once before anything is
        counted as corrupt.  Corrupt sibling entries are skipped (counted
        in ``quarantined_entries``) but the sibling file is left untouched
        — its owning shard quarantines it.  Returns the number of entries
        added.
        """
        path = Path(path)
        added = 0
        if not path.exists():
            return added
        entries, bad = self._read_sibling_entries(path)
        self.quarantined_entries += bad
        if bad:
            warnings.warn(
                f"skipped {bad} corrupt entr{'y' if bad == 1 else 'ies'} while "
                f"preloading sibling cache {path}; they will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
        for key, _fields, result in entries:
            if key not in self._results:
                self._results[key] = result
                added += 1
        return added

    def put(self, key: str, result) -> None:
        """Store ``result`` and, for experiment results, flush it to disk.

        The flush rewrites the whole file per put; with entries this small
        that costs milliseconds against the multi-second training run each
        entry represents, and it is what makes a run interrupted mid-figure
        resumable from every result it had already computed.
        """
        super().put(key, result)
        if isinstance(result, ExperimentResult):
            fields = dataclasses.asdict(result)
            self._persisted[key] = fields
            self._flush()

    def _flush(self) -> None:
        payload: Mapping[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "results": {
                key: {"fields": fields, "sha256": _entry_digest(fields)}
                for key, fields in self._persisted.items()
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.path, payload)


def open_shard_cache(directory: Path | str, shard=None) -> PersistentResultCache:
    """The persistent cache for one (possibly sharded) campaign invocation.

    Each shard persists its results to its own file
    (``cache.shard-<i>-of-<n>.json``; the unsharded file stays
    ``cache.json``), so concurrent shard processes never rewrite each
    other's files, and every invocation *preloads* all sibling cache files
    in the directory — which is what makes the merge step implicit: once
    the union of shard caches covers a scenario's variant list, any
    invocation assembles the complete, bit-identical artifact with zero
    new pipeline runs.
    """
    directory = Path(directory)
    if shard is None or shard.count == 1:
        path = directory / "cache.json"
    else:
        path = directory / f"cache.shard-{shard.index}-of-{shard.count}.json"
    cache = PersistentResultCache(path)
    preload_sibling_caches(cache, directory)
    return cache


def preload_sibling_caches(cache: PersistentResultCache, directory: Path | str) -> int:
    """Preload every ``cache*.json`` sibling in ``directory`` into ``cache``.

    The merge primitive of both static sharding and elastic execution:
    re-run after other invocations flushed and the in-memory union grows
    to cover their results.  An unreadable or newer-schema *sibling* must
    not block this invocation — its entries simply become cache misses
    here (the cache's own file still fails loudly on open: silently
    dropping our own persisted results would hide data loss).  Returns
    the number of entries added.
    """
    directory = Path(directory)
    added = 0
    for sibling in sorted(directory.glob("cache*.json")):
        if sibling == cache.path:
            continue
        try:
            added += cache.preload(sibling)
        except (OSError, ValueError) as error:
            print(
                f"warning: skipping unreadable sibling cache {sibling}: {error}",
                file=sys.stderr,
            )
    return added


def open_worker_cache(directory: Path | str, worker_id: str) -> PersistentResultCache:
    """The persistent cache for one *elastic* worker invocation.

    Like :func:`open_shard_cache`, but keyed by worker id instead of a
    static shard coordinate: each cooperating process persists to its own
    ``cache.elastic-<worker>.json`` (never contending with peers on
    writes) and preloads every sibling — so whichever worker finds the
    union complete assembles the merged artifact, bit-identical to a
    single-process run.
    """
    directory = Path(directory)
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", str(worker_id)) or "worker"
    cache = PersistentResultCache(directory / f"cache.elastic-{safe}.json")
    preload_sibling_caches(cache, directory)
    return cache
