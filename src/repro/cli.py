"""``python -m repro`` — figures, scenarios, artifacts and reports.

Figure subcommands:

``list``
    Show every registered figure with its tier and paper-claim count.
``run``
    Reproduce one or more figures (or ``--all``) at a chosen scale,
    fanning pipeline runs out over ``--workers`` processes, and persist
    schema-versioned JSON+NPZ artifacts (plus the executor's result cache)
    under ``--out``.  Re-running against the same ``--out`` resumes from
    the persistent cache: already-evaluated configurations are cache hits
    and the numbers are bit-identical.
``report``
    Render the artifacts in a results directory as comparison tables
    against the paper's published numbers.  Exits nonzero when an
    artifact is missing its arrays or fails schema/digest validation.
    Snapshot artifacts are listed with their provenance (engine, scale,
    git SHA) under the same integrity rules.

Snapshot subcommands (the inference serving tier, :mod:`repro.snn.snapshot`
and :mod:`repro.snn.serving`):

``snapshot export``
    Train one fig-8 pipeline at the chosen scale and persist its trained
    state (weights, theta, thresholds, label assignments, encoding
    parameters) as a schema-versioned, digest-verified JSON+NPZ artifact.
    The snapshot records the evaluation accuracy and a SHA-256 of the
    eval-set predictions so any later scoring can prove bitwise parity.
``snapshot info``
    Inspect a stored snapshot (digest-verified load).  ``--rescore``
    hydrates the inference-only scoring engine, re-scores the held-out
    split and exits nonzero unless accuracy and prediction digest match
    the values recorded at export time — the cross-process serving-parity
    check CI runs.

Scenario subcommands (the declarative threat-scenario subsystem,
:mod:`repro.scenarios`):

``scenarios list``
    Show every registered scenario (family, strategy, variant count).
``scenarios run``
    Evaluate scenarios (or ``--all``) with the same persistence and
    resume guarantees as figures, plus ``--shard i/n`` to split a long
    campaign across independent invocations: each shard writes its own
    cache file, and whichever invocation finds the union complete writes
    the merged artifact — bit-identical to an unsharded run.  ``--file``
    loads additional scenario specs from YAML/JSON.  ``--elastic`` replaces
    the static split with a coordinator-free work-stealing drain
    (:mod:`repro.exec.elastic`): start N copies of the same command against
    one ``--out`` and they claim variant chunks through heartbeat lease
    files, steal leases from crashed peers and duplicate stragglers —
    the merged artifact stays bit-identical no matter which workers
    survive.
``scenarios clean``
    Sweep stale elastic coordination state (expired leases, orphaned
    markers and heartbeats) from a campaign directory; dry-run by
    default, ``--apply`` deletes.
``scenarios report``
    Render stored scenario artifacts as summary tables.

Both ``run`` commands execute through the fault-tolerant supervision layer
(:mod:`repro.exec.resilience`): ``--task-timeout`` abandons and re-dispatches
hung tasks, ``--max-retries`` bounds the per-task retry budget (seeded
exponential backoff), and ``--chaos`` injects a deterministic fault plan
(:mod:`repro.exec.chaos`) to prove the campaign still produces bit-identical
results under worker crashes, hangs, transient errors and cache corruption.
Ctrl-C / SIGTERM exit gracefully (codes 130/143) with every completed result
flushed to the persistent cache for resume.

Examples::

    python -m repro list
    python -m repro run fig8 --scale smoke --workers 4 --out results/
    python -m repro report results/
    python -m repro snapshot export --scale smoke --out results/
    python -m repro snapshot info results/snapshot-fig8.json --rescore
    python -m repro scenarios list
    python -m repro scenarios run --all --scale smoke --out results/
    python -m repro scenarios run vdd_droop_fine --shard 0/4 --out results/
    python -m repro scenarios run --all --elastic --out results/  # xN procs
    python -m repro scenarios clean results/ --apply
    python -m repro scenarios report results/
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.config import ExperimentConfig
from repro.core.reporting import (
    format_artifact_summary,
    format_recovered_faults,
    format_execution_report,
    format_paper_comparison,
)
from repro.exec.chaos import CHAOS_PLANS, load_fault_plan
from repro.exec.elastic import DEFAULT_CHUNK_SIZE, DEFAULT_LEASE_TTL, ElasticPolicy
from repro.exec.resilience import ResiliencePolicy
from repro.figures import FigureContext, figure_names, get_figure, iter_figures
from repro.store import (
    PersistentResultCache,
    classify_artifact_json,
    git_revision,
    load_figure_result,
    load_scenario_result,
    load_snapshot_result,
    open_shard_cache,
    save_figure_result,
    save_scenario_result,
)
from repro.utils.tables import format_table

#: File name of the persistent executor cache inside a results directory.
CACHE_FILENAME = "cache.json"

#: Exit code after Ctrl-C (the conventional 128 + SIGINT).
EXIT_INTERRUPTED = 130

#: Exit code after SIGTERM (the conventional 128 + SIGTERM).
EXIT_TERMINATED = 143


class _TerminationRequested(BaseException):
    """Raised from the SIGTERM handler to unwind through context managers.

    A ``BaseException`` (like :class:`KeyboardInterrupt`) so ordinary
    ``except Exception`` retry logic never swallows a shutdown request;
    the ``with`` blocks it unwinds through cancel pending executor work,
    and every completed result is already flushed to the persistent cache.
    """


def _install_sigterm_handler():
    """Route SIGTERM into :class:`_TerminationRequested`; returns the old handler.

    Returns ``None`` when handlers cannot be installed (non-main thread,
    platforms without SIGTERM) — the CLI then just keeps default behaviour.
    """

    def handler(signum, frame):
        raise _TerminationRequested()

    try:
        return signal.signal(signal.SIGTERM, handler)
    except (ValueError, OSError, AttributeError):
        return None


def _add_scale_workers_engine(parser: argparse.ArgumentParser) -> None:
    """The execution flags shared by ``run`` and ``scenarios run``."""
    parser.add_argument(
        "--scale",
        choices=sorted(ExperimentConfig.presets()),
        default=None,
        help="experiment scale preset (default: REPRO_SCALE or 'benchmark')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for pipeline sweeps (0/1 = serial)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "batched", "scalar", "sparse"),
        default=None,
        help="execution engine for BOTH tiers: the SNN tier ('scalar' = "
        "per-example reference, 'batched' = lockstep engine, 'auto' = "
        "batched when available; bit-identical results either way) and "
        "the circuit tier ('scalar' forces the per-device reference "
        "MNA path, 'sparse' forces the CSC+splu large-N tier, otherwise "
        "the compiled/batched engine — auto still routes crossbar-scale "
        "netlists to the sparse tier; identical within solver tolerance)",
    )
    parser.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="artifact directory (default: results/)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-item tables"
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task timeout for parallel runs: a dispatch exceeding it "
        "is abandoned and re-dispatched (counts against --max-retries)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget per task for worker failures and timeouts, with "
        "seeded exponential backoff (default: 2)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan for resilience testing: "
        f"a built-in name ({', '.join(sorted(CHAOS_PLANS))}) or a JSON "
        "file; final results stay bit-identical to a clean run",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures and run declarative "
        "attack scenarios, with persistent artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered figure")

    run = sub.add_parser("run", help="reproduce figures and persist artifacts")
    run.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"figure names ({', '.join(figure_names())})",
    )
    run.add_argument("--all", action="store_true", help="run every registered figure")
    _add_scale_workers_engine(run)

    report = sub.add_parser("report", help="compare stored artifacts to the paper")
    report.add_argument("results_dir", metavar="DIR", help="artifact directory")

    snapshot = sub.add_parser(
        "snapshot", help="trained-state snapshots for serving (export/info)"
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)

    snap_export = snap_sub.add_parser(
        "export",
        help="train one fig-8 pipeline and persist its trained state",
    )
    snap_export.add_argument(
        "--scale",
        choices=sorted(ExperimentConfig.presets()),
        default=None,
        help="experiment scale preset (default: REPRO_SCALE or 'benchmark')",
    )
    snap_export.add_argument(
        "--engine",
        choices=("auto", "batched", "scalar", "sparse"),
        default="auto",
        help="SNN engine used for training and the recorded eval pass "
        "(bit-identical results either way)",
    )
    snap_export.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="artifact directory (default: results/)",
    )
    snap_export.add_argument(
        "--name",
        default="fig8",
        metavar="NAME",
        help="snapshot artifact name: snapshot-<NAME>.json/.npz "
        "(default: fig8)",
    )
    snap_export.add_argument(
        "--quiet", action="store_true", help="suppress the summary table"
    )

    snap_info = snap_sub.add_parser(
        "info", help="inspect a stored snapshot (digest-verified load)"
    )
    snap_info.add_argument(
        "snapshot_path", metavar="JSON", help="path to a snapshot-*.json file"
    )
    snap_info.add_argument(
        "--rescore",
        action="store_true",
        help="hydrate the scoring engine, re-score the held-out split and "
        "exit nonzero unless accuracy and prediction SHA-256 match the "
        "values recorded at export time",
    )
    snap_info.add_argument(
        "--engine",
        choices=("auto", "batched", "scalar", "sparse"),
        default="auto",
        help="scoring engine for --rescore (parity must hold either way)",
    )

    scenarios = sub.add_parser(
        "scenarios", help="declarative attack scenarios (list/run/report)"
    )
    scen_sub = scenarios.add_subparsers(dest="scenario_command", required=True)

    scen_list = scen_sub.add_parser("list", help="list every registered scenario")
    scen_list.add_argument(
        "--tag", default=None, help="only scenarios carrying this tag"
    )

    scen_run = scen_sub.add_parser(
        "run", help="evaluate scenarios and persist artifacts"
    )
    scen_run.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO", help="scenario names"
    )
    scen_run.add_argument(
        "--all", action="store_true", help="run every registered scenario"
    )
    scen_run.add_argument(
        "--file",
        action="append",
        default=[],
        metavar="SPEC",
        help="load additional scenario specs from a YAML/JSON file "
        "(repeatable; loaded scenarios are addressable by name)",
    )
    scen_run.add_argument(
        "--shard",
        default=None,
        metavar="i/n",
        help="evaluate only shard i of an n-way split of each scenario's "
        "variant list (adaptive scenarios are whole-scenario assigned); "
        "run every shard, then any invocation merges the artifacts",
    )
    scen_run.add_argument(
        "--elastic",
        action="store_true",
        help="join a coordinator-free work-stealing drain of each scenario "
        "over --out: start N copies of this command and they split the "
        "variant list dynamically through lease files, steal work from "
        "crashed peers and merge a bit-identical artifact (mutually "
        "exclusive with --shard)",
    )
    scen_run.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable identity of this elastic worker "
        "(default: <hostname>-<pid>)",
    )
    scen_run.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="elastic lease heartbeat time-to-live: a lease not renewed "
        f"for this long is stolen by peers (default: {DEFAULT_LEASE_TTL:g})",
    )
    scen_run.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        metavar="N",
        help="variants per elastic lease chunk "
        f"(default: {DEFAULT_CHUNK_SIZE})",
    )
    _add_scale_workers_engine(scen_run)

    scen_clean = scen_sub.add_parser(
        "clean",
        help="sweep stale elastic coordination state from a campaign "
        "directory (dry-run by default)",
    )
    scen_clean.add_argument(
        "workdir", metavar="DIR", help="campaign/artifact directory to sweep"
    )
    scen_clean.add_argument(
        "--apply",
        action="store_true",
        help="actually delete the stale files (default: only list them)",
    )
    scen_clean.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="lease time-to-live used to judge staleness "
        f"(default: {DEFAULT_LEASE_TTL:g})",
    )

    scen_report = scen_sub.add_parser(
        "report", help="summarise stored scenario artifacts"
    )
    scen_report.add_argument("results_dir", metavar="DIR", help="artifact directory")
    return parser


def _cmd_list() -> int:
    rows = []
    for spec in iter_figures():
        tier = "pipeline" if spec.uses_pipeline else "circuit"
        rows.append(
            [spec.name, tier, ",".join(spec.tags), str(len(spec.claims)), spec.description]
        )
    print(
        format_table(
            ["figure", "tier", "tags", "claims", "description"],
            rows,
            title=f"Registered paper figures ({len(rows)})",
        )
    )
    return 0


def _resolve_figures(names: Sequence[str], run_all: bool) -> List[str]:
    if run_all:
        return figure_names()
    if not names:
        raise SystemExit(
            "no figures given; name at least one (see 'python -m repro list') "
            "or pass --all"
        )
    known = set(figure_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown figure(s): {', '.join(unknown)}; "
            f"registered: {', '.join(figure_names())}"
        )
    return list(names)


def _resilience_from_args(
    args: argparse.Namespace, *, seed: int = 0
) -> ResiliencePolicy:
    """Map the shared CLI flags onto a :class:`ResiliencePolicy`."""
    plan = None
    if args.chaos:
        try:
            plan = load_fault_plan(args.chaos)
        except (OSError, ValueError) as error:
            raise SystemExit(f"--chaos: {error}") from None
    return ResiliencePolicy.from_options(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        chaos=plan,
        seed=seed,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_figures(args.figures, args.all)
    if args.scale is not None:
        config = ExperimentConfig.from_scale(args.scale)
    else:
        config = ExperimentConfig.from_environment(default="benchmark")
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    policy = _resilience_from_args(args, seed=config.seed)
    if policy.chaos is not None:
        # Disk-level chaos (cache corruption) fires before the cache opens,
        # so the quarantine-and-recompute path is what gets exercised.
        policy.chaos.apply_disk(out_dir)
    cache = PersistentResultCache(out_dir / CACHE_FILENAME)
    git_sha = git_revision()

    with FigureContext(
        config,
        workers=args.workers,
        cache=cache,
        engine=args.engine or "auto",
        resilience=policy,
    ) as context:
        for name in names:
            spec = get_figure(name)
            print(f"[{name}] {spec.title} (scale {config.scale_name})...")
            result = spec.run(context)
            paths = save_figure_result(
                spec, result, out_dir, config=config, git_sha=git_sha
            )
            if not args.quiet:
                print(result.render())
            print(
                f"[{name}] done in {result.wall_seconds:.2f} s "
                f"({result.executor_tasks} pipeline runs, "
                f"{result.executor_cache_hits} cache hits) -> {paths.json_path}"
            )
        print()
        print(format_execution_report(context.executor.stats))
    return 0


#: classify_artifact_json kinds the report commands count as failures.
_BROKEN_JSON = {
    "corrupt": "not valid JSON",
    "unreadable": "cannot read file",
}


def _snapshot_report_row(json_path: Path, stored) -> List[str]:
    """One ``repro report`` table row for a snapshot artifact."""
    provenance = stored.provenance
    metrics = stored.metrics
    accuracy = metrics.get("accuracy")
    digest = metrics.get("eval_predictions_sha256", "")
    return [
        json_path.name,
        stored.document.get("engine", "?") or "?",
        provenance.get("scale", "?"),
        str(provenance.get("git_sha", "?"))[:12],
        f"{accuracy:.4f}" if accuracy is not None else "?",
        digest[:12] if digest else "-",
    ]


def _cmd_report(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"{results_dir} is not a directory", file=sys.stderr)
        return 1
    documents = []
    snapshot_rows: List[List[str]] = []
    failures: List[str] = []
    for json_path in sorted(results_dir.glob("*.json")):
        if json_path.name.startswith("cache"):
            continue
        kind = classify_artifact_json(json_path)
        if kind in _BROKEN_JSON:
            failures.append(f"{json_path.name}: {_BROKEN_JSON[kind]}")
            continue
        if kind == "snapshot":
            # A snapshot with a missing or tampered NPZ is as fatal as a
            # broken figure artifact — load (and digest-verify) it here.
            try:
                snapshot_rows.append(
                    _snapshot_report_row(json_path, load_snapshot_result(json_path))
                )
            except (OSError, ValueError) as error:
                failures.append(f"{json_path.name}: {error}")
            continue
        if kind != "figure":
            continue
        try:
            documents.append(load_figure_result(json_path).document)
        except (OSError, ValueError) as error:
            failures.append(f"{json_path.name}: {error}")
    if not documents and not snapshot_rows and not failures:
        print(f"no figure artifacts found in {results_dir}", file=sys.stderr)
        return 1
    if documents:
        print(format_artifact_summary(documents))
        print()
        print(format_paper_comparison(documents))
    if snapshot_rows:
        if documents:
            print()
        print(
            format_table(
                ["snapshot", "engine", "scale", "git sha", "accuracy", "digest"],
                snapshot_rows,
                title=f"Serving snapshots ({len(snapshot_rows)})",
            )
        )
    if failures:
        # The partial tables above are still useful, but a missing or
        # corrupt artifact must fail the invocation (CI depends on it).
        print(
            f"{len(failures)} artifact(s) failed to load:", file=sys.stderr
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------
# Snapshot subcommands (the inference serving tier).
# --------------------------------------------------------------------------


def _cmd_snapshot_export(args: argparse.Namespace) -> int:
    from repro.core.pipeline import ClassificationPipeline
    from repro.snn.snapshot import save_snapshot, snapshot_from_pipeline

    if args.scale is not None:
        config = ExperimentConfig.from_scale(args.scale)
    else:
        config = ExperimentConfig.from_environment(default="benchmark")
    pipeline = ClassificationPipeline(config, engine=args.engine)
    print(
        f"[snapshot] training fig-8 pipeline (scale {config.scale_name}, "
        f"engine {pipeline.resolved_engine})..."
    )
    snapshot = snapshot_from_pipeline(pipeline)
    paths = save_snapshot(snapshot, args.out, name=args.name)
    if not args.quiet:
        rows = [
            ("scale", config.scale_name),
            ("engine", snapshot.engine),
            ("seed", str(snapshot.seed)),
            ("arrays", str(len(snapshot.arrays))),
            ("accuracy", f"{snapshot.metrics['accuracy']:.4f}"),
            ("predictions sha256", snapshot.metrics["eval_predictions_sha256"]),
        ]
        print(format_table(["field", "value"], rows, title=f"snapshot {args.name}"))
    print(f"[snapshot] wrote {paths.json_path} + {paths.npz_path.name}")
    return 0


def _cmd_snapshot_info(args: argparse.Namespace) -> int:
    from repro.snn.serving import ScoringEngine
    from repro.snn.snapshot import load_snapshot

    json_path = Path(args.snapshot_path)
    try:
        snapshot = load_snapshot(json_path)
        stored = load_snapshot_result(json_path)
    except (OSError, ValueError) as error:
        print(f"{json_path}: {error}", file=sys.stderr)
        return 1
    provenance = stored.provenance
    metrics = stored.metrics
    rows = [
        ("snapshot", stored.name),
        ("model", snapshot.model.get("kind", "?")),
        ("score layer", snapshot.score_layer),
        ("engine", snapshot.engine or "?"),
        ("scale", str(provenance.get("scale", "?"))),
        ("seed", str(snapshot.seed)),
        ("git sha", str(provenance.get("git_sha", "?"))),
        ("arrays", str(len(snapshot.arrays))),
        ("time steps", str(snapshot.time_steps)),
        ("accuracy", f"{metrics.get('accuracy', float('nan')):.4f}"),
        ("predictions sha256", metrics.get("eval_predictions_sha256", "-")),
    ]
    print(format_table(["field", "value"], rows, title=f"snapshot {stored.name}"))
    if not args.rescore:
        return 0

    engine = ScoringEngine(snapshot, engine=args.engine)
    evaluation = engine.evaluate()
    expected_digest = metrics.get("eval_predictions_sha256")
    expected_accuracy = metrics.get("accuracy")
    digest_ok = evaluation.predictions_sha256 == expected_digest
    accuracy_ok = evaluation.accuracy == expected_accuracy
    print()
    print(
        format_table(
            ["quantity", "stored", "rescored", "match"],
            [
                (
                    "accuracy",
                    f"{expected_accuracy:.6f}",
                    f"{evaluation.accuracy:.6f}",
                    "yes" if accuracy_ok else "NO",
                ),
                (
                    "predictions sha256",
                    str(expected_digest)[:16],
                    evaluation.predictions_sha256[:16],
                    "yes" if digest_ok else "NO",
                ),
            ],
            title=f"serving parity ({engine.resolved_engine} engine)",
        )
    )
    if not (digest_ok and accuracy_ok):
        print(
            f"{json_path.name}: rescored predictions diverge from the "
            "snapshot's recorded evaluation",
            file=sys.stderr,
        )
        return 1
    return 0


# --------------------------------------------------------------------------
# Scenario subcommands.
# --------------------------------------------------------------------------


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import CompositeScenario, iter_scenarios

    rows = []
    for scenario in iter_scenarios():
        if args.tag and args.tag not in scenario.tags:
            continue
        if isinstance(scenario, CompositeScenario):
            family = f"composite/{scenario.mode}"
        else:
            family = scenario.family
        if scenario.strategy == "bisect":
            size = f"<= 2+log2({len(next(iter(scenario.grid.values())))})"
        else:
            size = str(len(scenario.variants()))
        rows.append(
            [
                scenario.name,
                family,
                scenario.strategy,
                size,
                ",".join(scenario.tags),
                scenario.title or scenario.description,
            ]
        )
    print(
        format_table(
            ["scenario", "family", "strategy", "runs", "tags", "title"],
            rows,
            title=f"Registered attack scenarios ({len(rows)})",
        )
    )
    return 0


def _resolve_scenarios(args: argparse.Namespace) -> List[str]:
    from repro.scenarios import (
        load_scenario_file,
        register_scenario,
        scenario_names,
    )

    for path in args.file:
        try:
            specs = load_scenario_file(path)
        except (OSError, TypeError, ValueError, RuntimeError) as error:
            raise SystemExit(f"failed to load scenario file {path}: {error}") from None
        for spec in specs:
            try:
                register_scenario(spec)
            except ValueError as error:
                raise SystemExit(
                    f"cannot register scenario from {path}: {error}"
                ) from None
    if args.all:
        return scenario_names()
    if not args.scenarios:
        raise SystemExit(
            "no scenarios given; name at least one "
            "(see 'python -m repro scenarios list') or pass --all"
        )
    known = set(scenario_names())
    unknown = [name for name in args.scenarios if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s): {', '.join(unknown)}; "
            f"registered: {', '.join(scenario_names())}"
        )
    return list(args.scenarios)


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.exec.shard import FULL, ShardSpec
    from repro.scenarios import ScenarioRunner, get_scenario

    names = _resolve_scenarios(args)
    if args.elastic and args.shard:
        raise SystemExit(
            "--elastic and --shard are mutually exclusive: elastic leases "
            "replace the static split"
        )
    shard = ShardSpec.parse(args.shard) if args.shard else FULL
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    policy = _resilience_from_args(args)
    if policy.chaos is not None:
        policy.chaos.apply_disk(out_dir)
    elastic = None
    if args.elastic:
        try:
            elastic = ElasticPolicy(
                lease_ttl=args.lease_ttl, chunk_size=args.chunk_size
            )
        except ValueError as error:
            raise SystemExit(f"--elastic: {error}") from None
        from repro.exec.elastic import default_worker_id
        from repro.store import open_worker_cache

        worker_id = args.worker_id or default_worker_id()
        cache = open_worker_cache(out_dir, worker_id)
    else:
        worker_id = args.worker_id
        cache = open_shard_cache(out_dir, shard)
    git_sha = git_revision()
    pending = 0

    with ScenarioRunner(
        scale=args.scale,
        workers=args.workers,
        engine=args.engine,
        cache=cache,
        shard=shard,
        resilience=policy,
        elastic=elastic,
        workdir=out_dir if elastic is not None else None,
        worker_id=worker_id,
    ) as runner:
        for name in names:
            scenario = get_scenario(name)
            config = runner.config_for(scenario)
            coordinate = (
                f"worker {runner.worker_id}" if elastic else f"shard {shard}"
            )
            print(
                f"[{name}] {scenario.title or name} "
                f"(scale {config.scale_name}, {coordinate})..."
            )
            result = runner.run(scenario)
            if result.sharded_out:
                if elastic is not None:
                    print(
                        f"[{name}] adaptive scenario leased by another "
                        "elastic worker; skipped"
                    )
                else:
                    print(
                        f"[{name}] adaptive scenario owned by another shard; "
                        "skipped"
                    )
                continue
            if not result.complete:
                pending += 1
                positions = ", ".join(str(p) for p in result.missing_positions[:8])
                if len(result.missing_positions) > 8:
                    positions += f", … ({len(result.missing_positions) - 8} more)"
                if elastic is not None:
                    print(
                        f"[{name}] elastic pass done in "
                        f"{result.wall_seconds:.2f} s "
                        f"({result.executor_tasks} pipeline runs); "
                        f"{result.missing} variant(s) unresolved"
                        + (f": position(s) {positions}" if positions else "")
                        + f" — {len(result.unclaimed_positions)} never "
                        f"claimed, {len(result.lost_positions)} leased "
                        "but lost"
                    )
                    print(
                        f"[{name}]   resume with: python -m repro scenarios "
                        f"run {name} --elastic --out {args.out}"
                    )
                    continue
                owners = ", ".join(
                    f"{index}/{shard.count}" for index in result.missing_shards
                )
                print(
                    f"[{name}] shard slice done in {result.wall_seconds:.2f} s "
                    f"({result.executor_tasks} pipeline runs); waiting on "
                    f"{result.missing} variant(s) from other shards"
                    + (f": position(s) {positions}, owned by shard(s) {owners}" if owners else "")
                )
                for index in result.missing_shards:
                    print(
                        f"[{name}]   resume with: python -m repro scenarios run "
                        f"{name} --shard {index}/{shard.count} --out {args.out}"
                    )
                print(f"[{name}]   then re-run this command to merge")
                continue
            paths = save_scenario_result(
                scenario, result, out_dir, config=config, git_sha=git_sha
            )
            if not args.quiet:
                print(result.render())
            print(
                f"[{name}] done in {result.wall_seconds:.2f} s "
                f"({result.executor_tasks} pipeline runs, "
                f"{result.executor_cache_hits} cache hits) -> {paths.json_path}"
            )
    if pending:
        if args.elastic:
            print(
                f"{pending} scenario(s) await results from elastic peers; "
                "re-run to resume"
            )
        else:
            print(f"{pending} scenario(s) await results from other shards")
    return 0


def _cmd_scenarios_clean(args: argparse.Namespace) -> int:
    """Sweep stale elastic leases, markers and heartbeats (dry-run default)."""
    from repro.exec.elastic import sweep_stale_artifacts

    workdir = Path(args.workdir)
    if not workdir.is_dir():
        print(f"{workdir} is not a directory", file=sys.stderr)
        return 1
    entries = sweep_stale_artifacts(
        workdir, lease_ttl=args.lease_ttl, apply=args.apply, stream=sys.stdout
    )
    if not entries:
        print(f"nothing stale under {workdir}")
    elif not args.apply:
        print(
            f"{len(entries)} stale file(s) found; re-run with --apply to "
            "delete them"
        )
    else:
        print(f"removed {len(entries)} stale file(s)")
    return 0


def _cmd_scenarios_report(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"{results_dir} is not a directory", file=sys.stderr)
        return 1
    rows = []
    failures: List[str] = []
    details: List[str] = []
    for json_path in sorted(results_dir.glob("scenario-*.json")):
        kind = classify_artifact_json(json_path)
        if kind in _BROKEN_JSON:
            failures.append(f"{json_path.name}: {_BROKEN_JSON[kind]}")
            continue
        if kind != "scenario":
            continue
        try:
            stored = load_scenario_result(json_path)
        except (OSError, ValueError) as error:
            failures.append(f"{json_path.name}: {error}")
            continue
        document = stored.document
        metrics = stored.metrics
        provenance = stored.provenance
        if document.get("strategy") == "bisect":
            if metrics.get("collapse_found"):
                headline = f"collapse at {metrics.get('collapse_value'):g}"
            else:
                headline = "no collapse"
            headline += f" ({int(metrics.get('n_probes', 0))} probes)"
        else:
            headline = (
                f"worst degradation "
                f"{metrics.get('worst_relative_degradation', 0.0):+.1%}"
            )
        rows.append(
            [
                stored.scenario,
                document.get("strategy", "grid"),
                provenance.get("scale", "?"),
                f"{metrics.get('baseline_accuracy', float('nan')):.4f}",
                headline,
                format_recovered_faults(provenance),
            ]
        )
        for table in document.get("tables", []):
            details.append(
                format_table(table["headers"], table["rows"], title=table["title"])
            )
    if not rows and not failures:
        print(f"no scenario artifacts found in {results_dir}", file=sys.stderr)
        return 1
    if rows:
        print(
            format_table(
                [
                    "scenario",
                    "strategy",
                    "scale",
                    "baseline",
                    "headline",
                    "recovered faults",
                ],
                rows,
                title=f"Scenario campaign summary ({len(rows)} artifacts)",
            )
        )
        for detail in details:
            print()
            print(detail)
    if failures:
        print(f"{len(failures)} artifact(s) failed to load:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "snapshot":
        if args.snapshot_command == "export":
            return _cmd_snapshot_export(args)
        return _cmd_snapshot_info(args)
    if args.command == "scenarios":
        if args.scenario_command == "list":
            return _cmd_scenarios_list(args)
        if args.scenario_command == "run":
            return _cmd_scenarios_run(args)
        if args.scenario_command == "clean":
            return _cmd_scenarios_clean(args)
        return _cmd_scenarios_report(args)
    return _cmd_report(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Ctrl-C and SIGTERM shut campaigns down gracefully: pending executor
    work is cancelled on unwind, every completed result is already in the
    persistent cache (re-running resumes from it), and the process exits
    with the conventional ``128 + signal`` code instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    previous = _install_sigterm_handler()
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        print(
            "interrupted — completed results are in the cache; "
            "re-run the same command to resume",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except _TerminationRequested:
        print(
            "terminated — completed results are in the cache; "
            "re-run the same command to resume",
            file=sys.stderr,
        )
        return EXIT_TERMINATED
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
