"""Behavioural models of the SNN input current drivers.

:class:`CurrentDriverModel` captures the VDD dependence of the unprotected
current-mirror driver (paper Fig. 5a/5b): the programming current is
``(VDD - V_GS) / R1`` with ``V_GS`` weakly dependent on the current itself,
so the spike amplitude moves super-linearly with the supply.

:class:`RobustDriverModel` captures the regulated driver defense
(paper Fig. 9b): the amplitude is ``V_ref / R1`` and only the residual
reference drift couples VDD into the output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analog.mosfet import MOSFETParameters, NMOS_65NM
from repro.utils.validation import check_positive


@dataclass
class CurrentDriverModel:
    """Closed-form model of the resistor-programmed current-mirror driver.

    Parameters
    ----------
    reference_resistance:
        The programming resistor ``R1``.
    mirror_aspect_ratio:
        W/L of the mirror transistors.
    nominal_vdd:
        Supply at which the nominal amplitude is defined.
    mosfet:
        Transistor parameters of the mirror devices.
    """

    reference_resistance: float = 2.79e6
    mirror_aspect_ratio: float = 1e-6 / 260e-9
    nominal_vdd: float = 1.0
    mosfet: MOSFETParameters = NMOS_65NM

    def __post_init__(self) -> None:
        check_positive(self.reference_resistance, "reference_resistance")
        check_positive(self.mirror_aspect_ratio, "mirror_aspect_ratio")
        check_positive(self.nominal_vdd, "nominal_vdd")

    # ------------------------------------------------------------------ model
    def _gate_source_voltage(self, current: float) -> float:
        """V_GS of the diode-connected mirror device at ``current``."""
        beta = self.mosfet.kp * self.mirror_aspect_ratio
        overdrive = np.sqrt(max(2.0 * current / beta, 0.0))
        return self.mosfet.vth0 + overdrive

    def amplitude(self, vdd: float) -> float:
        """Output spike amplitude (amperes) at supply ``vdd``.

        Solves ``I = (VDD - V_GS(I)) / R1`` by fixed-point iteration; the
        dependence of ``V_GS`` on ``I`` is weak, so a handful of iterations
        converge to machine precision.
        """
        check_positive(vdd, "vdd")
        current = max((vdd - self.mosfet.vth0) / self.reference_resistance, 1e-12)
        for _ in range(60):
            vgs = self._gate_source_voltage(current)
            updated = max((vdd - vgs) / self.reference_resistance, 0.0)
            if abs(updated - current) <= 1e-15 + 1e-9 * current:
                current = updated
                break
            current = updated
        return current

    @property
    def nominal_amplitude(self) -> float:
        """Amplitude at the nominal supply."""
        return self.amplitude(self.nominal_vdd)

    def amplitude_scale(self, vdd: float) -> float:
        """Amplitude at ``vdd`` relative to the nominal amplitude.

        This is the quantity the attacks apply as a multiplicative corruption
        of the per-spike membrane charge (``theta`` in the Diehl&Cook SNN).
        """
        return self.amplitude(vdd) / self.nominal_amplitude

    def amplitude_vs_vdd(self, vdd_values) -> np.ndarray:
        """Vectorised :meth:`amplitude` (paper Fig. 5b series)."""
        return np.array([self.amplitude(float(v)) for v in vdd_values])


@dataclass
class RobustDriverModel:
    """Behavioural model of the op-amp regulated driver defense.

    The output is ``V_ref / R1``; VDD enters only through the residual
    fractional drift of the reference per ±20 % of supply change
    (``reference_sensitivity``) and through dropout when the supply falls
    below the headroom limit.
    """

    reference_voltage: float = 0.52
    programming_resistance: float = 2.6e6
    nominal_vdd: float = 1.0
    #: Fractional output change for a ±20 % VDD excursion.
    reference_sensitivity: float = 0.002
    #: Minimum supply for the regulation loop to have headroom.
    dropout_supply: float = 0.65

    def __post_init__(self) -> None:
        check_positive(self.reference_voltage, "reference_voltage")
        check_positive(self.programming_resistance, "programming_resistance")
        check_positive(self.nominal_vdd, "nominal_vdd")
        check_positive(self.dropout_supply, "dropout_supply")

    @property
    def nominal_amplitude(self) -> float:
        """Regulated output amplitude."""
        return self.reference_voltage / self.programming_resistance

    def amplitude(self, vdd: float) -> float:
        """Output amplitude at supply ``vdd``."""
        check_positive(vdd, "vdd")
        if vdd < self.dropout_supply:
            # Below dropout the loop loses headroom and the output collapses
            # with the supply, like the unprotected driver would.
            return self.nominal_amplitude * vdd / self.dropout_supply
        fractional_vdd = (vdd - self.nominal_vdd) / self.nominal_vdd
        drift = self.reference_sensitivity * (fractional_vdd / 0.2)
        return self.nominal_amplitude * (1.0 + drift)

    def amplitude_scale(self, vdd: float) -> float:
        """Amplitude relative to nominal (≈1 across the attack range)."""
        return self.amplitude(vdd) / self.nominal_amplitude

    def amplitude_vs_vdd(self, vdd_values) -> np.ndarray:
        """Vectorised :meth:`amplitude`."""
        return np.array([self.amplitude(float(v)) for v in vdd_values])
