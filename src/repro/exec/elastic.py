"""Coordinator-free work-stealing execution over a shared filesystem.

Static sharding (:mod:`repro.exec.shard`) splits a campaign up front, so a
dead or slow shard stalls the merge until a human re-runs it.  This module
removes the static assignment: N independently-launched ``repro`` processes
(different hosts sharing a filesystem, or CI matrix jobs) cooperatively
drain one campaign, joining and leaving at any time, and the merged
artifact stays bit-identical to a single-process run.

There is **no coordinator**.  The only shared state is the campaign
workdir:

* **Result substrate** — each worker persists results to its own
  content-keyed cache file (``cache.elastic-<worker>.json``, see
  :func:`repro.store.open_worker_cache`) and preloads every sibling cache.
  The merge is a cache union, exactly like static sharding.
* **Lease files** — workers claim *chunks* of the variant list through
  atomic lease files under ``<workdir>/leases/<scenario>/``.  A lease
  carries the owner id, attempt count and heartbeat timestamp; claiming is
  an exclusive create (``os.link`` of a temp file, which fails if the
  lease exists), renewal is ``tmp + os.replace`` — the same atomic-write
  discipline the store uses.
* **Done markers** — a worker that finishes a chunk creates
  ``<chunk>.done`` exclusively.  First creation wins; a duplicate run of
  the same chunk that loses the race simply discards nothing (its results
  are bit-identical by the determinism contract).

**Correctness never depends on lease exclusivity.**  Every pipeline result
is a pure function of ``(config seed, attack label)`` and the caches are
content-keyed, so two workers computing the same chunk produce the same
bits and the union is unaffected.  Leases only prevent *wasted* work; any
race (two claims in the steal window, a revived worker finishing a chunk
that was stolen from it) costs time, never changes numbers.

Lease **expiry is judged by file mtime** on the shared filesystem, not by
wall-clock timestamps embedded in the lease, so workers on hosts with
skewed clocks agree on staleness as long as they see the same filesystem.
A worker that stops heartbeating (crash, SIGKILL, host death) stops
renewing its lease; once the lease's mtime age exceeds ``lease_ttl`` any
peer *steals* it — re-dispatch budgeted by ``max_attempts``, mirroring
:class:`~repro.exec.resilience.RetryPolicy`.  Live-but-slow owners are
handled by straggler duplication: a chunk leased far past
``straggler_after`` gets one duplicate evaluation with first-result-wins
arbitration through the done marker.

Adaptive (bisect) scenarios cannot split their probe sequence, so they are
whole-leased: a single ``whole`` chunk claimed by one worker at a time
(:func:`whole_chunk`), with the same expiry/steal recovery.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import socket
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.chaos import FaultPlan
from repro.exec.executor import ExecutionStats

#: Default lease time-to-live (seconds of missing heartbeats before peers
#: may steal); the CLI exposes it as ``--lease-ttl``.
DEFAULT_LEASE_TTL = 15.0

#: Default variants per chunk (the work-stealing granularity of grid
#: scenarios); the CLI exposes it as ``--chunk-size``.
DEFAULT_CHUNK_SIZE = 4


class LeaseCorruptionError(ValueError):
    """A lease file exists but does not parse as a lease document."""


def _safe_name(name: str) -> str:
    """``name`` reduced to a filesystem-safe component (never empty)."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]", "_", str(name))
    return cleaned or "unnamed"


def default_worker_id() -> str:
    """A worker id unique per process: ``<hostname>-<pid>``."""
    return _safe_name(f"{socket.gethostname()}-{os.getpid()}")


@dataclass(frozen=True)
class ElasticPolicy:
    """Tuning of one elastic worker (all workers should share one policy).

    Parameters
    ----------
    lease_ttl:
        Seconds a lease may go without renewal before peers treat its
        owner as dead and steal the chunk.  Judged by lease-file *mtime*
        age, so it is immune to clock skew between hosts.
    heartbeat_interval:
        Seconds between lease renewals and worker-presence touches
        (``0.0`` → ``lease_ttl / 4``).  Must stay well under ``lease_ttl``
        or healthy workers get robbed.
    chunk_size:
        Variants per lease for grid scenarios — the work-stealing
        granularity.  Smaller chunks steal finer but cost more lease
        traffic.
    max_attempts:
        Total dispatch budget per chunk (first claim plus steals),
        mirroring :class:`~repro.exec.resilience.RetryPolicy.max_retries`.
        A chunk whose expired lease already burned the budget is reported
        as *lost* instead of stolen again.
    poll_interval:
        Sleep between scheduler scans when nothing is claimable.
    straggler_after:
        Age (seconds since a lease was first created) past which a chunk
        held by a *live* peer gets one duplicate evaluation
        (``0.0`` → ``4 * lease_ttl``).  First result wins via the done
        marker.
    startup_sweep_age:
        Leases older than this are deleted on scheduler startup —
        campaign-scale hygiene only, far above ``lease_ttl`` so attempt
        accounting of live steals is never defeated.
    drain_timeout:
        Optional wall-clock bound on one :meth:`ElasticScheduler.drain`
        call; ``None`` waits until every chunk is done or lost.
    """

    lease_ttl: float = DEFAULT_LEASE_TTL
    heartbeat_interval: float = 0.0
    chunk_size: int = DEFAULT_CHUNK_SIZE
    max_attempts: int = 4
    poll_interval: float = 0.25
    straggler_after: float = 0.0
    startup_sweep_age: float = 600.0
    drain_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {self.lease_ttl}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.heartbeat_interval < 0:
            raise ValueError(
                f"heartbeat_interval must be >= 0, got {self.heartbeat_interval}"
            )

    @property
    def effective_heartbeat(self) -> float:
        """The renewal period actually used (default: a quarter of the TTL)."""
        return self.heartbeat_interval or self.lease_ttl / 4.0

    @property
    def effective_straggler_after(self) -> float:
        """The duplication age actually used (default: four TTLs)."""
        return self.straggler_after or 4.0 * self.lease_ttl


@dataclass(frozen=True)
class Lease:
    """The content of one lease file (expiry is judged by file mtime)."""

    owner: str
    chunk: str
    attempt: int
    created_unix: float
    heartbeat_unix: float

    def to_dict(self) -> Dict:
        """JSON-ready dict form (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "Lease":
        """Build a lease from its :meth:`to_dict` form (strict)."""
        if not isinstance(payload, dict):
            raise LeaseCorruptionError("lease document is not a JSON object")
        try:
            return cls(
                owner=str(payload["owner"]),
                chunk=str(payload["chunk"]),
                attempt=int(payload["attempt"]),
                created_unix=float(payload["created_unix"]),
                heartbeat_unix=float(payload["heartbeat_unix"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise LeaseCorruptionError(f"invalid lease fields: {error}") from None


@dataclass(frozen=True)
class Chunk:
    """One leasable unit of work: a contiguous slice of variant positions."""

    id: str
    positions: Tuple[int, ...]


def build_chunks(total: int, chunk_size: int) -> List[Chunk]:
    """Split ``total`` variant positions into contiguous fixed-size chunks.

    Contiguous (unlike the interleaved static shard split) because chunks
    are claimed dynamically: load balance comes from stealing, not from
    the assignment, and contiguous slices keep chunk ids stable under a
    growing variant list prefix.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        Chunk(
            id=f"chunk-{start // chunk_size:04d}",
            positions=tuple(range(start, min(start + chunk_size, total))),
        )
        for start in range(0, total, chunk_size)
    ]


def whole_chunk(total: int = 0) -> Chunk:
    """The single all-positions chunk used to whole-lease bisect scenarios."""
    return Chunk(id="whole", positions=tuple(range(total)))


def _write_json_atomic(path: Path, payload: Dict) -> None:
    """``tmp + os.replace`` write (readers never see a torn lease)."""
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def _create_exclusive(path: Path, payload: Dict) -> bool:
    """Atomically create ``path`` with ``payload`` iff it does not exist.

    Written as a temp file first, then ``os.link``-ed into place:
    ``os.link`` fails with :class:`FileExistsError` when the target
    exists, which is the atomic claim primitive (NFS-safe, unlike
    ``O_EXCL`` on some legacy servers).  Returns ``False`` when another
    process won the race.
    """
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    try:
        os.link(tmp, path)
        return True
    except FileExistsError:
        return False
    finally:
        tmp.unlink(missing_ok=True)


class LeaseBoard:
    """The lease files of one scenario's campaign, under one directory.

    All methods are safe to call concurrently from independent processes;
    every mutation is a single atomic filesystem operation (exclusive
    link, replace, or unlink), and every race resolves to at most one
    winner — with losers falling back to duplicate-but-harmless work.
    """

    def __init__(self, directory: Path | str, *, lease_ttl: float) -> None:
        self.directory = Path(directory)
        self.lease_ttl = float(lease_ttl)
        self.directory.mkdir(parents=True, exist_ok=True)

    def lease_path(self, chunk_id: str) -> Path:
        """Where ``chunk_id``'s lease file lives."""
        return self.directory / f"{_safe_name(chunk_id)}.lease"

    def done_path(self, chunk_id: str) -> Path:
        """Where ``chunk_id``'s first-result-wins done marker lives."""
        return self.directory / f"{_safe_name(chunk_id)}.done"

    # ------------------------------------------------------------------ state
    def read(self, chunk_id: str) -> Optional[Lease]:
        """The current lease of ``chunk_id`` (``None`` when unclaimed).

        Raises :class:`LeaseCorruptionError` when the file exists but does
        not parse — the scheduler quarantines it and reclaims the chunk.
        """
        path = self.lease_path(chunk_id)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            raise LeaseCorruptionError(f"cannot read lease: {error}") from None
        try:
            return Lease.from_dict(json.loads(text))
        except ValueError as error:
            raise LeaseCorruptionError(f"not a lease document: {error}") from None

    def state(self, chunk_id: str) -> Tuple[str, Optional[Lease]]:
        """One chunk's lifecycle state: what a scheduler scan sees.

        Returns ``(kind, lease)`` with kind one of ``"done"`` (marker
        exists), ``"open"`` (no lease), ``"held"`` (fresh lease),
        ``"expired"`` (lease mtime older than the TTL) or ``"corrupt"``
        (unparseable lease file).
        """
        if self.done_path(chunk_id).exists():
            return "done", None
        path = self.lease_path(chunk_id)
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            return "open", None
        try:
            lease = self.read(chunk_id)
        except LeaseCorruptionError:
            return "corrupt", None
        if lease is None:
            return "open", None
        if time.time() - mtime > self.lease_ttl:
            return "expired", lease
        return "held", lease

    # ------------------------------------------------------------------ claims
    def claim(self, chunk_id: str, owner: str, *, attempt: int = 0) -> Optional[Lease]:
        """Claim an unleased chunk exclusively; ``None`` when a peer won."""
        now = time.time()
        lease = Lease(
            owner=owner,
            chunk=chunk_id,
            attempt=attempt,
            created_unix=now,
            heartbeat_unix=now,
        )
        if _create_exclusive(self.lease_path(chunk_id), lease.to_dict()):
            return lease
        return None

    def steal(self, chunk_id: str, owner: str, expired: Lease) -> Optional[Lease]:
        """Take over an expired lease: unlink it, then claim with attempt+1.

        Both losing outcomes are benign: a vanished file means another
        peer stole first, and a failed re-claim means the unlink raced a
        concurrent steal.  The worst interleaving (unlinking a lease that
        a peer just refreshed in the steal window) only duplicates work,
        which the determinism contract makes harmless.
        """
        try:
            os.unlink(self.lease_path(chunk_id))
        except FileNotFoundError:
            return None
        return self.claim(chunk_id, owner, attempt=expired.attempt + 1)

    def reclaim_corrupt(self, chunk_id: str, owner: str) -> Optional[Lease]:
        """Quarantine an unparseable lease file aside, then claim the chunk.

        The prior attempt count is unreadable, so the reclaim conservatively
        charges one attempt to the budget (``attempt=1``).
        """
        from repro.store import quarantine_path

        path = self.lease_path(chunk_id)
        try:
            os.replace(path, quarantine_path(path))
        except FileNotFoundError:
            pass
        return self.claim(chunk_id, owner, attempt=1)

    def renew(self, lease: Lease) -> Lease:
        """Refresh a held lease's heartbeat (and, crucially, its mtime)."""
        renewed = dataclasses.replace(lease, heartbeat_unix=time.time())
        _write_json_atomic(self.lease_path(lease.chunk), renewed.to_dict())
        return renewed

    def complete(self, chunk_id: str, owner: str) -> bool:
        """Record a finished chunk; returns whether this worker's result won.

        Creates the done marker exclusively (first-result-wins among
        duplicates — a losing result is bit-identical anyway), then drops
        the lease file so scans stop tracking it.
        """
        won = _create_exclusive(
            self.done_path(chunk_id),
            {"owner": owner, "finished_unix": time.time()},
        )
        self.lease_path(chunk_id).unlink(missing_ok=True)
        return won


class ElasticScheduler:
    """One worker's view of a cooperative campaign drain.

    Each participating process builds its own scheduler over the shared
    ``workdir`` and calls :meth:`drain` with the same chunk list (derived
    deterministically from the scenario spec, so all workers agree on it
    without communicating).  The loop: claim the lowest unclaimed chunk,
    else steal the lowest expired one within budget, else duplicate a
    straggling chunk, else wait — until every chunk is done or lost.

    Counters land in the supplied :class:`ExecutionStats` (``leases_*``,
    ``duplicate_wins``, ``peers_*``) and flow into provenance and
    ``repro report`` like the resilience counters do.
    """

    def __init__(
        self,
        workdir: Path | str,
        scenario: str,
        *,
        policy: Optional[ElasticPolicy] = None,
        owner: Optional[str] = None,
        stats: Optional[ExecutionStats] = None,
        chaos: Optional[FaultPlan] = None,
    ) -> None:
        self.workdir = Path(workdir)
        self.scenario = scenario
        self.policy = policy if policy is not None else ElasticPolicy()
        self.owner = _safe_name(owner) if owner else default_worker_id()
        self.stats = stats if stats is not None else ExecutionStats()
        self.chaos = chaos
        self.board = LeaseBoard(
            self.workdir / "leases" / _safe_name(scenario),
            lease_ttl=self.policy.lease_ttl,
        )
        self._workers_dir = self.workdir / "workers"
        self._current: Optional[Lease] = None
        self._last_beat = 0.0
        self._peers_fresh: Dict[str, bool] = {}
        self._expired_seen: set = set()
        #: Ancient leases removed by the startup hygiene sweep.
        self.swept_at_startup = sweep_expired_leases(
            self.workdir / "leases", older_than=self.policy.startup_sweep_age
        )
        if self.chaos is not None:
            # Lease-corruption faults model damage that happened while no
            # process was alive: applied once, before the first scan.
            self.chaos.apply_leases(self.board.directory)
        self.heartbeat(force=True)

    # -------------------------------------------------------------- heartbeat
    def heartbeat(self, *, force: bool = False) -> None:
        """Refresh this worker's presence file and renew its held lease.

        Rate-limited to the policy's heartbeat interval, so it is safe
        (and intended) to call from tight loops — the resilient executor
        calls it around every task via its ``heartbeat`` hook.  Filesystem
        hiccups are swallowed: a missed renewal only risks a benign
        duplicate evaluation, never a wrong result.
        """
        now = time.monotonic()
        if not force and now - self._last_beat < self.policy.effective_heartbeat:
            return
        self._last_beat = now
        try:
            self._workers_dir.mkdir(parents=True, exist_ok=True)
            _write_json_atomic(
                self._workers_dir / f"{self.owner}.json",
                {"owner": self.owner, "heartbeat_unix": time.time()},
            )
            if self._current is not None:
                self._current = self.board.renew(self._current)
        except OSError:  # pragma: no cover - shared-FS hiccup
            pass

    def _account_peers(self) -> None:
        """Update joined/lost counters from the worker-presence directory."""
        try:
            entries = list(self._workers_dir.glob("*.json"))
        except OSError:  # pragma: no cover - shared-FS hiccup
            return
        presence_ttl = 2.0 * self.policy.lease_ttl
        now = time.time()
        for path in entries:
            peer = path.stem
            if peer == self.owner:  # a worker is not its own peer
                continue
            try:
                fresh = now - path.stat().st_mtime <= presence_ttl
            except OSError:
                continue
            known = self._peers_fresh.get(peer)
            if known is None:
                self._peers_fresh[peer] = fresh
                if fresh:
                    self.stats.peers_joined += 1
            elif known and not fresh:
                self._peers_fresh[peer] = False
                self.stats.peers_lost += 1
            elif not known and fresh:
                self._peers_fresh[peer] = True
                self.stats.peers_joined += 1

    # ------------------------------------------------------------------ scans
    def scan(self, chunks: Sequence[Chunk]) -> Dict[str, Tuple[str, Optional[Lease]]]:
        """The lifecycle state of every chunk, in one pass."""
        states = {chunk.id: self.board.state(chunk.id) for chunk in chunks}
        for chunk_id, (kind, lease) in states.items():
            if kind == "expired" and lease is not None:
                token = (chunk_id, lease.attempt)
                if token not in self._expired_seen:
                    self._expired_seen.add(token)
                    self.stats.leases_expired += 1
        return states

    def _within_budget(self, lease: Lease) -> bool:
        return lease.attempt + 1 < self.policy.max_attempts

    def _claim_next(
        self, chunks: Sequence[Chunk], states: Dict[str, Tuple[str, Optional[Lease]]]
    ) -> Optional[Tuple[Chunk, Lease]]:
        """Claim the best available chunk: open first, then expired, then corrupt."""
        for chunk in chunks:
            kind, _ = states[chunk.id]
            if kind != "open":
                continue
            lease = self.board.claim(chunk.id, self.owner)
            if lease is not None:
                self.stats.leases_claimed += 1
                return chunk, lease
        for chunk in chunks:
            kind, expired = states[chunk.id]
            if kind == "expired" and expired is not None and self._within_budget(expired):
                lease = self.board.steal(chunk.id, self.owner, expired)
                if lease is not None:
                    self.stats.leases_claimed += 1
                    self.stats.leases_stolen += 1
                    return chunk, lease
            elif kind == "corrupt":
                lease = self.board.reclaim_corrupt(chunk.id, self.owner)
                if lease is not None:
                    self.stats.leases_claimed += 1
                    return chunk, lease
        return None

    def _straggler_target(
        self,
        chunks: Sequence[Chunk],
        states: Dict[str, Tuple[str, Optional[Lease]]],
        duplicated: set,
    ) -> Optional[Chunk]:
        """A held chunk old enough to deserve one duplicate evaluation."""
        threshold = self.policy.effective_straggler_after
        now = time.time()
        for chunk in chunks:
            kind, lease = states[chunk.id]
            if kind != "held" or lease is None or chunk.id in duplicated:
                continue
            if lease.owner == self.owner:
                continue
            if now - lease.created_unix > threshold:
                return chunk
        return None

    # ------------------------------------------------------------------ drain
    def _run_claimed(
        self, chunk: Chunk, lease: Lease, run_chunk: Callable[[Chunk], None]
    ) -> None:
        """Run one claimed chunk; the lease is renewed by heartbeat calls.

        Chaos process faults fire *after* the claim, so an injected
        SIGKILL leaves exactly the stale lease a real crash would.  On a
        task failure the lease is left to expire (peers steal it with the
        attempt budget intact) and the error propagates — completed
        sibling chunks stay merged.
        """
        self._current = lease
        try:
            if self.chaos is not None:
                self.chaos.apply_elastic(f"{self.owner}:{chunk.id}", lease.attempt)
            run_chunk(chunk)
        finally:
            self._current = None
        self.board.complete(chunk.id, self.owner)

    def _run_duplicate(self, chunk: Chunk, run_chunk: Callable[[Chunk], None]) -> None:
        """Duplicate a straggling chunk without holding its lease."""
        run_chunk(chunk)
        if self.board.complete(chunk.id, self.owner):
            self.stats.duplicate_wins += 1

    def drain(
        self, chunks: Sequence[Chunk], run_chunk: Callable[[Chunk], None]
    ) -> Dict[str, str]:
        """Cooperatively drain ``chunks``, returning the final state map.

        ``run_chunk`` evaluates one chunk's variants (typically an
        ``executor.map`` call whose results land in this worker's
        persistent cache).  Returns ``{chunk_id: kind}`` where every kind
        is ``"done"`` on success; ``"open"`` / ``"expired"`` survivors mean
        unclaimed or lost work (rendered by the merge report).

        Termination: a dead owner's lease expires and is stolen, a live
        slow owner is eventually duplicated, and the steal budget bounds
        re-dispatch — so the loop always ends with chunks done or lost.
        """
        deadline = (
            None
            if self.policy.drain_timeout is None
            else time.monotonic() + self.policy.drain_timeout
        )
        duplicated: set = set()
        while True:
            self.heartbeat()
            self._account_peers()
            states = self.scan(chunks)
            kinds = {chunk_id: kind for chunk_id, (kind, _) in states.items()}
            if all(kind == "done" for kind in kinds.values()):
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            claimed = self._claim_next(chunks, states)
            if claimed is not None:
                self._run_claimed(claimed[0], claimed[1], run_chunk)
                continue
            held = [c for c in chunks if kinds[c.id] == "held"]
            if held:
                target = self._straggler_target(chunks, states, duplicated)
                if target is not None:
                    duplicated.add(target.id)
                    self._run_duplicate(target, run_chunk)
                    continue
                time.sleep(self.policy.poll_interval)
                continue
            recoverable = any(
                kind == "open"
                or (kind == "expired" and lease is not None and self._within_budget(lease))
                or kind == "corrupt"
                for kind, lease in states.values()
            )
            if not recoverable:
                # Everything not done is past its dispatch budget: lost.
                break
            time.sleep(self.policy.poll_interval)
        return {chunk_id: kind for chunk_id, (kind, _) in self.scan(chunks).items()}

    def claim_whole(self, chunk: Chunk) -> Tuple[str, Optional[Lease]]:
        """Claim (or steal) a whole-leased chunk, without waiting.

        The bisect path: adaptive scenarios are one indivisible chunk, so
        a worker either owns the whole search or skips the scenario.
        Returns ``(outcome, lease)`` with outcome ``"claimed"`` (run it),
        ``"done"`` (assemble from caches), ``"busy"`` (a live peer owns
        it) or ``"lost"`` (expired past the dispatch budget).
        """
        kind, lease = self.board.state(chunk.id)
        if kind == "done":
            return "done", None
        if kind == "open":
            claimed = self.board.claim(chunk.id, self.owner)
            if claimed is not None:
                self.stats.leases_claimed += 1
                return "claimed", claimed
            return "busy", None
        if kind == "corrupt":
            claimed = self.board.reclaim_corrupt(chunk.id, self.owner)
            if claimed is not None:
                self.stats.leases_claimed += 1
                return "claimed", claimed
            return "busy", None
        if kind == "expired" and lease is not None:
            if not self._within_budget(lease):
                return "lost", lease
            claimed = self.board.steal(chunk.id, self.owner, lease)
            if claimed is not None:
                self.stats.leases_claimed += 1
                self.stats.leases_stolen += 1
                return "claimed", claimed
            return "busy", None
        return "busy", lease

    def categorize(
        self, chunks: Sequence[Chunk], kinds: Dict[str, str]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Map a final state map to ``(unclaimed, lost)`` variant positions.

        ``unclaimed`` positions were never leased (a worker can pick them
        up by just re-running); ``lost`` positions were leased but their
        owner died past recovery (expired over budget, or corrupt).
        """
        unclaimed: List[int] = []
        lost: List[int] = []
        for chunk in chunks:
            kind = kinds.get(chunk.id, "open")
            if kind == "done":
                continue
            if kind == "open":
                unclaimed.extend(chunk.positions)
            else:
                lost.extend(chunk.positions)
        return tuple(sorted(unclaimed)), tuple(sorted(lost))


# --------------------------------------------------------------------------
# Stale-artifact hygiene (``repro scenarios clean`` + startup sweep).
# --------------------------------------------------------------------------


def sweep_expired_leases(lease_root: Path | str, *, older_than: float) -> int:
    """Delete lease files older than ``older_than`` seconds; returns the count.

    The scheduler runs this at startup with a *large* age bound
    (``startup_sweep_age``): it clears leases from long-dead campaigns
    without interfering with live expiry/steal accounting, which operates
    at ``lease_ttl`` granularity.
    """
    root = Path(lease_root)
    if not root.is_dir():
        return 0
    removed = 0
    now = time.time()
    for path in root.rglob("*.lease"):
        try:
            if now - path.stat().st_mtime > older_than:
                path.unlink()
                removed += 1
        except OSError:
            continue
    return removed


def find_stale_artifacts(
    workdir: Path | str, *, lease_ttl: float = DEFAULT_LEASE_TTL
) -> List[Tuple[Path, str]]:
    """Stale files under a campaign workdir, each with a removal reason.

    Covers the byproducts that accumulate across campaigns: quarantined
    corrupt cache/lease files, expired ``.lease`` files, stale
    worker-presence heartbeats, leftover done markers whose lease
    directory has no live leases, and orphaned atomic-write temp files.
    Pure inspection — deletion is the caller's decision (the CLI's
    ``scenarios clean`` is dry-run by default).
    """
    root = Path(workdir)
    found: List[Tuple[Path, str]] = []
    if not root.is_dir():
        return found
    now = time.time()
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue
        name = path.name
        if ".quarantined" in name:
            found.append((path, "quarantined corrupt file"))
        elif name.endswith(".lease"):
            if age > lease_ttl:
                found.append((path, f"expired lease (age {age:.0f}s)"))
        elif name.endswith(".done"):
            if age > max(lease_ttl, 3600.0):
                found.append((path, f"done marker of a finished campaign (age {age:.0f}s)"))
        elif name.endswith(".tmp"):
            if age > max(lease_ttl, 60.0):
                found.append((path, f"orphaned atomic-write temp file (age {age:.0f}s)"))
        elif path.parent.name == "workers" and name.endswith(".json"):
            if age > 2.0 * lease_ttl:
                found.append((path, f"stale worker heartbeat (age {age:.0f}s)"))
    return found


def sweep_stale_artifacts(
    workdir: Path | str,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    apply: bool = False,
    stream=None,
) -> List[Tuple[Path, str]]:
    """List (and with ``apply=True`` delete) stale campaign files.

    Prints one line per file to ``stream`` (default stdout); returns the
    entries so callers can count or test them.
    """
    stream = stream if stream is not None else sys.stdout
    entries = find_stale_artifacts(workdir, lease_ttl=lease_ttl)
    verb = "removed" if apply else "would remove"
    for path, reason in entries:
        if apply:
            Path(path).unlink(missing_ok=True)
        print(f"{verb} {path} ({reason})", file=stream)
    return entries
