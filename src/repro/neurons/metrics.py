"""Spike-timing metrics shared by the behavioural neuron models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def relative_change(value: float, reference: float) -> float:
    """Fractional change of ``value`` with respect to ``reference``.

    Positive means larger than the reference.  This is the quantity the
    paper's sensitivity figures report (e.g. "time-to-spike becomes faster by
    24.7 %" is a relative change of −0.247).
    """
    if reference == 0:
        raise ZeroDivisionError("reference value is zero; relative change undefined")
    return (value - reference) / reference


@dataclass
class SpikeMetrics:
    """Summary of a neuron's spiking behaviour for one stimulus condition.

    Attributes
    ----------
    time_to_first_spike:
        Seconds from stimulus onset to the first output spike
        (None if the neuron never fires).
    inter_spike_interval:
        Steady-state period between output spikes (None if fewer than two
        spikes occur).
    spike_times:
        All spike times within the evaluated window.
    """

    time_to_first_spike: Optional[float]
    inter_spike_interval: Optional[float]
    spike_times: np.ndarray

    @property
    def spike_count(self) -> int:
        """Number of spikes in the evaluated window."""
        return int(len(self.spike_times))

    @property
    def spike_rate(self) -> float:
        """Steady-state firing rate in Hz (0 if the neuron never cycles)."""
        if self.inter_spike_interval is None or self.inter_spike_interval <= 0:
            return 0.0
        return 1.0 / self.inter_spike_interval

    @classmethod
    def from_spike_times(cls, spike_times: Sequence[float]) -> "SpikeMetrics":
        """Build metrics from a list of spike times."""
        times = np.asarray(spike_times, dtype=float)
        first = float(times[0]) if len(times) else None
        isi = float(np.mean(np.diff(times))) if len(times) >= 2 else None
        return cls(time_to_first_spike=first, inter_spike_interval=isi, spike_times=times)

    def time_to_spike_change(self, baseline: "SpikeMetrics") -> float:
        """Relative change in time-to-first-spike versus a baseline condition."""
        if self.time_to_first_spike is None or baseline.time_to_first_spike is None:
            raise ValueError("both conditions must produce at least one spike")
        return relative_change(self.time_to_first_spike, baseline.time_to_first_spike)

    def rate_change(self, baseline: "SpikeMetrics") -> float:
        """Relative change in steady-state firing rate versus a baseline."""
        if baseline.spike_rate == 0:
            raise ZeroDivisionError("baseline firing rate is zero")
        return (self.spike_rate - baseline.spike_rate) / baseline.spike_rate
