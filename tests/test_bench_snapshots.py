"""Schema sanity of the committed benchmark snapshots.

The nightly workflow (``.github/workflows/bench.yml``) commits each
``pytest-benchmark`` run to ``benchmarks/snapshots/BENCH_<date>.json`` so
the repository carries its own performance trajectory.  A malformed
snapshot (truncated upload, hand-edited file, pytest-benchmark schema
drift) would silently poison every later trend analysis, so this suite
fails CI on one.
"""

import json
import re
from datetime import datetime
from pathlib import Path

import pytest

SNAPSHOT_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "snapshots"
SNAPSHOT_NAME = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})\.json$")

snapshots = sorted(SNAPSHOT_DIR.glob("BENCH_*.json"))


def test_trajectory_is_seeded():
    """At least one snapshot is committed (the perf trajectory is real)."""
    assert snapshots, f"no BENCH_*.json committed under {SNAPSHOT_DIR}"


@pytest.mark.parametrize("path", snapshots, ids=lambda p: p.name)
class TestSnapshotSchema:
    def test_filename_is_a_dated_snapshot(self, path):
        match = SNAPSHOT_NAME.match(path.name)
        assert match, f"{path.name} does not match BENCH_YYYY-MM-DD.json"
        datetime.strptime(match.group(1), "%Y-%m-%d")

    def test_payload_has_pytest_benchmark_shape(self, path):
        payload = json.loads(path.read_text())
        for key in ("benchmarks", "machine_info", "datetime", "version"):
            assert key in payload, f"{path.name} misses top-level key {key!r}"
        assert payload["benchmarks"], f"{path.name} records no benchmarks"

    def test_every_benchmark_entry_is_well_formed(self, path):
        payload = json.loads(path.read_text())
        for bench in payload["benchmarks"]:
            assert isinstance(bench.get("name"), str) and bench["name"]
            stats = bench.get("stats")
            assert isinstance(stats, dict), f"{bench['name']}: missing stats"
            for key in ("mean", "min", "max", "stddev", "rounds"):
                assert key in stats, f"{bench['name']}: stats misses {key!r}"
            assert stats["mean"] > 0.0
            assert 0.0 < stats["min"] <= stats["mean"] <= stats["max"]
            assert stats["rounds"] >= 1
            for key, value in bench.get("extra_info", {}).items():
                assert isinstance(value, (int, float, str, bool)), (
                    f"{bench['name']}: extra_info[{key!r}] is not a scalar"
                )

    def test_serving_hotpath_metrics_are_well_formed(self, path):
        """Snapshots from the serving era carry the latency/throughput schema.

        ``benchmarks/test_serving_hotpath.py`` (added 2026-08-07) reports
        p50/p99 per-example latency and examples/sec for single-example vs
        microbatched scoring, plus the measured speedup, in ``extra_info``.
        Snapshots dated on or after that day must include the entry; any
        snapshot carrying one must have a complete, consistent schema.
        """
        required = (
            "single_p50_ms",
            "single_p99_ms",
            "single_examples_per_sec",
            "micro_p50_ms",
            "micro_p99_ms",
            "micro_examples_per_sec",
            "serving_speedup",
            "example_chunk",
        )
        payload = json.loads(path.read_text())
        serving = [
            bench
            for bench in payload["benchmarks"]
            if "test_serving_hotpath" in bench.get("fullname", bench["name"])
        ]
        date = datetime.strptime(SNAPSHOT_NAME.match(path.name).group(1), "%Y-%m-%d")
        if date >= datetime(2026, 8, 7):
            assert serving, f"{path.name} misses the serving hot-path benchmark"
        for bench in serving:
            extra = bench.get("extra_info", {})
            for key in required:
                assert key in extra, f"{bench['name']}: extra_info misses {key!r}"
            assert extra["example_chunk"] >= 32
            assert extra["serving_speedup"] >= 3.0
            assert 0.0 < extra["single_p50_ms"] <= extra["single_p99_ms"]
            assert 0.0 < extra["micro_p50_ms"] <= extra["micro_p99_ms"]
            assert (
                extra["micro_examples_per_sec"] > extra["single_examples_per_sec"]
            )

    def test_snapshot_records_the_large_n_scaling_curve(self, path):
        """Every snapshot carries the sparse-tier crossbar series.

        The nightly run executes the whole ``benchmarks/`` suite, which
        includes ``TestSparseScaling`` — a snapshot without the crossbar
        series means the engine benchmarks silently stopped running.
        """
        payload = json.loads(path.read_text())
        names = [bench["name"] for bench in payload["benchmarks"]]
        assert any("test_crossbar_sparse" in name for name in names), (
            f"{path.name} misses the crossbar sparse scaling benchmarks"
        )
        assert any("test_crossbar_dense" in name for name in names), (
            f"{path.name} misses the crossbar dense baseline benchmarks"
        )
