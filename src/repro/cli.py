"""``python -m repro`` — list, run and report paper-figure reproductions.

Three subcommands:

``list``
    Show every registered figure with its tier and paper-claim count.
``run``
    Reproduce one or more figures (or ``--all``) at a chosen scale,
    fanning pipeline runs out over ``--workers`` processes, and persist
    schema-versioned JSON+NPZ artifacts (plus the executor's result cache)
    under ``--out``.  Re-running against the same ``--out`` resumes from
    the persistent cache: already-evaluated configurations are cache hits
    and the numbers are bit-identical.
``report``
    Render the artifacts in a results directory as comparison tables
    against the paper's published numbers.

Examples::

    python -m repro list
    python -m repro run fig8 --scale smoke --workers 4 --out results/
    python -m repro run --all --scale smoke --out results/
    python -m repro report results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.config import ExperimentConfig
from repro.core.reporting import (
    format_artifact_summary,
    format_execution_report,
    format_paper_comparison,
)
from repro.figures import FigureContext, figure_names, get_figure, iter_figures
from repro.store import (
    PersistentResultCache,
    git_revision,
    is_figure_artifact,
    load_figure_result,
    save_figure_result,
)
from repro.utils.tables import format_table

#: File name of the persistent executor cache inside a results directory.
CACHE_FILENAME = "cache.json"


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures with persistent artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered figure")

    run = sub.add_parser("run", help="reproduce figures and persist artifacts")
    run.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"figure names ({', '.join(figure_names())})",
    )
    run.add_argument("--all", action="store_true", help="run every registered figure")
    run.add_argument(
        "--scale",
        choices=sorted(ExperimentConfig.presets()),
        default=None,
        help="experiment scale preset (default: REPRO_SCALE or 'benchmark')",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for pipeline sweeps (0/1 = serial)",
    )
    run.add_argument(
        "--engine",
        choices=("auto", "batched", "scalar"),
        default="auto",
        help="SNN execution engine (results are engine-independent; "
        "'scalar' is the per-example reference, 'batched' the lockstep "
        "engine, 'auto' picks batched when available)",
    )
    run.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="artifact directory (default: results/)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the per-figure tables"
    )

    report = sub.add_parser("report", help="compare stored artifacts to the paper")
    report.add_argument("results_dir", metavar="DIR", help="artifact directory")
    return parser


def _cmd_list() -> int:
    rows = []
    for spec in iter_figures():
        tier = "pipeline" if spec.uses_pipeline else "circuit"
        rows.append(
            [spec.name, tier, ",".join(spec.tags), str(len(spec.claims)), spec.description]
        )
    print(
        format_table(
            ["figure", "tier", "tags", "claims", "description"],
            rows,
            title=f"Registered paper figures ({len(rows)})",
        )
    )
    return 0


def _resolve_figures(names: Sequence[str], run_all: bool) -> List[str]:
    if run_all:
        return figure_names()
    if not names:
        raise SystemExit(
            "no figures given; name at least one (see 'python -m repro list') "
            "or pass --all"
        )
    known = set(figure_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown figure(s): {', '.join(unknown)}; "
            f"registered: {', '.join(figure_names())}"
        )
    return list(names)


def _cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_figures(args.figures, args.all)
    if args.scale is not None:
        config = ExperimentConfig.from_scale(args.scale)
    else:
        config = ExperimentConfig.from_environment(default="benchmark")
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    cache = PersistentResultCache(out_dir / CACHE_FILENAME)
    git_sha = git_revision()

    with FigureContext(
        config, workers=args.workers, cache=cache, engine=args.engine
    ) as context:
        for name in names:
            spec = get_figure(name)
            print(f"[{name}] {spec.title} (scale {config.scale_name})...")
            result = spec.run(context)
            paths = save_figure_result(
                spec, result, out_dir, config=config, git_sha=git_sha
            )
            if not args.quiet:
                print(result.render())
            print(
                f"[{name}] done in {result.wall_seconds:.2f} s "
                f"({result.executor_tasks} pipeline runs, "
                f"{result.executor_cache_hits} cache hits) -> {paths.json_path}"
            )
        print()
        print(format_execution_report(context.executor.stats))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"{results_dir} is not a directory", file=sys.stderr)
        return 1
    documents = []
    for json_path in sorted(results_dir.glob("*.json")):
        if json_path.name == CACHE_FILENAME or not is_figure_artifact(json_path):
            continue
        documents.append(load_figure_result(json_path).document)
    if not documents:
        print(f"no figure artifacts found in {results_dir}", file=sys.stderr)
        return 1
    print(format_artifact_summary(documents))
    print()
    print(format_paper_comparison(documents))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_report(args)
