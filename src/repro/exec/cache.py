"""Keyed caching of sweep results.

Sweeps repeat configurations: every sweep needs the attack-free baseline,
2-D grids include a ``fraction == 0`` column that is the baseline in
disguise, and ablation studies revisit the same attack at several places.
The cache keys results on the *content* of the attack object so each unique
configuration is evaluated exactly once per campaign.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import weakref
from typing import Dict, Optional, Tuple

import numpy as np

#: Cache key used for the attack-free baseline run.
BASELINE_KEY = "baseline"


def attack_cache_key(attack) -> str:
    """A deterministic, content-based cache key for an attack configuration.

    ``None`` (and :class:`~repro.attacks.attacks.NoAttack`) map to
    :data:`BASELINE_KEY`.  Dataclass attacks are keyed on their class name
    plus every parameter field; cosmetic fields (``name``, ``description``)
    and the threat model are excluded.  Nested dataclasses (e.g. a custom
    calibrated parameter map) are keyed recursively by *content*, NumPy
    arrays by a digest of their bytes.  Anything else falls back to a
    monotonically issued identity token that is never reused even after the
    object is garbage collected — so the fallback can only cause cache
    *misses*, never wrong hits.
    """
    if attack is None:
        return BASELINE_KEY
    if type(attack).__name__ == "NoAttack":
        return BASELINE_KEY
    if not dataclasses.is_dataclass(attack):
        # Fall back to the display label for non-dataclass pipeline work.
        return f"{type(attack).__name__}:{attack.label()}"
    parts = [type(attack).__name__]
    for field in dataclasses.fields(attack):
        if field.name in ("name", "description", "threat_model"):
            continue
        value = getattr(attack, field.name)
        parts.append(f"{field.name}={_stable_repr(value)}")
    return "|".join(parts)


def _stable_repr(value) -> str:
    """A repr that is stable for the value types attacks actually carry."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, np.ndarray):
        digest = hashlib.sha1(np.ascontiguousarray(value).tobytes()).hexdigest()[:16]
        return f"ndarray({value.dtype},{value.shape},{digest})"
    if isinstance(value, (tuple, list)):
        inner = ",".join(_stable_repr(item) for item in value)
        return f"[{inner}]"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda pair: repr(pair[0]))
        inner = ",".join(f"{_stable_repr(k)}:{_stable_repr(v)}" for k, v in items)
        return "{" + inner + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{f.name}={_stable_repr(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({inner})"
    return _identity_token(value)


#: id() → (weakref, token) for values keyed by identity.  Tokens come from a
#: process-wide counter and are never reissued, so a recycled id() after
#: garbage collection yields a *new* token (a cache miss) instead of silently
#: aliasing a dead object's key.
_IDENTITY_TOKENS: Dict[int, Tuple[object, str]] = {}
_TOKEN_COUNTER = itertools.count()


def _identity_token(value) -> str:
    key = id(value)
    entry = _IDENTITY_TOKENS.get(key)
    if entry is not None:
        ref, token = entry
        if ref() is value:
            return token
    token = f"<{type(value).__name__}#{next(_TOKEN_COUNTER)}>"

    def _prune(dead_ref, _key=key):
        # Only drop the entry if it still belongs to the dead object; its
        # id() may already have been recycled and re-registered.
        entry = _IDENTITY_TOKENS.get(_key)
        if entry is not None and entry[0] is dead_ref:
            del _IDENTITY_TOKENS[_key]

    try:
        ref = weakref.ref(value, _prune)
    except TypeError:
        # Lifetime not trackable: a fresh token per call means such attacks
        # are simply never cached (misses only, never a stale hit).
        return token
    _IDENTITY_TOKENS[key] = (ref, token)
    return token


def scope_key(source) -> str:
    """Cache namespace for one experiment configuration.

    Results are only interchangeable between runs of the *same* experiment,
    so executors prefix every attack key with this scope — computed from the
    content of the pipeline's config when it is a dataclass (two pipelines
    built from equal configs share results), and from object identity
    otherwise (never aliasing two unrelated experiments).
    """
    return _stable_repr(source)


class ResultCache:
    """In-memory map from attack cache key to experiment result.

    Hit/miss accounting lives in the executor's
    :class:`~repro.exec.executor.ExecutionStats`, not here — the cache is
    plain storage so it can be shared between executors.
    """

    def __init__(self) -> None:
        self._results: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def peek(self, key: str) -> Optional[object]:
        """Cached result for ``key`` (``None`` when absent)."""
        return self._results.get(key)

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` (overwrites silently)."""
        self._results[key] = result

    def clear(self) -> None:
        """Drop every cached result."""
        self._results.clear()
