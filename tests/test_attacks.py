"""Tests for the threat model, fault injector and the five attacks."""

import numpy as np
import pytest

from repro.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
    FaultInjector,
    FaultSiteSelection,
    NoAttack,
    PowerDomain,
)
from repro.attacks.threat import (
    AdversaryAccess,
    PowerDomainScheme,
    ThreatModel,
    black_box_external_adversary,
    white_box_laser_adversary,
)
from repro.snn.models import (
    DiehlAndCook2015,
    DiehlAndCookParameters,
    EXCITATORY_LAYER,
    INHIBITORY_LAYER,
)


@pytest.fixture
def network():
    return DiehlAndCook2015(DiehlAndCookParameters(n_inputs=16, n_neurons=20), rng=0)


@pytest.fixture
def injector(network):
    return FaultInjector(network, rng=0)


class TestThreatModel:
    def test_black_box_adversary(self):
        model = black_box_external_adversary()
        assert model.is_black_box
        assert model.can_target(PowerDomain.EXCITATORY_LAYER)
        assert model.scheme is PowerDomainScheme.SINGLE_DOMAIN

    def test_white_box_adversary(self):
        model = white_box_laser_adversary(reachable_fraction=0.5)
        assert not model.is_black_box
        assert model.access is AdversaryAccess.LASER_GLITCHING
        assert model.reachable_fraction == 0.5

    def test_clamp_vdd(self):
        model = black_box_external_adversary()
        assert model.clamp_vdd(0.5) == 0.8
        assert model.clamp_vdd(2.0) == 1.2
        assert model.clamp_vdd(1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreatModel(
                scheme=PowerDomainScheme.SINGLE_DOMAIN,
                access=AdversaryAccess.EXTERNAL_POWER_PORT,
                targets=(),
                knows_architecture=False,
            )
        with pytest.raises(ValueError):
            ThreatModel(
                scheme=PowerDomainScheme.SINGLE_DOMAIN,
                access=AdversaryAccess.EXTERNAL_POWER_PORT,
                targets=(PowerDomain.WHOLE_SYSTEM,),
                knows_architecture=False,
                vdd_range=(1.2, 0.8),
            )


class TestFaultInjector:
    def test_select_fraction_counts(self, injector):
        for fraction, expected in [(0.0, 0), (0.25, 5), (0.5, 10), (1.0, 20)]:
            mask = injector.select_fault_sites(EXCITATORY_LAYER, fraction)
            assert mask.sum() == expected

    def test_contiguous_selection_is_a_block(self, injector):
        mask = injector.select_fault_sites(
            EXCITATORY_LAYER, 0.5, selection=FaultSiteSelection.CONTIGUOUS
        )
        indices = np.nonzero(mask)[0]
        assert len(indices) == 10
        gaps = np.diff(sorted(indices))
        # A contiguous block (possibly wrapping) has at most one gap > 1.
        assert (gaps > 1).sum() <= 1

    def test_threshold_fault_applies_to_selected_neurons(self, network, injector):
        record = injector.inject_threshold_fault(INHIBITORY_LAYER, 0.8, fraction=0.5)
        layer = network.inhibitory_layer
        assert record.n_affected == 10
        assert np.isclose(layer.threshold_scale[record.affected], 0.8).all()
        assert np.isclose(layer.threshold_scale[~record.affected], 1.0).all()

    def test_input_gain_fault(self, network, injector):
        injector.inject_input_gain_fault(EXCITATORY_LAYER, 1.3, fraction=1.0)
        assert np.allclose(network.excitatory_layer.input_gain, 1.3)

    def test_explicit_mask(self, network, injector):
        mask = np.zeros(20, dtype=bool)
        mask[:4] = True
        record = injector.inject_threshold_fault(EXCITATORY_LAYER, 0.9, mask=mask)
        assert record.fraction == pytest.approx(0.2)
        assert network.excitatory_layer.threshold_scale[:4].tolist() == [0.9] * 4

    def test_clear_restores_nominal(self, network, injector):
        injector.inject_threshold_fault(EXCITATORY_LAYER, 0.8)
        injector.inject_input_gain_fault(EXCITATORY_LAYER, 1.5)
        injector.clear()
        assert np.allclose(network.excitatory_layer.threshold_scale, 1.0)
        assert np.allclose(network.excitatory_layer.input_gain, 1.0)
        assert injector.records == []
        assert injector.describe() == "no faults injected"

    def test_invalid_layer_and_scale(self, injector):
        with pytest.raises(ValueError):
            injector.inject_threshold_fault("input", 0.8)
        with pytest.raises(ValueError):
            injector.inject_threshold_fault(EXCITATORY_LAYER, -0.5)

    def test_record_description(self, injector):
        record = injector.inject_threshold_fault(INHIBITORY_LAYER, 0.8, fraction=0.25)
        assert "inhibitory" in record.describe()
        assert "threshold" in record.describe()


class TestAttacks:
    def test_no_attack_is_empty(self, injector):
        assert NoAttack().apply(injector) == []

    def test_attack1_scales_input_gain(self, network, injector):
        records = Attack1InputSpikeCorruption(theta_change=-0.2).apply(injector)
        assert len(records) == 1
        assert np.allclose(network.excitatory_layer.input_gain, 0.8)

    def test_attack2_targets_excitatory(self, network, injector):
        Attack2ExcitatoryThreshold(threshold_change=-0.2, fraction=0.5).apply(injector)
        affected = np.isclose(network.excitatory_layer.threshold_scale, 0.8).sum()
        assert affected == 10
        assert np.allclose(network.inhibitory_layer.threshold_scale, 1.0)

    def test_attack3_targets_inhibitory(self, network, injector):
        Attack3InhibitoryThreshold(threshold_change=0.1, fraction=1.0).apply(injector)
        assert np.allclose(network.inhibitory_layer.threshold_scale, 1.1)
        assert np.allclose(network.excitatory_layer.threshold_scale, 1.0)

    def test_attack4_targets_both_layers(self, network, injector):
        records = Attack4BothLayerThreshold(threshold_change=-0.1).apply(injector)
        assert len(records) == 2
        assert np.allclose(network.excitatory_layer.threshold_scale, 0.9)
        assert np.allclose(network.inhibitory_layer.threshold_scale, 0.9)

    def test_attack5_uses_calibrated_map(self, network, injector):
        attack = Attack5GlobalSupply(vdd=0.8)
        records = attack.apply(injector)
        assert len(records) == 3
        assert attack.is_black_box
        assert attack.induced_theta_scale() == pytest.approx(0.65, abs=0.05)
        assert attack.induced_threshold_scale() == pytest.approx(0.8, abs=0.01)
        assert np.allclose(network.excitatory_layer.input_gain, attack.induced_theta_scale())

    def test_attack5_nominal_vdd_is_identity(self, injector, network):
        Attack5GlobalSupply(vdd=1.0).apply(injector)
        assert np.allclose(network.excitatory_layer.threshold_scale, 1.0, atol=1e-6)
        assert np.allclose(network.excitatory_layer.input_gain, 1.0, atol=1e-6)

    def test_attack_labels_are_informative(self):
        assert "theta" in Attack1InputSpikeCorruption(theta_change=0.1).label()
        assert "50%" in Attack2ExcitatoryThreshold(fraction=0.5).label()
        assert "0.80V" in Attack5GlobalSupply(vdd=0.8).label()

    def test_white_box_flags(self):
        assert not Attack2ExcitatoryThreshold().is_black_box
        assert Attack5GlobalSupply().is_black_box

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Attack2ExcitatoryThreshold(threshold_change=-0.95)
        with pytest.raises(ValueError):
            Attack3InhibitoryThreshold(fraction=1.5)
        with pytest.raises(ValueError):
            Attack5GlobalSupply(vdd=-1.0)
