"""Integration tests: full train/attack/evaluate runs at smoke scale.

These are the slowest tests in the suite (each pipeline run trains a small
SNN); the shared session-scoped fixtures in ``conftest.py`` keep the total
cost to a handful of training runs.
"""

import pytest

from repro.attacks import (
    Attack3InhibitoryThreshold,
    Attack5GlobalSupply,
    AttackCampaign,
    NoAttack,
)
from repro.core import ClassificationPipeline


class TestBaseline:
    def test_baseline_learns_above_chance(self, smoke_baseline):
        # Ten balanced classes: chance is 10 %.  Even the small smoke-scale
        # network should comfortably exceed it.
        assert smoke_baseline.accuracy > 0.3
        assert smoke_baseline.attack_label == "baseline"
        assert smoke_baseline.mean_excitatory_spikes > 0

    def test_baseline_is_cached(self, smoke_pipeline, smoke_baseline):
        again = smoke_pipeline.run_baseline()
        assert again is smoke_baseline

    def test_baseline_reproducible_across_pipelines(self, smoke_config, smoke_baseline):
        other = ClassificationPipeline(smoke_config)
        result = other.run_baseline()
        assert result.accuracy == pytest.approx(smoke_baseline.accuracy, abs=1e-9)

    def test_dataset_split_sizes(self, smoke_pipeline, smoke_config):
        assert len(smoke_pipeline.train_images) == smoke_config.n_train
        assert len(smoke_pipeline.eval_images) <= smoke_config.n_eval
        assert len(smoke_pipeline.train_labels) == smoke_config.n_train


class TestAttackedRuns:
    def test_inhibitory_runaway_attack_collapses_accuracy(self, smoke_pipeline, smoke_baseline):
        # A +20 % signed-threshold change drops the inhibitory threshold below
        # the reset potential: the inhibitory layer fires continuously and
        # silences the excitatory layer (one of the catastrophic Fig. 8b cases).
        attacked = smoke_pipeline.run(
            Attack3InhibitoryThreshold(threshold_change=+0.2, fraction=1.0)
        )
        assert attacked.relative_degradation > 0.4
        assert attacked.mean_excitatory_spikes < smoke_baseline.mean_excitatory_spikes
        assert attacked.fault_descriptions

    def test_inhibitory_silencing_attack_disables_competition(self, smoke_pipeline, smoke_baseline):
        # A -20 % signed-threshold change raises the inhibitory firing barrier
        # above the one-to-one excitatory weight: lateral inhibition disappears
        # and excitatory activity balloons.  Accuracy must not improve.
        attacked = smoke_pipeline.run(
            Attack3InhibitoryThreshold(threshold_change=-0.2, fraction=1.0)
        )
        assert attacked.mean_excitatory_spikes > smoke_baseline.mean_excitatory_spikes
        assert attacked.accuracy <= smoke_baseline.accuracy + 0.08

    def test_global_vdd_attack_collapses_accuracy(self, smoke_pipeline, smoke_baseline):
        attacked = smoke_pipeline.run(Attack5GlobalSupply(vdd=0.8))
        assert attacked.accuracy < smoke_baseline.accuracy
        assert attacked.relative_degradation > 0.4

    def test_attack_runs_do_not_pollute_baseline(self, smoke_pipeline, smoke_baseline):
        # The attacked runs above used fresh networks; re-running the baseline
        # must give the identical cached result.
        assert smoke_pipeline.run(NoAttack()).accuracy == smoke_baseline.accuracy


class TestCampaign:
    def test_theta_sweep_reuses_baseline_for_zero_change(self, smoke_pipeline, smoke_baseline):
        campaign = AttackCampaign(smoke_pipeline)
        sweep = campaign.sweep_attack1_theta(theta_changes=(0.0,))
        assert sweep.outcomes[0].accuracy == smoke_baseline.accuracy
        assert sweep.baseline_accuracy == smoke_baseline.accuracy

    def test_layer_threshold_grid_shape_and_zero_fraction(self, smoke_pipeline, smoke_baseline):
        campaign = AttackCampaign(smoke_pipeline)
        grid = campaign.sweep_layer_threshold(
            "inhibitory", threshold_changes=(0.2,), fractions=(0.0, 1.0)
        )
        assert grid.accuracies.shape == (1, 2)
        assert grid.accuracy_at(0.2, 0.0) == smoke_baseline.accuracy
        assert grid.accuracy_at(0.2, 1.0) < smoke_baseline.accuracy
        assert grid.worst_case_relative_degradation() > 0.3
        assert grid.metadata["layer"] == "inhibitory"
