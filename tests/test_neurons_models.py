"""Tests for the behavioural neuron/driver models (paper Figs. 5c, 6)."""

import math

import pytest

from repro.neurons import (
    AxonHillockModel,
    CurrentDriverModel,
    IFAmplifierModel,
    RobustDriverModel,
    SpikeMetrics,
    relative_change,
)


class TestMetrics:
    def test_relative_change(self):
        assert relative_change(1.2, 1.0) == pytest.approx(0.2)
        with pytest.raises(ZeroDivisionError):
            relative_change(1.0, 0.0)

    def test_spike_metrics_from_times(self):
        metrics = SpikeMetrics.from_spike_times([1.0, 3.0, 5.0])
        assert metrics.time_to_first_spike == 1.0
        assert metrics.inter_spike_interval == pytest.approx(2.0)
        assert metrics.spike_count == 3
        assert metrics.spike_rate == pytest.approx(0.5)

    def test_spike_metrics_empty(self):
        metrics = SpikeMetrics.from_spike_times([])
        assert metrics.time_to_first_spike is None
        assert metrics.spike_rate == 0.0

    def test_time_to_spike_change_requires_spikes(self):
        silent = SpikeMetrics.from_spike_times([])
        active = SpikeMetrics.from_spike_times([1.0])
        with pytest.raises(ValueError):
            active.time_to_spike_change(silent)


class TestCurrentDriverModel:
    def test_nominal_amplitude(self):
        driver = CurrentDriverModel()
        assert driver.nominal_amplitude == pytest.approx(200e-9, rel=0.03)

    def test_amplitude_monotone_in_vdd(self):
        driver = CurrentDriverModel()
        amps = driver.amplitude_vs_vdd([0.8, 0.9, 1.0, 1.1, 1.2])
        assert all(a < b for a, b in zip(amps, amps[1:]))

    def test_amplitude_change_superlinear(self):
        driver = CurrentDriverModel()
        # Paper Fig. 5b: ~+/-32 % output change for +/-20 % VDD change.
        assert driver.amplitude_scale(0.8) == pytest.approx(0.67, abs=0.06)
        assert driver.amplitude_scale(1.2) == pytest.approx(1.34, abs=0.06)

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ValueError):
            CurrentDriverModel().amplitude(0.0)


class TestRobustDriverModel:
    def test_flat_in_regulation(self):
        driver = RobustDriverModel()
        assert abs(driver.amplitude_scale(0.8) - 1.0) < 0.01
        assert abs(driver.amplitude_scale(1.2) - 1.0) < 0.01

    def test_dropout_collapses_with_supply(self):
        driver = RobustDriverModel()
        assert driver.amplitude(0.3) < driver.nominal_amplitude * 0.6


class TestAxonHillockModel:
    def test_threshold_near_half_vdd(self):
        neuron = AxonHillockModel()
        assert neuron.membrane_threshold(1.0) == pytest.approx(0.5, abs=0.02)

    def test_threshold_change_with_vdd(self):
        neuron = AxonHillockModel()
        assert neuron.threshold_change(0.8) == pytest.approx(-0.145, abs=0.04)
        assert neuron.threshold_change(1.2) == pytest.approx(0.145, abs=0.04)

    def test_threshold_override_pins_threshold(self):
        neuron = AxonHillockModel(threshold_override=0.5)
        assert neuron.membrane_threshold(0.8) == 0.5

    def test_time_to_spike_inverse_in_amplitude(self):
        neuron = AxonHillockModel()
        baseline = neuron.time_to_first_spike(200e-9)
        faster = neuron.time_to_first_spike(264e-9)
        slower = neuron.time_to_first_spike(136e-9)
        # Paper Fig. 5c: -24.7 % and +53.7 % for the Axon-Hillock neuron.
        assert (faster - baseline) / baseline == pytest.approx(-0.24, abs=0.05)
        assert (slower - baseline) / baseline == pytest.approx(0.47, abs=0.12)

    def test_time_to_spike_tracks_threshold(self):
        neuron = AxonHillockModel()
        baseline = neuron.time_to_first_spike(200e-9, vdd=1.0)
        low = neuron.time_to_first_spike(200e-9, vdd=0.8)
        assert (low - baseline) / baseline == pytest.approx(
            neuron.threshold_change(0.8), abs=0.01
        )

    def test_reset_time_infinite_when_input_exceeds_reset(self):
        neuron = AxonHillockModel(reset_current=50e-9)
        assert math.isinf(neuron.reset_time(200e-9))

    def test_simulation_produces_regular_spikes(self):
        neuron = AxonHillockModel()
        metrics = neuron.simulate(200e-9, duration=100e-6)
        assert metrics.spike_count >= 5
        assert metrics.inter_spike_interval == pytest.approx(
            neuron.inter_spike_interval(200e-9), rel=0.05
        )

    def test_membrane_trajectory_bounded_by_threshold(self):
        neuron = AxonHillockModel()
        _, membrane, output = neuron.membrane_trajectory(200e-9, duration=50e-6)
        assert membrane.max() <= neuron.membrane_threshold() + 1e-9
        assert set(output.tolist()) <= {0.0, neuron.vdd}


class TestIFAmplifierModel:
    def test_threshold_divider(self):
        neuron = IFAmplifierModel()
        assert neuron.membrane_threshold(1.0) == pytest.approx(0.5)
        assert neuron.membrane_threshold(0.8) == pytest.approx(0.4)
        assert neuron.threshold_change(1.2) == pytest.approx(0.2)

    def test_threshold_override(self):
        neuron = IFAmplifierModel(threshold_override=0.5)
        assert neuron.membrane_threshold(0.8) == 0.5

    def test_amplitude_sensitivity_diluted_by_refractory(self):
        neuron = IFAmplifierModel()
        baseline = neuron.inter_spike_interval(200e-9)
        slower = neuron.inter_spike_interval(136e-9)
        faster = neuron.inter_spike_interval(264e-9)
        # Paper Fig. 5c: +14.5 % / -6.7 % — far less sensitive than the AH neuron.
        assert 0.05 < (slower - baseline) / baseline < 0.25
        assert -0.12 < (faster - baseline) / baseline < -0.02

    def test_threshold_sensitivity_amplified_by_leak(self):
        neuron = IFAmplifierModel()
        baseline = neuron.time_to_first_spike(200e-9, vdd=1.0)
        high = neuron.time_to_first_spike(200e-9, vdd=1.2)
        # Paper Fig. 6c: +23.5 % for a +17 % threshold change (super-linear).
        assert (high - baseline) / baseline > 0.20

    def test_leak_can_prevent_firing(self):
        neuron = IFAmplifierModel(leak_conductance=1e-6)
        assert math.isinf(neuron.time_to_first_spike(200e-9))
        assert neuron.simulate(200e-9).spike_count == 0

    def test_simulation_counts_match_period(self):
        neuron = IFAmplifierModel()
        metrics = neuron.simulate(200e-9, duration=2e-3)
        expected = 2e-3 / neuron.inter_spike_interval(200e-9)
        assert metrics.spike_count == pytest.approx(expected, abs=1.5)

    def test_membrane_trajectory_shapes(self):
        neuron = IFAmplifierModel()
        time, membrane = neuron.membrane_trajectory(200e-9, duration=400e-6)
        assert len(time) == len(membrane)
        assert membrane.max() <= neuron.vdd + 1e-9

    def test_invalid_duty_cycle(self):
        with pytest.raises(ValueError):
            IFAmplifierModel().integration_time(200e-9, duty_cycle=0.0)
