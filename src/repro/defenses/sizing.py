"""Transistor-sizing defense for the Axon-Hillock neuron (paper Fig. 9c).

The membrane threshold of the Axon-Hillock neuron is the switching threshold
of its first inverter, which is set by VDD and the pull-up/pull-down strength
ratio.  Sizing the inverter so that one device dominates anchors the
switching point to that device's (VDD-independent) threshold voltage and
shrinks the attack-induced threshold change — the paper reports −5.23 %
residual change at 0.8 V for a 32:1 device (vs −18 % for baseline sizing) at
a 25 % power overhead.

Modelling note (see DESIGN.md): with the square-law inverter model used here
the switching point is anchored by *strengthening the pull-down (NMOS)*
device, whereas the paper describes up-sizing the PMOS ``MP1``.  The defense
object therefore exposes ``upsized_device`` and defaults to the device that
actually anchors the threshold in this model; the figure-level claim —
up-sizing one inverter device by ~32x cuts the low-VDD threshold change from
≈−15…−18 % to a few percent — is reproduced either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.neurons.axon_hillock import AxonHillockModel
from repro.utils.validation import check_in_choices, check_positive


@dataclass
class SizingSweepPoint:
    """Threshold sensitivity for one up-sizing factor."""

    sizing_factor: float
    nominal_threshold: float
    threshold_at_vdd: float
    threshold_change: float

    def as_row(self) -> tuple:
        """(factor, nominal, attacked, change) row for reporting."""
        return (
            self.sizing_factor,
            round(self.nominal_threshold, 4),
            round(self.threshold_at_vdd, 4),
            round(self.threshold_change, 4),
        )


@dataclass
class SizingDefense:
    """Sweeps the first-inverter device up-sizing factor (paper Fig. 9c)."""

    neuron: AxonHillockModel = field(default_factory=AxonHillockModel)
    upsized_device: str = "nmos"
    #: Power overhead of the up-sized neuron (paper: 25 %).
    power_overhead: float = 0.25
    #: Area overhead is negligible: the two 1 pF capacitors dominate.
    area_overhead: float = 0.01

    def __post_init__(self) -> None:
        check_in_choices(self.upsized_device, "upsized_device", ("nmos", "pmos"))
        check_positive(self.power_overhead, "power_overhead")

    def _resized(self, factor: float) -> AxonHillockModel:
        check_positive(factor, "factor")
        if self.upsized_device == "nmos":
            return AxonHillockModel(
                nmos_aspect_ratio=self.neuron.nmos_aspect_ratio * factor,
                pmos_aspect_ratio=self.neuron.pmos_aspect_ratio,
                nominal_vdd=self.neuron.nominal_vdd,
            )
        return AxonHillockModel(
            nmos_aspect_ratio=self.neuron.nmos_aspect_ratio,
            pmos_aspect_ratio=self.neuron.pmos_aspect_ratio * factor,
            nominal_vdd=self.neuron.nominal_vdd,
        )

    def threshold_change(self, sizing_factor: float, vdd: float) -> float:
        """Fractional threshold change at ``vdd`` for a given up-sizing factor."""
        resized = self._resized(sizing_factor)
        return resized.threshold_change(vdd)

    def sweep(
        self,
        sizing_factors: Sequence[float] = (1, 2, 4, 8, 16, 32),
        *,
        vdd: float = 0.8,
    ) -> List[SizingSweepPoint]:
        """Threshold sensitivity for each up-sizing factor (Fig. 9c series)."""
        points: List[SizingSweepPoint] = []
        for factor in sizing_factors:
            resized = self._resized(float(factor))
            nominal = resized.membrane_threshold(resized.nominal_vdd)
            attacked = resized.membrane_threshold(vdd)
            points.append(
                SizingSweepPoint(
                    sizing_factor=float(factor),
                    nominal_threshold=nominal,
                    threshold_at_vdd=attacked,
                    threshold_change=(attacked - nominal) / nominal,
                )
            )
        return points

    def residual_threshold_scale(self, sizing_factor: float, vdd: float) -> float:
        """Threshold scale factor that survives the defense (for pipeline runs)."""
        return 1.0 + self.threshold_change(sizing_factor, vdd)
