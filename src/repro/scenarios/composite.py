"""Composite scenarios: sequence and product composition of specs.

Two composition modes cover the scenario space beyond single-parameter
sweeps:

* ``sequence`` — run every member scenario independently and report them
  side by side (e.g. the same droop applied to the excitatory vs the
  inhibitory layer).  The members share one executor, so common
  configurations (most importantly the baseline) are evaluated once.
* ``product`` — the cartesian product of the members' grids, with each
  combination fused into one
  :class:`~repro.attacks.attacks.CompositeAttack` applied to a *single*
  network (e.g. a driver VDD droop *while* a laser shifts a layer
  threshold).  The product is still a flat variant list, so it shards,
  caches and lockstep-batches exactly like a plain grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.attacks.attacks import CompositeAttack
from repro.scenarios.spec import ScenarioSpec, ScenarioVariant, check_scenario_name
from repro.utils.validation import check_in_choices

#: Composition modes of :class:`CompositeScenario`.
MODES = ("sequence", "product")


@dataclass(frozen=True)
class CompositeScenario:
    """A named composition of member :class:`ScenarioSpec` instances.

    Attributes
    ----------
    name, title, description, tags:
        Presentation metadata, mirroring :class:`ScenarioSpec`.
    members:
        The member specs, in declaration order.
    mode:
        ``"sequence"`` or ``"product"`` (see module docstring).
    engine, scale:
        Execution pins, applied to the composition as a whole (member
        pins are ignored so one composite runs under one config).
    """

    name: str
    members: Tuple[ScenarioSpec, ...]
    title: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()
    mode: str = "product"
    engine: str = "auto"
    scale: Optional[str] = None

    def __post_init__(self) -> None:
        check_scenario_name(self.name)
        check_in_choices(self.mode, "mode", MODES)
        object.__setattr__(self, "members", tuple(self.members))
        object.__setattr__(self, "tags", tuple(self.tags))
        if len(self.members) < 2:
            raise ValueError(
                f"composite {self.name!r} needs >= 2 members, got {len(self.members)}"
            )
        for member in self.members:
            if member.strategy != "grid":
                # Composites evaluate as flat variant lists; silently
                # dense-expanding a bisect member would discard the
                # O(log n) search the user asked for.
                raise ValueError(
                    f"composite {self.name!r}: members must use the grid "
                    f"strategy ({member.name!r} uses {member.strategy!r}); "
                    "run adaptive searches as standalone scenarios"
                )
        if self.mode == "product":
            for member in self.members:
                if member.defenses:
                    raise ValueError(
                        f"composite {self.name!r}: defenses belong on the "
                        f"composite's members only in sequence mode "
                        f"({member.name!r} declares defenses)"
                    )

    @property
    def strategy(self) -> str:
        """Composites always evaluate as (possibly fused) grids."""
        return "grid"

    def variants(self) -> List[ScenarioVariant]:
        """The composition's flat variant list.

        ``product`` mode fuses one variant per member-combination into a
        :class:`CompositeAttack`; ``sequence`` mode concatenates the
        members' own variant lists, prefixing each variant's parameters
        with the member name so the report stays unambiguous.
        """
        if self.mode == "product":
            combos = itertools.product(*(member.variants() for member in self.members))
            fused: List[ScenarioVariant] = []
            for combo in combos:
                params: List[Tuple[str, object]] = []
                for member, variant in zip(self.members, combo):
                    params.extend(
                        (f"{member.name}.{key}", value) for key, value in variant.params
                    )
                extras = [variant.label_extra for variant in combo if variant.label_extra]
                fused.append(
                    ScenarioVariant(
                        params=tuple(params),
                        attack=CompositeAttack(
                            attacks=tuple(variant.attack for variant in combo)
                        ),
                        label_extra=";".join(extras),
                    )
                )
            return fused
        variants: List[ScenarioVariant] = []
        for member in self.members:
            for variant in member.variants():
                variants.append(
                    ScenarioVariant(
                        params=tuple(
                            ((f"{member.name}.{key}", value) for key, value in variant.params)
                        ),
                        attack=variant.attack,
                        defense=variant.defense,
                        defense_factor=variant.defense_factor,
                        label_extra=variant.label_extra,
                    )
                )
        return variants

    def to_dict(self) -> dict:
        """Plain-dict form (members inlined) for listings and provenance."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
            "mode": self.mode,
            "engine": self.engine,
            "scale": self.scale,
            "members": [member.to_dict() for member in self.members],
        }
