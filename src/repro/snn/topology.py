"""Synaptic connections between node groups."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.snn.nodes import Nodes
from repro.utils.rng import SeedLike, ensure_rng


class Connection:
    """A dense all-to-all connection with optional learning and normalisation.

    Parameters
    ----------
    source, target:
        The pre- and post-synaptic node groups.
    w:
        Initial weight matrix of shape ``(source.n, target.n)``.  When
        omitted, weights are drawn uniformly from ``[0, 0.3]``.
    wmin, wmax:
        Hard clamp applied after every plasticity update.
    norm:
        When set, :meth:`normalize` rescales each post-synaptic neuron's
        total incoming weight to this value (Diehl&Cook uses 78.4 for the
        input→excitatory projection).
    update_rule:
        A learning rule from :mod:`repro.snn.learning` (None disables
        plasticity).
    """

    def __init__(
        self,
        source: Nodes,
        target: Nodes,
        *,
        w: Optional[np.ndarray] = None,
        wmin: float = -np.inf,
        wmax: float = np.inf,
        norm: Optional[float] = None,
        update_rule=None,
        rng: SeedLike = None,
    ) -> None:
        self.source = source
        self.target = target
        if wmin > wmax:
            raise ValueError(f"wmin ({wmin}) must not exceed wmax ({wmax})")
        self.wmin = float(wmin)
        self.wmax = float(wmax)
        self.norm = norm
        self.update_rule = update_rule
        if w is None:
            generator = ensure_rng(rng, name="connection_init")
            w = 0.3 * generator.random((source.n, target.n))
        w = np.asarray(w, dtype=float)
        if w.shape != (source.n, target.n):
            raise ValueError(
                f"weight matrix must have shape ({source.n}, {target.n}), got {w.shape}"
            )
        self.w = np.clip(w, self.wmin, self.wmax)

    # ----------------------------------------------------------------- running
    def compute(self) -> np.ndarray:
        """Post-synaptic drive produced by the source's current spikes."""
        if not self.source.spikes.any():
            return np.zeros(self.target.n)
        # Summing the rows of active pre-synaptic neurons is much cheaper
        # than a full matrix product when spiking is sparse.
        return self.w[self.source.spikes].sum(axis=0)

    def update(self, *, learning: bool = True) -> None:
        """Apply one step of the plasticity rule (if any)."""
        if learning and self.update_rule is not None:
            self.update_rule.update(self)
            self.clamp()

    def clamp(self) -> None:
        """Clip weights into [wmin, wmax] in place."""
        np.clip(self.w, self.wmin, self.wmax, out=self.w)

    def normalize(self) -> None:
        """Rescale each target neuron's total incoming weight to ``norm``."""
        if self.norm is None:
            return
        totals = self.w.sum(axis=0)
        totals[totals == 0] = 1.0
        self.w *= self.norm / totals

    def reset_state_variables(self) -> None:
        """Connections hold no per-example state; provided for symmetry."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Connection({self.source.n}→{self.target.n}, "
            f"rule={type(self.update_rule).__name__ if self.update_rule else None})"
        )


def one_to_one_weights(n: int, value: float) -> np.ndarray:
    """Diagonal weight matrix used for the excitatory→inhibitory projection."""
    return np.diag(np.full(n, float(value)))


def lateral_inhibition_weights(n: int, value: float) -> np.ndarray:
    """All-to-all-except-self weights for the inhibitory→excitatory projection.

    ``value`` should be negative (inhibition); the diagonal is zero because
    each inhibitory neuron does not inhibit the excitatory neuron it was
    driven by (Diehl&Cook's winner-take-all wiring).
    """
    w = np.full((n, n), float(value))
    np.fill_diagonal(w, 0.0)
    return w
