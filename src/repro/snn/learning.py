"""Synaptic plasticity rules.

The Diehl & Cook network trains its input→excitatory projection with a
trace-based pair STDP rule ("PostPre" in BindsNET terms): a pre-synaptic
spike depresses the synapse in proportion to the post-synaptic trace, a
post-synaptic spike potentiates it in proportion to the pre-synaptic trace.
The paper trains with ``nu = (0.0004, 0.0002)`` for pre- and post-synaptic
events respectively.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class LearningRule:
    """Base class for plasticity rules.

    Rules that also implement ``update_batched(connection_batch)`` can run
    on the lockstep engine of :mod:`repro.snn.batched`; the batched update
    must be bit-identical, per variant, to :meth:`update` (the engine's
    parity suite pins this).  Rules without it fall back to the scalar path.
    """

    def update(self, connection) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NoOp(LearningRule):
    """A rule that leaves the weights untouched (used during evaluation)."""

    def update(self, connection) -> None:
        return None

    def update_batched(self, connection) -> None:
        return None


class PostPre(LearningRule):
    """Pair-based STDP with pre-synaptic depression and post-synaptic potentiation.

    Parameters
    ----------
    nu_pre:
        Learning rate applied on pre-synaptic spikes (depression).
    nu_post:
        Learning rate applied on post-synaptic spikes (potentiation).
    """

    def __init__(self, nu_pre: float = 1e-4, nu_post: float = 1e-2) -> None:
        self.nu_pre = check_positive(nu_pre, "nu_pre", strict=False)
        self.nu_post = check_positive(nu_post, "nu_post", strict=False)

    def update(self, connection) -> None:
        source, target = connection.source, connection.target
        # Depression: every pre-synaptic spike moves its outgoing weights
        # towards zero in proportion to the recent post-synaptic activity.
        if self.nu_pre and source.spikes.any():
            connection.w[source.spikes, :] -= self.nu_pre * target.traces[None, :]
        # Potentiation: every post-synaptic spike strengthens the synapses
        # from recently active inputs.
        if self.nu_post and target.spikes.any():
            connection.w[:, target.spikes] += self.nu_post * source.traces[:, None]

    def update_batched(self, connection) -> None:
        """The same update over a variant batch (one image, V weight stacks).

        Per-variant arithmetic is exactly :meth:`update`'s: the vectorised
        depression subtracts the identical ``nu_pre * traces`` products from
        the identical rows, and potentiation loops over the variants whose
        post-synaptic neurons fired, applying the scalar expression.
        """
        source, target = connection.source_batch, connection.target_batch
        w = connection.stacked_w
        if self.nu_pre and source.spikes.any():
            if source.uniform_across_variants:
                mask = source.spikes[0, 0]
                # target.traces is (V, 1, n_post): one broadcast subtraction
                # applies every variant's scalar-path depression at once.
                w[:, mask, :] -= self.nu_pre * target.traces
                connection.touch_rows(mask)
            else:
                for variant in range(connection.batch_size):
                    mask = source.spikes[variant, 0]
                    if mask.any():
                        w[variant][mask, :] -= (
                            self.nu_pre * target.traces[variant, 0][None, :]
                        )
                        connection.touch_rows_variant(variant, mask)
        if self.nu_post and target.spikes.any():
            shared_values = None
            if source.uniform_across_variants:
                shared_values = self.nu_post * source.traces[0, 0][:, None]
            for variant in range(connection.batch_size):
                mask = target.spikes[variant, 0]
                if not mask.any():
                    continue
                if shared_values is None:
                    values = self.nu_post * source.traces[variant, 0][:, None]
                else:
                    values = shared_values
                w[variant][:, mask] += values
                connection.touch_cols(variant, mask)


class WeightDependentPostPre(LearningRule):
    """PostPre with soft weight bounds.

    Potentiation is scaled by the remaining headroom ``(wmax - w)`` and
    depression by the distance from the floor ``(w - wmin)``, which keeps
    weights away from the hard clamp and is the variant Diehl & Cook describe
    for their "weight dependence" experiments.
    """

    def __init__(self, nu_pre: float = 1e-4, nu_post: float = 1e-2) -> None:
        self.nu_pre = check_positive(nu_pre, "nu_pre", strict=False)
        self.nu_post = check_positive(nu_post, "nu_post", strict=False)

    def update(self, connection) -> None:
        source, target = connection.source, connection.target
        wmin = connection.wmin if np.isfinite(connection.wmin) else 0.0
        wmax = connection.wmax if np.isfinite(connection.wmax) else 1.0
        span = max(wmax - wmin, 1e-12)
        if self.nu_pre and source.spikes.any():
            rows = connection.w[source.spikes, :]
            connection.w[source.spikes, :] -= (
                self.nu_pre * target.traces[None, :] * (rows - wmin) / span
            )
        if self.nu_post and target.spikes.any():
            cols = connection.w[:, target.spikes]
            connection.w[:, target.spikes] += (
                self.nu_post * source.traces[:, None] * (wmax - cols) / span
            )

    def update_batched(self, connection) -> None:
        """Soft-bounded update over a variant batch (see ``PostPre``)."""
        source, target = connection.source_batch, connection.target_batch
        w = connection.stacked_w
        wmin = connection.wmin if np.isfinite(connection.wmin) else 0.0
        wmax = connection.wmax if np.isfinite(connection.wmax) else 1.0
        span = max(wmax - wmin, 1e-12)
        if self.nu_pre and source.spikes.any():
            if source.uniform_across_variants:
                mask = source.spikes[0, 0]
                rows = w[:, mask, :]
                w[:, mask, :] -= self.nu_pre * target.traces * (rows - wmin) / span
                connection.touch_rows(mask)
            else:
                for variant in range(connection.batch_size):
                    mask = source.spikes[variant, 0]
                    if mask.any():
                        rows = w[variant][mask, :]
                        w[variant][mask, :] -= (
                            self.nu_pre
                            * target.traces[variant, 0][None, :]
                            * (rows - wmin)
                            / span
                        )
                        connection.touch_rows_variant(variant, mask)
        if self.nu_post and target.spikes.any():
            for variant in range(connection.batch_size):
                mask = target.spikes[variant, 0]
                if not mask.any():
                    continue
                if source.uniform_across_variants:
                    traces = source.traces[0, 0]
                else:
                    traces = source.traces[variant, 0]
                cols = w[variant][:, mask]
                w[variant][:, mask] += (
                    self.nu_post * traces[:, None] * (wmax - cols) / span
                )
                connection.touch_cols(variant, mask)
