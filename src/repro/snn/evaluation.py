"""Label assignment and accuracy metrics for the unsupervised SNN.

Diehl & Cook's network is trained without labels; classification works by
assigning each excitatory neuron to the digit class for which it fired most
during a labelled assignment pass, then predicting new examples from the
per-class average activity ("all activity") or the per-class firing
proportions ("proportion weighting").
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive


def assign_labels(
    spike_counts: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each neuron to the class it responds to most strongly.

    Parameters
    ----------
    spike_counts:
        Array of shape ``(n_examples, n_neurons)`` with the excitatory spike
        counts recorded while each example was presented.
    labels:
        Integer class label of each example, shape ``(n_examples,)``.
    n_classes:
        Total number of classes.

    Returns
    -------
    assignments:
        Class index per neuron, shape ``(n_neurons,)``.
    rates:
        Average response of each neuron to each class,
        shape ``(n_classes, n_neurons)``.
    """
    spike_counts = np.asarray(spike_counts, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if spike_counts.ndim != 2:
        raise ValueError("spike_counts must be 2-D (examples x neurons)")
    if len(labels) != len(spike_counts):
        raise ValueError("labels and spike_counts must have the same length")
    check_positive(n_classes, "n_classes")

    n_neurons = spike_counts.shape[1]
    rates = np.zeros((n_classes, n_neurons))
    for cls in range(n_classes):
        mask = labels == cls
        if mask.any():
            rates[cls] = spike_counts[mask].mean(axis=0)
    assignments = rates.argmax(axis=0)
    return assignments, rates


def all_activity_prediction(
    spike_counts: np.ndarray,
    assignments: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Predict classes from the mean activity of each class's assigned neurons."""
    spike_counts = np.asarray(spike_counts, dtype=float)
    assignments = np.asarray(assignments, dtype=int)
    if spike_counts.ndim != 2:
        raise ValueError("spike_counts must be 2-D (examples x neurons)")
    n_examples = spike_counts.shape[0]
    scores = np.zeros((n_examples, n_classes))
    for cls in range(n_classes):
        mask = assignments == cls
        count = int(mask.sum())
        if count:
            scores[:, cls] = spike_counts[:, mask].sum(axis=1) / count
    return scores.argmax(axis=1)


def proportion_weighting_prediction(
    spike_counts: np.ndarray,
    assignments: np.ndarray,
    class_rates: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Predict classes weighting each neuron's vote by its class selectivity."""
    spike_counts = np.asarray(spike_counts, dtype=float)
    assignments = np.asarray(assignments, dtype=int)
    class_rates = np.asarray(class_rates, dtype=float)
    totals = class_rates.sum(axis=0)
    totals[totals == 0] = 1.0
    proportions = class_rates / totals  # (n_classes, n_neurons)
    n_examples = spike_counts.shape[0]
    scores = np.zeros((n_examples, n_classes))
    for cls in range(n_classes):
        mask = assignments == cls
        count = int(mask.sum())
        if count:
            weighted = spike_counts[:, mask] * proportions[cls, mask][None, :]
            scores[:, cls] = weighted.sum(axis=1) / count
    return scores.argmax(axis=1)


def classification_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy over zero examples")
    return float(np.mean(predictions == labels))
