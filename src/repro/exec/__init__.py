"""Execution subsystem: parallel sweep execution with caching and timing.

The attack figures are parameter sweeps — dozens of *independent*
train-and-evaluate pipeline runs per figure.  This package factors the
"run many configurations" loop out of the sweep drivers:

* :class:`~repro.exec.executor.SweepExecutor` — fans independent attack
  evaluations out over a process pool (``workers > 1``) or runs them inline
  (``workers <= 1``, the deterministic debugging default).
* :class:`~repro.exec.cache.ResultCache` — a keyed result cache so the
  baseline and repeated attack configurations are evaluated once per
  campaign instead of once per sweep.
* :class:`~repro.exec.executor.ExecutionStats` — wall-clock and per-task
  timing, rendered through :func:`repro.core.reporting.format_execution_report`.
* :class:`~repro.exec.circuits.CircuitSweepDispatcher` — the circuit-tier
  counterpart: sweeps whose points are parameter variants of one topology
  (threshold/VDD grids) advance in lockstep through the batched engine of
  :mod:`repro.analog.batch` instead of one simulation per point.
* :class:`~repro.exec.snn_batch.PipelineBatchDispatcher` — the pipeline-tier
  twin: a serial batch of attack evaluations (variants of one Diehl&Cook
  topology) trains and evaluates in one lockstep pass through the batched
  SNN engine (:mod:`repro.snn.batched`) instead of one full run per point.
* :class:`~repro.exec.shard.ShardSpec` — deterministic ``i/n`` splitting of
  a task list across independent invocations (the ``--shard`` flag of
  ``python -m repro scenarios run``); the union of all shards is exactly
  the full list, with no coordination needed.
* :class:`~repro.exec.resilience.ResilientExecutor` — the fault-tolerant
  supervision layer: worker-death recovery (pool rebuild + re-dispatch of
  lost in-flight tasks), per-task timeout/retry with seeded exponential
  backoff, and percentile-based straggler re-dispatch with
  first-result-wins merges.  Configured by
  :class:`~repro.exec.resilience.ResiliencePolicy`.
* :mod:`repro.exec.chaos` — the deterministic fault-injection harness
  (seeded :class:`~repro.exec.chaos.FaultPlan`: kill/delay/raise/corrupt,
  plus whole-process kill/stall and lease corruption for elastic drains)
  that regression-tests the resilience layer and backs the ``--chaos``
  CLI flag.
* :class:`~repro.exec.microbatch.Microbatcher` — the serving front-end:
  coalesces a stream of single-example scoring requests into lockstep
  passes of up to ``example_chunk`` through the batched engine, with a
  max-linger deadline bounding per-request latency, out-of-order-safe
  result demux, and flush/occupancy counters surfaced through
  :class:`~repro.exec.executor.ExecutionStats`.
* :class:`~repro.exec.elastic.ElasticScheduler` — coordinator-free
  work-stealing over a shared directory (the ``--elastic`` flag): workers
  claim variant chunks through atomic heartbeat lease files, steal leases
  whose owner stopped renewing, duplicate stragglers with
  first-result-wins completion markers, and merge bit-identical artifacts
  from the union of per-worker caches.  Configured by
  :class:`~repro.exec.elastic.ElasticPolicy`.

Parallel execution is bit-identical to serial execution: every pipeline run
derives its random streams from ``(config.seed, attack label)`` alone, never
from shared mutable RNG state, so results do not depend on which worker runs
which task or in what order.
"""

from repro.exec.cache import ResultCache, attack_cache_key
from repro.exec.chaos import CHAOS_PLANS, Fault, FaultPlan, InjectedFault, load_fault_plan
from repro.exec.circuits import CircuitSweepDispatcher
from repro.exec.elastic import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_LEASE_TTL,
    Chunk,
    ElasticPolicy,
    ElasticScheduler,
    Lease,
    LeaseBoard,
    LeaseCorruptionError,
    build_chunks,
    default_worker_id,
    find_stale_artifacts,
    sweep_expired_leases,
    sweep_stale_artifacts,
    whole_chunk,
)
from repro.exec.executor import (
    ExecutionStats,
    PipelineFromConfig,
    SweepExecutor,
    TaskTiming,
    default_worker_count,
)
from repro.exec.microbatch import DEFAULT_LINGER, FLUSH_CAUSES, Microbatcher
from repro.exec.resilience import (
    ResilienceExecutorError,
    ResiliencePolicy,
    ResilientExecutor,
    RetryPolicy,
    StragglerPolicy,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.exec.shard import FULL, MergeReport, ShardSpec, merge_report
from repro.exec.snn_batch import PipelineBatchDispatcher

__all__ = [
    "CHAOS_PLANS",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_LINGER",
    "FLUSH_CAUSES",
    "FULL",
    "Microbatcher",
    "Chunk",
    "ElasticPolicy",
    "ElasticScheduler",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "Lease",
    "LeaseBoard",
    "LeaseCorruptionError",
    "MergeReport",
    "ShardSpec",
    "build_chunks",
    "default_worker_id",
    "find_stale_artifacts",
    "merge_report",
    "sweep_expired_leases",
    "sweep_stale_artifacts",
    "whole_chunk",
    "CircuitSweepDispatcher",
    "PipelineBatchDispatcher",
    "ResultCache",
    "attack_cache_key",
    "load_fault_plan",
    "ExecutionStats",
    "PipelineFromConfig",
    "ResilienceExecutorError",
    "ResiliencePolicy",
    "ResilientExecutor",
    "RetryPolicy",
    "StragglerPolicy",
    "SweepExecutor",
    "TaskTiming",
    "TaskTimeoutError",
    "WorkerCrashError",
    "default_worker_count",
]
