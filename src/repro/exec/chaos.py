"""Deterministic fault injection for the execution subsystem.

Resilience is only trustworthy when it is regression-tested the same way
correctness is: by pinning outcomes.  This module is the fault-injection
half of that contract.  A :class:`FaultPlan` is a *seeded, declarative*
list of failures — kill the worker process running a matching task, delay
a task by a fixed time, raise a transient exception inside a task, or
corrupt a persisted cache entry on disk — and every fault fires as a pure
function of ``(plan seed, task key, attempt number)``.  Injected chaos is
therefore reproducible run-to-run: the same plan against the same campaign
kills the same tasks, which is what lets ``tests/test_exec_resilience.py``
assert that a chaotic campaign ends in the *same SHA-256-pinned results*
as a clean one.

Faults target tasks by *content* (a substring of the executor's
content-based cache key) rather than by submission index, so the plan is
independent of worker scheduling.  The ``attempts`` gate bounds every
fault: a fault that fires on attempt 0 only is healed by the supervisor's
first retry, so chaotic campaigns terminate by construction.

The ``--chaos`` CLI flag accepts a registered plan name (see
:data:`CHAOS_PLANS`) or a path to a JSON file with the
:meth:`FaultPlan.to_dict` layout.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Fault actions a plan may carry.
ACTIONS = (
    "raise",
    "delay",
    "kill",
    "corrupt_cache",
    "kill_process",
    "stall_process",
    "corrupt_lease",
)

#: Whole-process faults targeting the elastic scheduling layer (see
#: :meth:`FaultPlan.apply_elastic`): keys are ``"<worker>:<chunk>"`` so a
#: plan can deterministically kill or stall one named worker mid-campaign.
ELASTIC_ACTIONS = ("kill_process", "stall_process")


class InjectedFault(RuntimeError):
    """The transient failure raised by ``raise`` faults (and by ``kill``
    faults on the serial path, where killing the process would take the
    supervisor down with the task)."""


def _gate(seed: int, key: str, attempt: int, salt: str) -> float:
    """Deterministic uniform [0, 1) draw for one (task, attempt) pair.

    Derived from a SHA-256 of the plan seed, the task's content key and
    the attempt number — never from global RNG state — so whether a fault
    fires does not depend on scheduling, worker identity or prior draws.
    """
    digest = hashlib.sha256(f"{seed}:{salt}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class Fault:
    """One declarative failure of a :class:`FaultPlan`.

    Parameters
    ----------
    action:
        ``"raise"`` (transient in-task exception), ``"delay"`` (sleep for
        ``delay_seconds`` before computing — models a straggler or hang),
        ``"kill"`` (terminate the worker process mid-task, exercising
        pool-rebuild recovery), ``"corrupt_cache"`` (flip bytes of a
        matching persisted cache entry on disk, exercising quarantine),
        ``"kill_process"`` (SIGKILL the *whole* elastic worker process
        right after a lease claim — the host-death drill; peers must let
        the lease expire and steal it), ``"stall_process"`` (sleep the
        whole process for ``delay_seconds`` after a claim, exercising
        straggler duplication) or ``"corrupt_lease"`` (overwrite matching
        lease files with garbage, exercising quarantine-and-reclaim).
    match:
        Substring of the executor's content-based task cache key this
        fault applies to (``""`` matches every task).
    attempts:
        Attempt numbers the fault fires on (default: first attempt only,
        so the supervisor's re-dispatch heals it deterministically).
    probability:
        Deterministic per-(task, attempt) firing probability — gated by a
        seeded hash of the task key, not by global randomness.
    delay_seconds:
        Sleep length for ``delay`` faults.
    exit_code:
        Worker exit status for ``kill`` faults.
    """

    action: str
    match: str = ""
    attempts: Tuple[int, ...] = (0,)
    probability: float = 1.0
    delay_seconds: float = 0.0
    exit_code: int = 86

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"fault action must be one of {ACTIONS}, got {self.action!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_seconds < 0.0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")

    def fires(self, seed: int, key: str, attempt: int) -> bool:
        """Whether this fault fires for ``(key, attempt)`` under ``seed``."""
        if self.match not in key:
            return False
        if attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        return _gate(seed, key, attempt, self.action + self.match) < self.probability


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of failures to inject into a campaign.

    Plans are picklable (they travel to worker processes through the pool
    initializer) and JSON round-trippable (the ``--chaos`` flag loads them
    from files).  :meth:`apply` is called by the execution layer once per
    task dispatch; disk-level ``corrupt_cache`` faults are applied once up
    front by :meth:`apply_disk`.
    """

    name: str = "custom"
    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def task_faults(self, key: str, attempt: int) -> Tuple[Fault, ...]:
        """The in-task faults firing for this ``(key, attempt)`` dispatch."""
        return tuple(
            fault
            for fault in self.faults
            if fault.action not in ("corrupt_cache", "corrupt_lease")
            and fault.action not in ELASTIC_ACTIONS
            and fault.fires(self.seed, key, attempt)
        )

    def apply(self, key: str, attempt: int, *, allow_kill: bool = True) -> None:
        """Inject every firing in-task fault for one task dispatch.

        ``delay`` faults sleep, ``raise`` faults raise
        :class:`InjectedFault`, ``kill`` faults terminate the process with
        ``os._exit`` (or raise :class:`InjectedFault` when
        ``allow_kill=False`` — the serial path, where the task and the
        supervisor share a process).
        """
        for fault in self.task_faults(key, attempt):
            if fault.action == "delay":
                time.sleep(fault.delay_seconds)
            elif fault.action == "raise":
                raise InjectedFault(
                    f"chaos[{self.name}]: injected failure in {key!r} "
                    f"(attempt {attempt})"
                )
            elif fault.action == "kill":
                if not allow_kill:
                    raise InjectedFault(
                        f"chaos[{self.name}]: kill demoted to transient failure "
                        f"in {key!r} (serial path, attempt {attempt})"
                    )
                os._exit(fault.exit_code)

    def elastic_faults(self, key: str, attempt: int) -> Tuple[Fault, ...]:
        """The whole-process faults firing for one ``"<worker>:<chunk>"`` claim."""
        return tuple(
            fault
            for fault in self.faults
            if fault.action in ELASTIC_ACTIONS and fault.fires(self.seed, key, attempt)
        )

    def apply_elastic(self, key: str, attempt: int) -> None:
        """Inject every firing whole-process fault for one lease claim.

        Called by the elastic scheduler right *after* a claim succeeds, so
        a ``kill_process`` fault leaves exactly the artifact a real crash
        would: a lease whose heartbeats have stopped.  ``key`` is
        ``"<worker>:<chunk>"``; the SIGKILL is genuine (no Python cleanup,
        no atexit, no flush), making the peers' expiry-and-steal recovery
        the only thing standing between the fault and a stalled campaign.
        """
        for fault in self.elastic_faults(key, attempt):
            if fault.action == "stall_process":
                time.sleep(fault.delay_seconds)
            elif fault.action == "kill_process":
                sigkill = getattr(signal, "SIGKILL", None)
                if sigkill is not None:
                    os.kill(os.getpid(), sigkill)
                os._exit(fault.exit_code)  # pragma: no cover - non-POSIX fallback

    def apply_leases(self, directory: Path | str) -> int:
        """Apply every ``corrupt_lease`` fault to lease files under ``directory``.

        Overwrites each matching ``*.lease`` with garbage that is not a
        lease document; returns the number of files corrupted.  The
        scheduler runs this once at startup (modelling corruption that
        happened while no process was alive) and must quarantine-and-
        reclaim every damaged lease.
        """
        directory = Path(directory)
        faults = [f for f in self.faults if f.action == "corrupt_lease"]
        if not faults or not directory.is_dir():
            return 0
        corrupted = 0
        for lease_path in sorted(directory.glob("*.lease")):
            if any(fault.match in lease_path.name for fault in faults):
                corrupt_lease_file(lease_path)
                corrupted += 1
        return corrupted

    def count_firing(self, keys, action: str, attempt: int = 0) -> int:
        """How many of ``keys`` a given ``action`` fires on at ``attempt``.

        Test helper: lets a chaos suite assert that the executor's
        retry/requeue counters match the plan it injected.
        """
        return sum(
            1
            for key in keys
            for fault in self.faults
            if fault.action == action and fault.fires(self.seed, key, attempt)
        )

    def apply_disk(self, directory: Path | str) -> int:
        """Apply every ``corrupt_cache`` fault to cache files under ``directory``.

        Flips bytes of matching entries inside each ``cache*.json`` (see
        :func:`corrupt_cache_entry`); returns the number of entries
        corrupted.  Run *before* the campaign opens its caches, modelling
        corruption that happened while no process was alive.
        """
        directory = Path(directory)
        corrupted = 0
        faults = [f for f in self.faults if f.action == "corrupt_cache"]
        if not faults:
            return corrupted
        for cache_path in sorted(directory.glob("cache*.json")):
            for fault in faults:
                corrupted += corrupt_cache_entry(cache_path, match=fault.match)
        return corrupted

    # ------------------------------------------------------------- round-trip
    def to_dict(self) -> Dict:
        """JSON-ready dict form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [
                {
                    "action": fault.action,
                    "match": fault.match,
                    "attempts": list(fault.attempts),
                    "probability": fault.probability,
                    "delay_seconds": fault.delay_seconds,
                    "exit_code": fault.exit_code,
                }
                for fault in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        """Build a plan from its :meth:`to_dict` form (strict field check)."""
        if not isinstance(payload, dict):
            raise TypeError(f"fault plan must be a mapping, got {type(payload).__name__}")
        unknown = set(payload) - {"name", "seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault-plan field(s): {sorted(unknown)}")
        faults = []
        for entry in payload.get("faults", []):
            if not isinstance(entry, dict):
                raise TypeError("each fault must be a mapping")
            bad = set(entry) - {
                "action", "match", "attempts", "probability",
                "delay_seconds", "exit_code",
            }
            if bad:
                raise ValueError(f"unknown fault field(s): {sorted(bad)}")
            entry = dict(entry)
            if "attempts" in entry:
                entry["attempts"] = tuple(int(a) for a in entry["attempts"])
            faults.append(Fault(**entry))
        return cls(
            name=str(payload.get("name", "custom")),
            seed=int(payload.get("seed", 0)),
            faults=tuple(faults),
        )


def corrupt_cache_entry(cache_path: Path | str, *, match: str = "") -> int:
    """Corrupt the stored bytes of matching entries in one cache file.

    Rewrites the raw JSON text of a :class:`~repro.store.PersistentResultCache`
    file, replacing each matching entry's payload with garbage that still
    parses as JSON — the per-entry SHA-256 digest check on load is what
    must catch it.  ``match=""`` corrupts the first entry.  Returns the
    number of entries corrupted (0 when the file is missing or empty).
    """
    cache_path = Path(cache_path)
    if not cache_path.exists():
        return 0
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except ValueError:
        return 0
    results = payload.get("results", {})
    corrupted = 0
    for key, entry in results.items():
        if match and match not in key:
            continue
        fields = entry.get("fields") if isinstance(entry, dict) and "fields" in entry else entry
        if isinstance(fields, dict) and "accuracy" in fields:
            fields["accuracy"] = -1.0  # silently wrong value the digest must catch
            corrupted += 1
        if not match:
            break
    if corrupted:
        cache_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
    return corrupted


def corrupt_lease_file(path: Path | str) -> None:
    """Overwrite one lease file with bytes that are not a lease document.

    The replacement still *looks* alive (fresh mtime), so the scheduler
    must classify it as corrupt by content — quarantine it aside and
    reclaim the chunk — rather than waiting for expiry.
    """
    Path(path).write_text('{"corrupt', encoding="utf-8")


def truncate_file(path: Path | str, keep_bytes: int = 16) -> None:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (torn-write stand-in)."""
    path = Path(path)
    data = path.read_bytes()[:keep_bytes]
    path.write_bytes(data)


#: Registered plans addressable by name from the ``--chaos`` CLI flag.
#: ``ci-plan`` is the chaos-smoke campaign: a deterministic sprinkle of
#: transient failures and short delays (plus one demoted kill) over ~¼ of
#: first attempts — enough to exercise retry, straggler and rebuild paths
#: at smoke scale without stretching CI wall-clock.
CHAOS_PLANS: Dict[str, FaultPlan] = {
    "ci-plan": FaultPlan(
        name="ci-plan",
        seed=2022,
        faults=(
            Fault(action="raise", probability=0.25),
            Fault(action="delay", probability=0.25, delay_seconds=0.05),
            Fault(action="kill", probability=0.05),
        ),
    ),
    "kill-once": FaultPlan(
        name="kill-once",
        faults=(Fault(action="kill", probability=0.2),),
    ),
}


def load_fault_plan(spec: str) -> FaultPlan:
    """Resolve a ``--chaos`` argument: a registered name or a JSON file path."""
    if spec in CHAOS_PLANS:
        return CHAOS_PLANS[spec]
    path = Path(spec)
    if path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise ValueError(f"chaos plan {spec}: not valid JSON ({error})") from None
        return FaultPlan.from_dict(payload)
    raise ValueError(
        f"unknown chaos plan {spec!r}; registered: {sorted(CHAOS_PLANS)} "
        "(or pass a JSON file path)"
    )


#: Plan installed in the current *worker* process (None = no chaos).
_WORKER_PLAN: Optional[FaultPlan] = None


def install_worker_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as this worker process's active fault plan."""
    global _WORKER_PLAN
    _WORKER_PLAN = plan


def worker_plan() -> Optional[FaultPlan]:
    """The fault plan active in this worker process (None = no chaos)."""
    return _WORKER_PLAN
