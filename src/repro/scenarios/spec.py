"""Declarative attack-scenario specifications.

A :class:`ScenarioSpec` names everything one threat scenario needs — the
attack *family* (which network parameter a supply fault corrupts), fixed
parameters, a swept parameter grid, an evaluation strategy (dense grid or
adaptive bisection), defenses to co-evaluate, and the engine/scale it runs
at — as plain data.  Specs round-trip losslessly through ``dict`` / JSON /
YAML, so scenarios can live in version-controlled files and be validated
before any pipeline run starts.

The translation from a spec to concrete :class:`~repro.attacks.attacks`
objects happens in :meth:`ScenarioSpec.variants`: the cartesian product of
the grid (in declaration order) becomes one attack per point, and each
requested defense adds a *defended* variant whose parameter excursion is
scaled by the defense's residual factor
(:func:`repro.defenses.evaluation.residual_defense_factors`).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.attacks.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
    PowerAttack,
)
from repro.attacks.injector import FaultSiteSelection
from repro.utils.validation import check_in_choices

#: Evaluation strategies a spec may request.
STRATEGIES = ("grid", "bisect")

#: Characters allowed in scenario names (they become artifact file names).
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _value_tuple(values) -> tuple:
    """Normalise a spec-field value list into a tuple.

    A bare scalar (string or number, the natural YAML spelling for a
    single entry) becomes a one-element tuple instead of being char-split
    or raising TypeError; anything else must be an iterable.
    """
    if isinstance(values, (str, int, float)) and not isinstance(values, bool):
        return (values,)
    try:
        return tuple(values)
    except TypeError:
        raise ValueError(
            f"expected a value or list of values, got {values!r}"
        ) from None


def check_scenario_name(name: str) -> str:
    """Validate a scenario name (it is interpolated into artifact paths).

    Names must be non-empty, start with an alphanumeric character and use
    only ``[A-Za-z0-9._-]`` — a file-loaded spec named ``../evil`` must
    not write artifacts outside the results directory.
    """
    if not name:
        raise ValueError("a scenario needs a non-empty name")
    if not _NAME_PATTERN.match(name) or ".." in name:
        raise ValueError(
            f"invalid scenario name {name!r}: names become artifact file "
            "names and may only contain letters, digits, '.', '_' and '-' "
            "(starting with a letter or digit)"
        )
    return name

#: Engine choices (mirrors ``repro.core.pipeline.ENGINES``; ``"sparse"``
#: steers the circuit tier and is treated as ``"auto"`` by the SNN tier).
ENGINES = ("auto", "batched", "scalar", "sparse")


@dataclass(frozen=True)
class AttackFamily:
    """One targetable (layer, parameter) fault family.

    ``builder`` turns a flat parameter dict into a concrete attack;
    ``parameters`` maps every accepted parameter name to its *nominal*
    (no-fault) value, which is what defense co-evaluation scales
    excursions against; ``primary`` names the parameter that defenses act
    on and bisection searches over by default; ``categorical`` lists the
    parameters whose values are strings rather than numbers.
    """

    name: str
    builder: Callable[..., PowerAttack]
    parameters: Mapping[str, float]
    primary: str
    categorical: Tuple[str, ...] = ()
    description: str = ""


def _selection(value) -> FaultSiteSelection:
    if isinstance(value, FaultSiteSelection):
        return value
    return FaultSiteSelection(str(value))


def _build_input_gain(**params) -> PowerAttack:
    return Attack1InputSpikeCorruption(
        theta_change=float(params["theta_change"]),
        fraction=float(params.get("fraction", 1.0)),
        selection=_selection(params.get("selection", "random")),
    )


def _build_layer_threshold(**params) -> PowerAttack:
    layer = check_in_choices(
        params.get("layer", "excitatory"), "layer", ("excitatory", "inhibitory")
    )
    cls = Attack2ExcitatoryThreshold if layer == "excitatory" else Attack3InhibitoryThreshold
    return cls(
        threshold_change=float(params["threshold_change"]),
        fraction=float(params.get("fraction", 1.0)),
        selection=_selection(params.get("selection", "random")),
    )


def _build_both_thresholds(**params) -> PowerAttack:
    return Attack4BothLayerThreshold(threshold_change=float(params["threshold_change"]))


def _build_global_vdd(**params) -> PowerAttack:
    return Attack5GlobalSupply(
        vdd=float(params["vdd"]),
        neuron_type=str(params.get("neuron_type", "if_amplifier")),
    )


#: Registry of attack families addressable from a spec.  The nominal values
#: are the "no corruption" points: changes are 0, the supply is 1 V.
FAMILIES: Dict[str, AttackFamily] = {
    family.name: family
    for family in (
        AttackFamily(
            name="input_gain",
            builder=_build_input_gain,
            parameters={"theta_change": 0.0, "fraction": 1.0, "selection": "random"},
            primary="theta_change",
            categorical=("selection",),
            description="Driver-domain VDD fault scaling the per-spike charge "
            "(Attack 1).",
        ),
        AttackFamily(
            name="layer_threshold",
            builder=_build_layer_threshold,
            parameters={
                "threshold_change": 0.0,
                "fraction": 1.0,
                "layer": "excitatory",
                "selection": "random",
            },
            primary="threshold_change",
            categorical=("layer", "selection"),
            description="Laser-localised threshold fault on one layer "
            "(Attacks 2/3; the layer itself is sweepable).",
        ),
        AttackFamily(
            name="both_thresholds",
            builder=_build_both_thresholds,
            parameters={"threshold_change": 0.0},
            primary="threshold_change",
            description="Shared-domain threshold fault on both layers (Attack 4).",
        ),
        AttackFamily(
            name="global_vdd",
            builder=_build_global_vdd,
            parameters={"vdd": 1.0, "neuron_type": "if_amplifier"},
            primary="vdd",
            categorical=("neuron_type",),
            description="Black-box fault on the single shared supply (Attack 5).",
        ),
    )
}


@dataclass(frozen=True)
class BisectionSettings:
    """Adaptive-search settings for ``strategy="bisect"`` specs.

    The spec's grid must sweep exactly one parameter; its values, **in
    declaration order**, are the candidate collapse thresholds and must be
    ordered from *mildest to most severe corruption* — numerically
    ascending for positive excursions (``0.025 … 0.2``), descending for
    negative ones (``-0.025 … -0.2``) or for a drooping supply
    (``0.975 … 0.8``).  The search assumes the relative degradation is
    monotone non-decreasing along that order and finds the first value
    whose degradation reaches ``target_degradation`` with O(log n)
    pipeline runs instead of n.  Values that are not strictly monotone in
    either direction are rejected at validation time.
    """

    target_degradation: float = 0.5
    parameter: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.target_degradation, (int, float)) or isinstance(
            self.target_degradation, bool
        ):
            raise ValueError(
                "target_degradation must be a number in (0, 1], got "
                f"{self.target_degradation!r}"
            )
        if not (0.0 < self.target_degradation <= 1.0):
            raise ValueError(
                "target_degradation must be in (0, 1], got "
                f"{self.target_degradation!r}"
            )


@dataclass(frozen=True)
class ScenarioVariant:
    """One concrete grid point of a scenario: parameters and the attack.

    ``defense`` is empty for the undefended variant and carries the
    defense name (with ``defense_factor`` the surviving fraction of the
    excursion) for co-evaluated defended variants.  ``label_extra``
    disambiguates variants whose attack labels coincide — swept
    categorical axes (e.g. ``selection``) that the attack's own ``label()``
    does not encode.
    """

    params: Tuple[Tuple[str, object], ...]
    attack: PowerAttack
    defense: str = ""
    defense_factor: float = 1.0
    label_extra: str = ""

    @property
    def label(self) -> str:
        """Display label: attack label + categorical axes + defense."""
        label = self.attack.label()
        if self.label_extra:
            label = f"{label}[{self.label_extra}]"
        if self.defense:
            label = f"{label}|{self.defense}"
        return label


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative threat scenario.

    Attributes
    ----------
    name:
        Registry name (unique).
    family:
        Attack family key (see :data:`FAMILIES`).
    title, description, tags:
        Presentation metadata (tags feed ``scenarios list`` filtering).
    fixed:
        Parameters held constant across the sweep.
    grid:
        Swept parameters: name → tuple of values.  The cartesian product
        in declaration order is the scenario's variant list.
    strategy:
        ``"grid"`` evaluates the full product; ``"bisect"`` runs the
        adaptive collapse-threshold search of :class:`BisectionSettings`.
    search:
        Bisection settings (required when ``strategy="bisect"``).
    defenses:
        Defense names co-evaluated against every grid point (see
        :func:`repro.defenses.evaluation.residual_defense_factors`).
    engine:
        SNN engine for this scenario (``auto``/``batched``/``scalar``/
        ``sparse``; ``sparse`` is a circuit-tier backend choice that the
        SNN tier runs as ``auto``).
    scale:
        Optional scale preset pin; ``None`` defers to the runner/CLI.
    """

    name: str
    family: str
    title: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()
    fixed: Mapping[str, object] = field(default_factory=dict)
    grid: Mapping[str, Tuple[object, ...]] = field(default_factory=dict)
    strategy: str = "grid"
    search: Optional[BisectionSettings] = None
    defenses: Tuple[str, ...] = ()
    engine: str = "auto"
    scale: Optional[str] = None

    # ------------------------------------------------------------- validation
    def __post_init__(self) -> None:
        check_scenario_name(self.name)
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown attack family {self.family!r}; "
                f"known: {', '.join(sorted(FAMILIES))}"
            )
        check_in_choices(self.strategy, "strategy", STRATEGIES)
        check_in_choices(self.engine, "engine", ENGINES)
        family = FAMILIES[self.family]
        # Freeze the mappings so the (frozen) spec is hashable-by-content
        # and cannot be mutated after validation.  Scalars are normalised
        # to one-element tuples — the natural YAML spellings
        # ``tags: attack`` and ``grid: {selection: random}`` must not be
        # char-split by tuple() into ('a','t','t','a','c','k').
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(
            self,
            "grid",
            {
                key: _value_tuple(values)
                for key, values in dict(self.grid).items()
            },
        )
        object.__setattr__(self, "tags", _value_tuple(self.tags))
        object.__setattr__(self, "defenses", _value_tuple(self.defenses))
        for source, params in (("fixed", self.fixed), ("grid", self.grid)):
            unknown = sorted(set(params) - set(family.parameters))
            if unknown:
                raise ValueError(
                    f"scenario {self.name!r}: unknown {source} parameter(s) "
                    f"{', '.join(unknown)} for family {self.family!r} "
                    f"(accepted: {', '.join(sorted(family.parameters))})"
                )
        overlap = sorted(set(self.fixed) & set(self.grid))
        if overlap:
            raise ValueError(
                f"scenario {self.name!r}: parameter(s) {', '.join(overlap)} "
                "appear in both fixed and grid"
            )
        if not self.grid:
            raise ValueError(f"scenario {self.name!r}: the grid sweeps nothing")
        if family.primary not in self.fixed and family.primary not in self.grid:
            raise ValueError(
                f"scenario {self.name!r}: family {self.family!r} requires "
                f"parameter {family.primary!r} in fixed or grid"
            )
        for key, value in self.fixed.items():
            if key not in family.categorical and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                raise ValueError(
                    f"scenario {self.name!r}: fixed parameter {key!r} must "
                    f"be numeric, got {value!r}"
                )
        for key, values in self.grid.items():
            if len(values) == 0:
                raise ValueError(
                    f"scenario {self.name!r}: grid parameter {key!r} has no values"
                )
            if key not in family.categorical:
                bad = [v for v in values if not isinstance(v, (int, float)) or isinstance(v, bool)]
                if bad:
                    raise ValueError(
                        f"scenario {self.name!r}: grid parameter {key!r} must "
                        f"be numeric, got {bad[0]!r}"
                    )
            if len(set(values)) != len(values):
                raise ValueError(
                    f"scenario {self.name!r}: grid parameter {key!r} repeats values"
                )
        if self.strategy == "bisect":
            if self.defenses:
                raise ValueError(
                    f"scenario {self.name!r}: defenses cannot be co-evaluated "
                    "in a bisect search (the probe sequence is undefended); "
                    "use a grid scenario for attack-under-defense matrices"
                )
            if self.search is None:
                object.__setattr__(self, "search", BisectionSettings())
            if len(self.grid) != 1:
                raise ValueError(
                    f"scenario {self.name!r}: bisect needs exactly one swept "
                    f"parameter, got {len(self.grid)}"
                )
            parameter = self.search.parameter or next(iter(self.grid))
            if parameter not in self.grid:
                raise ValueError(
                    f"scenario {self.name!r}: bisect parameter {parameter!r} "
                    "is not the swept grid parameter"
                )
            if parameter in family.categorical:
                raise ValueError(
                    f"scenario {self.name!r}: cannot bisect over categorical "
                    f"parameter {parameter!r}"
                )
            values = [float(v) for v in self.grid[parameter]]
            ascending = all(a < b for a, b in zip(values, values[1:]))
            descending = all(a > b for a, b in zip(values, values[1:]))
            if len(values) > 1 and not (ascending or descending):
                raise ValueError(
                    f"scenario {self.name!r}: bisect candidate values must be "
                    "strictly monotone, declared mildest corruption first "
                    f"(got {values})"
                )
            object.__setattr__(
                self,
                "search",
                dataclasses.replace(self.search, parameter=parameter),
            )
        if self.defenses:
            from repro.defenses.evaluation import residual_defense_factors

            known = residual_defense_factors()
            unknown = sorted(set(self.defenses) - set(known))
            if unknown:
                raise ValueError(
                    f"scenario {self.name!r}: unknown defense(s) "
                    f"{', '.join(unknown)} (known: {', '.join(sorted(known))})"
                )

    # -------------------------------------------------------------- expansion
    @property
    def family_spec(self) -> AttackFamily:
        """The resolved :class:`AttackFamily` this spec targets."""
        return FAMILIES[self.family]

    def grid_points(self) -> List[Dict[str, object]]:
        """Every grid point as a flat parameter dict (cartesian product).

        The product iterates in grid-declaration order with the *last*
        declared parameter varying fastest, and includes the fixed
        parameters, so each dict fully determines one attack.
        """
        names = list(self.grid)
        points = []
        for combo in itertools.product(*(self.grid[name] for name in names)):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            points.append(params)
        return points

    def build_attack(self, params: Mapping[str, object]) -> PowerAttack:
        """Construct the concrete attack for one parameter dict."""
        return self.family_spec.builder(**params)

    def _defended_params(
        self, params: Mapping[str, object], factor: float
    ) -> Dict[str, object]:
        """Scale the primary parameter's excursion from nominal by ``factor``."""
        family = self.family_spec
        nominal = float(family.parameters[family.primary])
        value = float(params.get(family.primary, nominal))
        defended = dict(params)
        defended[family.primary] = nominal + factor * (value - nominal)
        return defended

    def _label_extra(self, point: Mapping[str, object]) -> str:
        """Disambiguating label suffix: the swept categorical axes.

        Attack ``label()`` strings encode the numeric parameters but not
        categorical ones like ``selection`` — two variants differing only
        there would otherwise render identically in tables and cases.
        """
        swept_categorical = [
            key for key in self.grid if key in self.family_spec.categorical
        ]
        return ",".join(f"{key}={point[key]}" for key in swept_categorical)

    def variants(self) -> List[ScenarioVariant]:
        """The scenario's full variant list: undefended grid + defended copies.

        Order is deterministic — all undefended points in grid order, then
        per defense (in declaration order) the defended copies — which is
        what sharding (:mod:`repro.exec.shard`) slices.
        """
        points = self.grid_points()
        variants = [
            ScenarioVariant(
                params=tuple(sorted(point.items(), key=lambda kv: kv[0])),
                attack=self.build_attack(point),
                label_extra=self._label_extra(point),
            )
            for point in points
        ]
        if self.defenses:
            from repro.defenses.evaluation import residual_defense_factors

            factors = residual_defense_factors()
            for defense in self.defenses:
                factor = factors[defense]
                for point in points:
                    defended = self._defended_params(point, factor)
                    variants.append(
                        ScenarioVariant(
                            params=tuple(sorted(defended.items(), key=lambda kv: kv[0])),
                            attack=self.build_attack(defended),
                            defense=defense,
                            defense_factor=factor,
                            label_extra=self._label_extra(defended),
                        )
                    )
        return variants

    # ----------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, object]:
        """A JSON/YAML-ready plain-dict form that round-trips exactly."""
        document: Dict[str, object] = {
            "name": self.name,
            "family": self.family,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
            "fixed": dict(self.fixed),
            "grid": {key: list(values) for key, values in self.grid.items()},
            "strategy": self.strategy,
            "defenses": list(self.defenses),
            "engine": self.engine,
            "scale": self.scale,
        }
        if self.search is not None:
            document["search"] = {
                "target_degradation": self.search.target_degradation,
                "parameter": self.search.parameter,
            }
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "ScenarioSpec":
        """Build and validate a spec from a plain dict (JSON/YAML payload).

        Unknown keys raise a :class:`ValueError` naming them — a typo in a
        scenario file fails loudly instead of silently dropping a field.
        """
        if not isinstance(document, Mapping):
            raise ValueError(
                f"a scenario document must be a mapping, got {type(document).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario field(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(known))})"
            )
        required = {
            f.name
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        }
        missing = sorted(required - set(document))
        if missing:
            raise ValueError(
                f"scenario document is missing required field(s): "
                f"{', '.join(missing)}"
            )
        payload = dict(document)
        search = payload.pop("search", None)
        if search is not None:
            if not isinstance(search, Mapping):
                raise ValueError("scenario 'search' must be a mapping")
            unknown = sorted(set(search) - {"target_degradation", "parameter"})
            if unknown:
                raise ValueError(
                    f"unknown search field(s): {', '.join(unknown)}"
                )
            search = BisectionSettings(**search)
        return cls(search=search, **payload)


def load_scenario_file(path: Path | str) -> List[ScenarioSpec]:
    """Load one or more specs from a ``.json`` / ``.yaml`` / ``.yml`` file.

    The document may be a single scenario mapping or a list of them.
    YAML support requires PyYAML; without it, a clear error points to the
    JSON alternative instead of an ImportError deep in a parse.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - environment-dependent
            raise RuntimeError(
                f"cannot load {path}: PyYAML is not installed; "
                "use the JSON form of the scenario file instead"
            ) from None
        try:
            payload = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ValueError(f"{path} is not valid YAML: {error}") from None
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path} is not valid JSON: {error}") from None
    documents = payload if isinstance(payload, list) else [payload]
    return [ScenarioSpec.from_dict(document) for document in documents]
