"""Backward-Euler transient analysis.

The transient engine advances the circuit with a fixed time step, solving the
nonlinear system at each step with the previous solution as the Newton
starting point.  Backward Euler is unconditionally stable, which matters for
the stiff positive-feedback loop inside the Axon-Hillock neuron.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analog.devices import Capacitor
from repro.analog.mna import (
    ConvergenceError,
    MNASystem,
    SolverOptions,
    StampState,
    newton_solve,
)
from repro.analog.netlist import Circuit
from repro.analog.units import ValueLike, parse_value
from repro.analog.waveform import Waveform
from repro.utils.validation import check_positive


@dataclass
class TransientResult:
    """Time-domain solution of a circuit.

    Node voltages (and voltage-source branch currents) are stored for every
    time point.  Use :meth:`voltage` / :meth:`waveform` to extract traces.
    """

    circuit_name: str
    time: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Voltage trace of ``node`` (zeros for ground)."""
        if node in self.node_voltages:
            return self.node_voltages[node]
        return np.zeros_like(self.time)

    def current(self, device_name: str) -> np.ndarray:
        """Branch-current trace of a voltage source or inductor."""
        return self.branch_currents[device_name]

    def waveform(self, node: str) -> Waveform:
        """The voltage trace of ``node`` wrapped as a :class:`Waveform`."""
        return Waveform(self.time, self.voltage(node), name=node)

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the last time point."""
        return {node: float(trace[-1]) for node, trace in self.node_voltages.items()}

    def __len__(self) -> int:
        return len(self.time)


def transient_analysis(
    circuit: Circuit,
    *,
    stop_time: ValueLike,
    time_step: ValueLike,
    initial_voltages: Optional[Dict[str, float]] = None,
    use_initial_conditions: bool = False,
    record_nodes: Optional[Sequence[str]] = None,
    options: Optional[SolverOptions] = None,
) -> TransientResult:
    """Run a fixed-step backward-Euler transient simulation.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    stop_time, time_step:
        Simulation length and step (SPICE-style strings accepted,
        e.g. ``"2u"``, ``"1n"``).
    initial_voltages:
        Optional starting node voltages.  When ``use_initial_conditions`` is
        False these only seed the DC operating-point solve.
    use_initial_conditions:
        If True, skip the initial DC solve and start directly from
        ``initial_voltages`` (unspecified nodes start at 0 V) plus any
        capacitor ``initial_voltage`` attributes.
    record_nodes:
        Restrict recording to these nodes (all nodes by default).
    """
    stop_time = check_positive(parse_value(stop_time), "stop_time")
    time_step = check_positive(parse_value(time_step), "time_step")
    if time_step > stop_time:
        raise ValueError("time_step must not exceed stop_time")

    system = MNASystem(circuit)
    options = options or SolverOptions()

    initial = np.zeros(system.size)
    if use_initial_conditions:
        if initial_voltages:
            for node, value in initial_voltages.items():
                idx = system.index_of(node)
                if idx >= 0:
                    initial[idx] = value
        for device in circuit.devices:
            if isinstance(device, Capacitor) and device.initial_voltage is not None:
                a, b = device.nodes
                idx_a, idx_b = system.index_of(a), system.index_of(b)
                if idx_a >= 0 and idx_b < 0:
                    initial[idx_a] = device.initial_voltage
    else:
        guess = np.zeros(system.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                idx = system.index_of(node)
                if idx >= 0:
                    guess[idx] = value
        dc_state = StampState(system=system, analysis="dc", time=0.0)
        initial = newton_solve(system, dc_state, guess, options)

    n_steps = int(round(stop_time / time_step))
    times = np.linspace(0.0, n_steps * time_step, n_steps + 1)

    recorded = list(record_nodes) if record_nodes is not None else system.node_names
    traces: Dict[str, List[float]] = {node: [] for node in recorded}
    branch_devices = [d for d in circuit.devices if d.n_branches]
    branch_traces: Dict[str, List[float]] = {d.name: [] for d in branch_devices}

    def record(solution: np.ndarray) -> None:
        for node in recorded:
            traces[node].append(system.voltage_of(solution, node))
        for device in branch_devices:
            branch_traces[device.name].append(system.branch_current_of(solution, device))

    solution = initial
    record(solution)
    for step in range(1, n_steps + 1):
        solution = _advance(
            system, solution, times[step - 1], times[step], options, depth=0
        )
        record(solution)

    return TransientResult(
        circuit_name=circuit.name,
        time=times,
        node_voltages={node: np.asarray(v) for node, v in traces.items()},
        branch_currents={name: np.asarray(v) for name, v in branch_traces.items()},
    )


#: Maximum number of recursive step subdivisions attempted on a convergence
#: failure (each level splits the interval into :data:`_SUBDIVISION_FACTOR`).
_MAX_SUBDIVISION_DEPTH = 4
_SUBDIVISION_FACTOR = 4


def _advance(
    system: MNASystem,
    solution: np.ndarray,
    t_start: float,
    t_stop: float,
    options: SolverOptions,
    *,
    depth: int,
) -> np.ndarray:
    """Advance the circuit from ``t_start`` to ``t_stop`` in one step.

    If Newton-Raphson fails (typically during a regenerative transition such
    as the Axon-Hillock firing edge), the interval is subdivided recursively
    with a smaller local time step.
    """
    state = StampState(
        system=system,
        analysis="transient",
        time=t_stop,
        dt=t_stop - t_start,
        previous=solution,
    )
    try:
        return newton_solve(system, state, solution, options)
    except ConvergenceError:
        if depth >= _MAX_SUBDIVISION_DEPTH:
            raise
    sub_times = np.linspace(t_start, t_stop, _SUBDIVISION_FACTOR + 1)
    for sub_start, sub_stop in zip(sub_times[:-1], sub_times[1:]):
        solution = _advance(
            system, solution, float(sub_start), float(sub_stop), options, depth=depth + 1
        )
    return solution
