"""Synaptic plasticity rules.

The Diehl & Cook network trains its input→excitatory projection with a
trace-based pair STDP rule ("PostPre" in BindsNET terms): a pre-synaptic
spike depresses the synapse in proportion to the post-synaptic trace, a
post-synaptic spike potentiates it in proportion to the pre-synaptic trace.
The paper trains with ``nu = (0.0004, 0.0002)`` for pre- and post-synaptic
events respectively.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class LearningRule:
    """Base class for plasticity rules."""

    def update(self, connection) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NoOp(LearningRule):
    """A rule that leaves the weights untouched (used during evaluation)."""

    def update(self, connection) -> None:
        return None


class PostPre(LearningRule):
    """Pair-based STDP with pre-synaptic depression and post-synaptic potentiation.

    Parameters
    ----------
    nu_pre:
        Learning rate applied on pre-synaptic spikes (depression).
    nu_post:
        Learning rate applied on post-synaptic spikes (potentiation).
    """

    def __init__(self, nu_pre: float = 1e-4, nu_post: float = 1e-2) -> None:
        self.nu_pre = check_positive(nu_pre, "nu_pre", strict=False)
        self.nu_post = check_positive(nu_post, "nu_post", strict=False)

    def update(self, connection) -> None:
        source, target = connection.source, connection.target
        # Depression: every pre-synaptic spike moves its outgoing weights
        # towards zero in proportion to the recent post-synaptic activity.
        if self.nu_pre and source.spikes.any():
            connection.w[source.spikes, :] -= self.nu_pre * target.traces[None, :]
        # Potentiation: every post-synaptic spike strengthens the synapses
        # from recently active inputs.
        if self.nu_post and target.spikes.any():
            connection.w[:, target.spikes] += self.nu_post * source.traces[:, None]


class WeightDependentPostPre(LearningRule):
    """PostPre with soft weight bounds.

    Potentiation is scaled by the remaining headroom ``(wmax - w)`` and
    depression by the distance from the floor ``(w - wmin)``, which keeps
    weights away from the hard clamp and is the variant Diehl & Cook describe
    for their "weight dependence" experiments.
    """

    def __init__(self, nu_pre: float = 1e-4, nu_post: float = 1e-2) -> None:
        self.nu_pre = check_positive(nu_pre, "nu_pre", strict=False)
        self.nu_post = check_positive(nu_post, "nu_post", strict=False)

    def update(self, connection) -> None:
        source, target = connection.source, connection.target
        wmin = connection.wmin if np.isfinite(connection.wmin) else 0.0
        wmax = connection.wmax if np.isfinite(connection.wmax) else 1.0
        span = max(wmax - wmin, 1e-12)
        if self.nu_pre and source.spikes.any():
            rows = connection.w[source.spikes, :]
            connection.w[source.spikes, :] -= (
                self.nu_pre * target.traces[None, :] * (rows - wmin) / span
            )
        if self.nu_post and target.spikes.any():
            cols = connection.w[:, target.spikes]
            connection.w[:, target.spikes] += (
                self.nu_post * source.traces[:, None] * (wmax - cols) / span
            )
