"""Serving hot-path benchmark: single-example vs microbatched scoring.

The workload is serving-shaped: ``N_REQUESTS`` single-example requests,
each Poisson-encoded with the keyed per-request stream
(:meth:`~repro.snn.serving.ScoringEngine.encode_request`), scored through
one snapshot-hydrated :class:`~repro.snn.serving.ScoringEngine`:

* **single-example** — one ``score_rasters`` call per request, the latency
  a no-batching front-end would pay.  Per-request wall-clock latencies
  give the p50/p99 and examples/sec baselines.
* **microbatched** — the same requests coalesced through
  :class:`~repro.exec.microbatch.Microbatcher` into lockstep passes of
  ``EXAMPLE_CHUNK``; per-example latency is each flush's wall-clock cost
  amortised over its occupancy.

Both paths produce identical predictions (per-lane independence of the
batched engine — asserted here, pinned bit-exactly by
``tests/test_snn_snapshot.py``), so the ``>= MIN_SERVING_SPEEDUP`` floor
is a pure-throughput claim.  The measured p50/p99 latencies and
examples/sec land in ``extra_info`` for the nightly ``BENCH_<date>.json``
snapshots; ``tests/test_bench_snapshots.py`` checks their schema.
"""

import time

import numpy as np
import pytest

from repro.exec.microbatch import Microbatcher
from repro.snn.serving import ScoringEngine
from repro.snn.snapshot import snapshot_from_pipeline

#: Serving requests per measured pass.
N_REQUESTS = 96

#: Lockstep batch size of the microbatched path (the claim holds for any
#: chunk >= 32; 64 is the pipeline's example-batching default).
EXAMPLE_CHUNK = 64

#: Throughput floor: microbatched examples/sec over single-example
#: examples/sec (measured ~10-30x on the reference container; the floor is
#: kept conservative for noisy CI runners).
MIN_SERVING_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def serving_engine(pipeline) -> ScoringEngine:
    """A scoring engine over a freshly-trained benchmark-scale snapshot."""
    snapshot = snapshot_from_pipeline(pipeline)
    return ScoringEngine(snapshot, example_chunk=EXAMPLE_CHUNK)


@pytest.fixture(scope="module")
def request_rasters(serving_engine, pipeline):
    """Keyed-encoded request rasters over the held-out images."""
    images = pipeline.eval_images
    images = np.concatenate([images] * (1 + N_REQUESTS // len(images)))[:N_REQUESTS]
    return [
        serving_engine.encode_request(image, request_id)
        for request_id, image in enumerate(images)
    ]


def _percentile_ms(latencies, q):
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def test_microbatched_scoring_beats_single_example(
    benchmark, serving_engine, request_rasters
):
    # Single-example baseline: one engine pass per request.
    single_latencies = []
    single_labels = []
    for raster in request_rasters:
        start = time.perf_counter()
        result = serving_engine.score_rasters(raster)
        single_latencies.append(time.perf_counter() - start)
        single_labels.append(result.labels[0])
    single_seconds = sum(single_latencies)

    def serve_microbatched():
        flush_latencies = []

        def score_batch(payloads):
            start = time.perf_counter()
            labels = list(serving_engine.score_rasters(np.stack(payloads)).labels)
            elapsed = time.perf_counter() - start
            flush_latencies.extend([elapsed / len(payloads)] * len(payloads))
            return labels

        batcher = Microbatcher(score_batch, example_chunk=EXAMPLE_CHUNK)
        for request_id, raster in enumerate(request_rasters):
            batcher.submit(request_id, raster)
        batcher.drain()
        labels = [batcher.result(rid) for rid in range(len(request_rasters))]
        return labels, flush_latencies, batcher.stats

    micro_labels, micro_latencies, stats = benchmark.pedantic(
        serve_microbatched, rounds=3, iterations=1
    )
    micro_seconds = benchmark.stats.stats.mean

    # Coalescing never changes predictions.
    assert np.array_equal(np.asarray(micro_labels), np.asarray(single_labels))
    assert stats.microbatch_requests == N_REQUESTS

    speedup = single_seconds / micro_seconds
    benchmark.extra_info["n_requests"] = N_REQUESTS
    benchmark.extra_info["example_chunk"] = EXAMPLE_CHUNK
    benchmark.extra_info["mean_occupancy"] = stats.mean_microbatch_occupancy()
    benchmark.extra_info["single_p50_ms"] = _percentile_ms(single_latencies, 50)
    benchmark.extra_info["single_p99_ms"] = _percentile_ms(single_latencies, 99)
    benchmark.extra_info["single_examples_per_sec"] = N_REQUESTS / single_seconds
    benchmark.extra_info["micro_p50_ms"] = _percentile_ms(micro_latencies, 50)
    benchmark.extra_info["micro_p99_ms"] = _percentile_ms(micro_latencies, 99)
    benchmark.extra_info["micro_examples_per_sec"] = N_REQUESTS / micro_seconds
    benchmark.extra_info["serving_speedup"] = speedup
    assert speedup >= MIN_SERVING_SPEEDUP, (
        f"microbatched serving speedup {speedup:.2f}x below the "
        f"{MIN_SERVING_SPEEDUP}x floor at chunk {EXAMPLE_CHUNK}"
    )
