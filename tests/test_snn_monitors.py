"""Regression tests for the preallocated monitor buffers.

The monitors used to append per-step copies to a Python list and re-stack
on every read; they now write into buffers preallocated from the run's
``time_steps`` (with a growth fallback for standalone ``record()`` calls).
These tests pin the observable behaviour to the list-append reference.
"""

import numpy as np

from repro.snn import InputNodes, LIFNodes, SpikeMonitor, StateMonitor
from repro.snn.models import DiehlAndCook2015, DiehlAndCookParameters


class _ListAppendSpikeMonitor:
    """The previous implementation, kept as the behavioural reference."""

    def __init__(self):
        self._records = []

    def record(self, nodes):
        self._records.append(nodes.spikes.copy())

    def get(self):
        if not self._records:
            return np.zeros((0, 0), dtype=bool)
        return np.stack(self._records)


def drive_layer(steps=25, seed=0):
    rng = np.random.default_rng(seed)
    nodes = LIFNodes(6)
    for _ in range(steps):
        nodes.step(rng.random(6) * 30.0)
        yield nodes


class TestSpikeMonitorRegression:
    def test_get_matches_list_append_reference(self):
        monitor = SpikeMonitor("layer")
        reference = _ListAppendSpikeMonitor()
        for nodes in drive_layer():
            monitor.record(nodes)
            reference.record(nodes)
        assert np.array_equal(monitor.get(), reference.get())
        assert monitor.get().dtype == reference.get().dtype
        assert np.array_equal(monitor.spike_counts(), reference.get().sum(axis=0))

    def test_growth_fallback_beyond_reservation(self):
        monitor = SpikeMonitor("layer")
        nodes = LIFNodes(4)
        monitor.reserve(2, nodes)
        reference = _ListAppendSpikeMonitor()
        rng = np.random.default_rng(3)
        for _ in range(150):  # far beyond the reserved capacity
            nodes.spikes = rng.random(4) < 0.4
            monitor.record(nodes)
            reference.record(nodes)
        assert np.array_equal(monitor.get(), reference.get())

    def test_reset_reuses_buffer_and_clears_data(self):
        monitor = SpikeMonitor("layer")
        nodes = LIFNodes(4)
        nodes.spikes = np.array([True, False, True, False])
        monitor.record(nodes)
        buffer_before = monitor._buffer
        monitor.reset()
        assert monitor.get().size == 0
        assert np.array_equal(monitor.spike_counts(), np.zeros(0, dtype=int))
        nodes.spikes = np.array([False, True, False, True])
        monitor.record(nodes)
        assert monitor._buffer is buffer_before  # no reallocation on reuse
        assert np.array_equal(monitor.get(), [[False, True, False, True]])

    def test_empty_monitor_shapes(self):
        monitor = SpikeMonitor("layer")
        assert monitor.get().shape == (0, 0)
        assert monitor.get().dtype == bool
        assert monitor.spike_counts().shape == (0,)


class TestStateMonitorRegression:
    def test_traces_match_reference_and_are_copies(self):
        monitor = StateMonitor("layer", "v")
        reference = []
        for nodes in drive_layer(steps=15, seed=7):
            monitor.record(nodes)
            reference.append(nodes.v.copy())
        got = monitor.get()
        assert np.array_equal(got, np.stack(reference))
        got[0, 0] = 1e9  # mutating the returned array must not leak back
        assert monitor.get()[0, 0] != 1e9

    def test_records_non_membrane_variables(self):
        monitor = StateMonitor("layer", "traces")
        nodes = LIFNodes(3)
        nodes.traces = np.array([0.5, 0.25, 0.0])
        monitor.record(nodes)
        assert np.array_equal(monitor.get(), [[0.5, 0.25, 0.0]])


class TestNetworkIntegration:
    def test_network_run_preallocates_exact_window(self):
        parameters = DiehlAndCookParameters(n_inputs=9, n_neurons=5)
        network = DiehlAndCook2015(parameters, rng=0)
        raster = np.random.default_rng(1).random((30, 9)) < 0.4
        counts = network.present(raster, learning=True)
        assert network.excitatory_monitor.get().shape == (30, 5)
        assert np.array_equal(counts, network.excitatory_monitor.get().sum(axis=0))
        # A second presentation reuses the same buffer.
        buffer = network.excitatory_monitor._buffer
        network.present(raster, learning=False)
        assert network.excitatory_monitor._buffer is buffer
        assert network.excitatory_monitor.get().shape == (30, 5)

    def test_monitor_without_reserve_still_works_via_network(self):
        # Custom monitors lacking reserve() must keep working.
        class MinimalMonitor:
            layer_name = "out"
            seen = 0

            def record(self, nodes):
                self.seen += 1

            def reset(self):
                self.seen = 0

        from repro.snn import Connection, Network

        network = Network()
        source = network.add_layer("in", InputNodes(1))
        target = network.add_layer("out", LIFNodes(1))
        network.add_connection(
            "in", "out", Connection(source, target, w=np.array([[50.0]]))
        )
        monitor = network.add_monitor("m", MinimalMonitor())
        network.run({"in": np.ones((4, 1), dtype=bool)})
        assert monitor.seen == 4
