"""Declarative threat-scenario subsystem (the attack DSL).

The paper evaluates a handful of hand-coded sweeps; this package makes the
full scenario space its threat model supports *declarative*:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`: one scenario as
  plain data (attack family, fixed parameters, swept grid, strategy,
  co-evaluated defenses, engine/scale), loadable from YAML/JSON with
  strict validation.
* :mod:`repro.scenarios.composite` — :class:`CompositeScenario`: sequence
  or product composition; products fuse member grid points into compound
  :class:`~repro.attacks.attacks.CompositeAttack` faults on one network.
* :mod:`repro.scenarios.strategy` — dense grids plus the adaptive
  :class:`BisectionStrategy` that finds accuracy-collapse thresholds in
  O(log n) pipeline runs.
* :mod:`repro.scenarios.registry` — the name → scenario registry behind
  ``python -m repro scenarios list|run|report``.
* :mod:`repro.scenarios.library` — ≥8 registered scenarios beyond the
  paper's figures (droop asymmetry, compound faults, defense matrices,
  worst-case searches).
* :mod:`repro.scenarios.runner` — :class:`ScenarioRunner`: executes
  scenarios through the shared :class:`~repro.exec.executor.SweepExecutor`
  (lockstep batching, caching, process parallelism) with ``--shard i/n``
  splitting and persistent resume.
"""

from repro.scenarios.composite import CompositeScenario
from repro.scenarios.registry import (
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.scenarios.runner import ScenarioResult, ScenarioRunner
from repro.scenarios.spec import (
    FAMILIES,
    AttackFamily,
    BisectionSettings,
    ScenarioSpec,
    ScenarioVariant,
    load_scenario_file,
)
from repro.scenarios.strategy import (
    BisectionOutcome,
    BisectionStrategy,
    degradations_from_accuracies,
    dense_collapse_index,
)

# Importing the library registers the built-in scenarios as a side effect
# (mirroring how repro.figures registers the paper's figures on import).
from repro.scenarios import library  # noqa: E402,F401  (registration import)

__all__ = [
    "AttackFamily",
    "BisectionOutcome",
    "BisectionSettings",
    "BisectionStrategy",
    "CompositeScenario",
    "FAMILIES",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "ScenarioVariant",
    "degradations_from_accuracies",
    "dense_collapse_index",
    "get_scenario",
    "iter_scenarios",
    "load_scenario_file",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
