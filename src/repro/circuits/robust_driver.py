"""Robust (VDD-insensitive) current driver — the defense of paper Fig. 9b.

An op-amp (implemented with the 5T OTA) regulates the voltage across the
programming resistor ``R1`` to an external reference ``VRef``; the current
``VRef / R1`` through ``MP1`` is therefore independent of VDD to first order,
and ``MP2`` mirrors it to the neuron.  Long-channel mirror devices reduce the
residual channel-length-modulation sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analog import Circuit, dc_operating_point
from repro.analog.mosfet import MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.analog.units import ValueLike, parse_value
from repro.circuits.ota import OTASizing, add_five_transistor_ota
from repro.utils.validation import check_positive


@dataclass
class RobustDriverDesign:
    """Component values of the op-amp regulated current driver."""

    reference_voltage: float = 0.52
    programming_resistance: float = 2.6e6
    #: Long-channel mirror devices to suppress channel-length modulation.
    mirror_width: float = 2e-6
    mirror_length: float = 520e-9
    opamp: OTASizing = field(default_factory=OTASizing)
    nmos_params: MOSFETParameters = NMOS_65NM
    pmos_params: MOSFETParameters = PMOS_65NM

    def __post_init__(self) -> None:
        check_positive(self.reference_voltage, "reference_voltage")
        check_positive(self.programming_resistance, "programming_resistance")
        check_positive(self.mirror_width, "mirror_width")
        check_positive(self.mirror_length, "mirror_length")

    @property
    def nominal_current(self) -> float:
        """VRef / R1 — the regulated output amplitude."""
        return self.reference_voltage / self.programming_resistance


def build_robust_driver(
    vdd: ValueLike = 1.0,
    *,
    design: Optional[RobustDriverDesign] = None,
    load_voltage: float = 0.2,
) -> Circuit:
    """Build the robust current driver with a measurement load.

    Nodes: ``vdd``, ``vref``, ``vset`` (regulated node across R1), ``vg``
    (PMOS gate, op-amp output), ``out``.

    The output current is read as the branch current of ``VLOAD``.
    """
    design = design or RobustDriverDesign()
    vdd = parse_value(vdd)
    circuit = Circuit("robust_current_driver")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    circuit.add_voltage_source("VREF", "vref", "0", design.reference_voltage)
    circuit.add_voltage_source("VLOAD", "out", "0", load_voltage)

    # Error amplifier: drives the PMOS gate so that v(vset) tracks VRef.
    # The regulated node goes to the non-inverting input: if vset rises above
    # VRef the op-amp output rises, reducing the PMOS overdrive and hence the
    # current through R1 — negative feedback.
    add_five_transistor_ota(
        circuit,
        "OPAMP",
        "vset",
        "vref",
        "vg",
        "vdd",
        sizing=design.opamp,
        nmos_params=design.nmos_params,
        pmos_params=design.pmos_params,
    )
    circuit.add_capacitor("CCOMP", "vg", "0", "100f")

    # MP1 sources the programming current into R1; MP2 mirrors it to the load.
    circuit.add_mosfet(
        "MP1",
        "vset",
        "vg",
        "vdd",
        design.pmos_params,
        width=design.mirror_width,
        length=design.mirror_length,
    )
    circuit.add_resistor("R1", "vset", "0", design.programming_resistance)
    circuit.add_mosfet(
        "MP2",
        "out",
        "vg",
        "vdd",
        design.pmos_params,
        width=design.mirror_width,
        length=design.mirror_length,
    )
    return circuit


def output_current(
    vdd: ValueLike = 1.0,
    *,
    design: Optional[RobustDriverDesign] = None,
    load_voltage: float = 0.2,
) -> float:
    """Regulated output current magnitude at supply ``vdd``."""
    circuit = build_robust_driver(vdd, design=design, load_voltage=load_voltage)
    op = dc_operating_point(
        circuit,
        initial_guess={"vset": (design or RobustDriverDesign()).reference_voltage},
    )
    return abs(op.current("VLOAD"))


def amplitude_vs_vdd(
    vdd_values,
    *,
    design: Optional[RobustDriverDesign] = None,
    load_voltage: float = 0.2,
    batch: bool = True,
    engine: str = "auto",
) -> np.ndarray:
    """Output amplitude for each supply voltage (flat, unlike Fig. 5b).

    Routed through :class:`repro.exec.circuits.CircuitSweepDispatcher`: one
    lockstep batched DC solve across the VDD grid (all points share the
    regulated-driver topology); ``batch=False`` forces the serial path and
    ``engine`` picks the solver backend.
    """
    from repro.exec.circuits import CircuitSweepDispatcher

    values = [parse_value(v) for v in vdd_values]
    reference = (design or RobustDriverDesign()).reference_voltage
    circuits = [
        build_robust_driver(v, design=design, load_voltage=load_voltage)
        for v in values
    ]
    ops = CircuitSweepDispatcher(batch=batch, engine=engine).run_operating_points(
        circuits, initial_guesses=[{"vset": reference}] * len(circuits)
    )
    return np.array([abs(op.current("VLOAD")) for op in ops])
