"""Uniform argument-validation helpers.

The analog simulator and SNN framework have many numeric parameters whose
physical validity matters (capacitances must be positive, fractions must lie
in [0, 1], supply voltages must be within the modelled range).  Centralising
the checks keeps the error messages consistent and the call sites short.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly, by default)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_range(value: float, name: str, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` is a fraction in [0, 1]."""
    return check_range(value, name, 0.0, 1.0)


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` with probability phrasing."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_in_choices(value, name: str, choices: Iterable):
    """Validate that ``value`` is one of ``choices``."""
    choices = tuple(choices)
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices!r}, got {value!r}")
    return value


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )
