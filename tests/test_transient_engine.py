"""Tests for the transient engine's subdivision fallback and adaptive mode."""

import numpy as np
import pytest

import repro.analog.transient as transient_module
from repro.analog import Circuit, transient_analysis
from repro.analog.mna import ConvergenceError, MNASystem, SolverOptions
from repro.analog.transient import (
    _MAX_SUBDIVISION_DEPTH,
    _SUBDIVISION_FACTOR,
    StepDiagnostics,
    _advance,
)


def rc_circuit():
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", "1k")
    circuit.add_capacitor("C1", "out", "0", "1u", initial_voltage=0.0)
    return circuit


class RecordingSolver:
    """A stand-in for ``newton_solve`` that fails above a dt threshold."""

    def __init__(self, fail_above_dt=None, always_fail=False):
        self.fail_above_dt = fail_above_dt
        self.always_fail = always_fail
        self.calls = []

    def __call__(self, system, state, guess, options, stats=None):
        self.calls.append(float(state.dt))
        if self.always_fail or (
            self.fail_above_dt is not None and state.dt > self.fail_above_dt
        ):
            raise ConvergenceError("forced failure")
        if stats is not None:
            stats.iterations = 1
        return np.asarray(guess, dtype=float)


class TestSubdivisionFallback:
    def test_one_level_of_subdivision_on_failure(self, monkeypatch):
        system = MNASystem(rc_circuit())
        solver = RecordingSolver(fail_above_dt=0.5e-6)
        monkeypatch.setattr(transient_module, "newton_solve", solver)
        diagnostics = StepDiagnostics()
        _advance(
            system,
            np.zeros(system.size),
            0.0,
            1e-6,
            SolverOptions(),
            depth=0,
            diagnostics=diagnostics,
        )
        # One failed full-step attempt, then _SUBDIVISION_FACTOR sub-steps.
        assert len(solver.calls) == 1 + _SUBDIVISION_FACTOR
        assert solver.calls[0] == pytest.approx(1e-6)
        for sub_dt in solver.calls[1:]:
            assert sub_dt == pytest.approx(1e-6 / _SUBDIVISION_FACTOR)
        assert diagnostics.subdivisions == 1

    def test_recursive_subdivision_depth(self, monkeypatch):
        system = MNASystem(rc_circuit())
        # Fails at the full step AND at the first subdivision level, so every
        # first-level sub-step subdivides once more.  The 1.5x margin keeps
        # the threshold comparison robust to linspace rounding.
        solver = RecordingSolver(fail_above_dt=1.5e-6 / _SUBDIVISION_FACTOR**2)
        monkeypatch.setattr(transient_module, "newton_solve", solver)
        diagnostics = StepDiagnostics()
        _advance(
            system,
            np.zeros(system.size),
            0.0,
            1e-6,
            SolverOptions(),
            depth=0,
            diagnostics=diagnostics,
        )
        expected = 1 + _SUBDIVISION_FACTOR * (1 + _SUBDIVISION_FACTOR)
        assert len(solver.calls) == expected
        assert diagnostics.subdivisions == 1 + _SUBDIVISION_FACTOR

    def test_failure_at_max_depth_is_raised(self, monkeypatch):
        system = MNASystem(rc_circuit())
        solver = RecordingSolver(always_fail=True)
        monkeypatch.setattr(transient_module, "newton_solve", solver)
        with pytest.raises(ConvergenceError):
            _advance(
                system, np.zeros(system.size), 0.0, 1e-6, SolverOptions(), depth=0
            )
        # Depth 0..(_MAX_SUBDIVISION_DEPTH) all attempt their first interval;
        # the terminal depth raises without subdividing further.
        assert len(solver.calls) == _MAX_SUBDIVISION_DEPTH + 1
        # Every retry shrank the local step by the subdivision factor.
        assert solver.calls[-1] == pytest.approx(
            1e-6 / _SUBDIVISION_FACTOR**_MAX_SUBDIVISION_DEPTH
        )

    def test_transient_analysis_surfaces_convergence_error(self, monkeypatch):
        solver = RecordingSolver(always_fail=True)
        monkeypatch.setattr(transient_module, "newton_solve", solver)
        with pytest.raises(ConvergenceError):
            transient_analysis(
                rc_circuit(),
                stop_time="10u",
                time_step="1u",
                use_initial_conditions=True,
            )


class TestAdaptiveMode:
    def test_adaptive_matches_fixed_rc_charging(self):
        fixed = transient_analysis(
            rc_circuit(),
            stop_time="5m",
            time_step="10u",
            use_initial_conditions=True,
        )
        adaptive = transient_analysis(
            rc_circuit(),
            stop_time="5m",
            time_step="10u",
            use_initial_conditions=True,
            adaptive=True,
        )
        # Fewer solves, same endpoints, same waveform (within BE accuracy of
        # the coarser local steps).
        assert len(adaptive) < len(fixed)
        assert adaptive.time[0] == 0.0
        assert adaptive.time[-1] == pytest.approx(5e-3, rel=1e-9)
        assert np.all(np.diff(adaptive.time) > 0)
        # Backward Euler is first order: the grown steps trade a bounded
        # truncation error (a few percent of the 1 V swing) for ~10x fewer
        # solves.
        resampled = np.interp(adaptive.time, fixed.time, fixed.voltage("out"))
        assert np.max(np.abs(resampled - adaptive.voltage("out"))) < 0.05

    def test_adaptive_respects_max_step(self):
        adaptive = transient_analysis(
            rc_circuit(),
            stop_time="1m",
            time_step="10u",
            use_initial_conditions=True,
            adaptive=True,
            max_step="20u",
        )
        assert np.max(np.diff(adaptive.time)) <= 20e-6 * (1 + 1e-9)

    def test_fixed_mode_grid_is_exact(self):
        result = transient_analysis(
            rc_circuit(), stop_time="1m", time_step="100u", use_initial_conditions=True
        )
        assert len(result) == 11
        np.testing.assert_allclose(result.time, np.linspace(0.0, 1e-3, 11))


class TestTraceRecording:
    def test_record_nodes_subset_and_ground(self):
        result = transient_analysis(
            rc_circuit(),
            stop_time="1m",
            time_step="100u",
            use_initial_conditions=True,
            record_nodes=["out", "0"],
        )
        assert set(result.node_voltages) == {"out", "0"}
        np.testing.assert_array_equal(result.voltage("0"), np.zeros(len(result)))
        assert result.voltage("out")[-1] > 0.5

    def test_branch_current_of_source_recorded(self):
        result = transient_analysis(
            rc_circuit(), stop_time="1m", time_step="100u", use_initial_conditions=True
        )
        trace = result.current("V1")
        assert len(trace) == len(result)
        # The source charges the capacitor: current flows out of V1 at t=0+.
        assert abs(trace[1]) > abs(trace[-1])
