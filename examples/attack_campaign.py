"""Run all five power-oriented attacks against one trained pipeline.

Reproduces the paper's headline comparison: the driver-only and
excitatory-layer attacks barely move the accuracy, while the inhibitory-layer,
both-layer and global-supply attacks collapse it.

Usage::

    python examples/attack_campaign.py            # benchmark scale (~5 min)
    REPRO_SCALE=smoke python examples/attack_campaign.py   # quick look
"""

from repro.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
)
from repro.core import ClassificationPipeline, ExperimentConfig
from repro.utils.tables import format_table


def main() -> None:
    config = ExperimentConfig.from_environment(default="benchmark")
    pipeline = ClassificationPipeline(config)

    print(f"Training the attack-free baseline ({config.scale_name} scale)...")
    baseline = pipeline.run_baseline()

    attacks = [
        Attack1InputSpikeCorruption(theta_change=-0.2),
        Attack2ExcitatoryThreshold(threshold_change=-0.2, fraction=1.0),
        Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0),
        Attack4BothLayerThreshold(threshold_change=-0.2),
        Attack5GlobalSupply(vdd=0.8),
    ]

    rows = [("baseline", f"{baseline.accuracy:.3f}", "-", "-")]
    for attack in attacks:
        print(f"Running {attack.label()} ...")
        result = pipeline.run(attack)
        rows.append(
            (
                attack.label(),
                f"{result.accuracy:.3f}",
                f"{result.accuracy_change:+.3f}",
                f"{result.relative_degradation:.1%}",
            )
        )

    print()
    print(
        format_table(
            ["attack", "accuracy", "change", "relative degradation"],
            rows,
            title="Power-oriented fault-injection attacks on the Diehl&Cook SNN",
        )
    )


if __name__ == "__main__":
    main()
