"""Train / attack / evaluate pipeline for the Diehl&Cook digit classifier.

The pipeline owns the dataset, the encoding, the training loop, the label
assignment and the evaluation — everything the attack figures need.  A power
attack is modelled as a *persistent hardware fault*: it is injected before
training and stays in place through training, label assignment and
evaluation, matching the paper's "corrupt crucial training parameters"
framing.  Compound faults
(:class:`~repro.attacks.attacks.CompositeAttack`, built by the scenario
subsystem's product compositions) work identically: every member's faults
are injected into the same fresh network before training starts, and the
composite's concatenated label keeps the fault-site RNG stream and the
executor cache key unique per member combination.

Engine selection
----------------
``engine`` picks how the SNN is advanced:

* ``"scalar"`` — the reference :class:`~repro.snn.network.Network`, one
  example at a time.
* ``"batched"`` — the lockstep engine (:mod:`repro.snn.batched`): the label
  assignment and evaluation passes present ``example_chunk`` examples at
  once, and :meth:`run_batch` trains a whole batch of attack variants in one
  lockstep pass.  Results are bit-identical to the scalar engine (that is
  the batched engine's contract, pinned by ``tests/test_snn_batched.py``).
* ``"auto"`` (default) — ``"batched"`` unless the runtime fails the
  engine's reduction-order self-check, then ``"scalar"``.
* ``"sparse"`` — accepted for symmetry with the circuit tier (where it
  forces the CSC + ``splu`` solver, see :mod:`repro.analog.sparse`); the
  SNN has no sparse mode, so it behaves exactly like ``"auto"`` here.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.attacks import NoAttack, PowerAttack
from repro.attacks.injector import FaultInjector
from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.datasets.digits import SyntheticDigits
from repro.datasets.loaders import train_test_split
from repro.snn.batched import (
    BatchedNetwork,
    BatchedSpikeMonitor,
    reduction_contract_holds,
)
from repro.snn.encoding import poisson_encode, poisson_encode_batch
from repro.snn.evaluation import (
    all_activity_prediction,
    assign_labels,
    classification_accuracy,
)
from repro.snn.models import DiehlAndCook2015, EXCITATORY_LAYER, INPUT_LAYER
from repro.utils.rng import RandomState
from repro.utils.validation import check_in_choices, check_positive

#: Valid values of the pipeline's ``engine`` parameter.  ``"sparse"`` is a
#: circuit-tier choice accepted here so one ``--engine`` flag can steer both
#: tiers; the SNN treats it as ``"auto"``.
ENGINES = ("auto", "batched", "scalar", "sparse")


class ClassificationPipeline:
    """End-to-end digit-classification experiment, with optional attacks.

    Parameters
    ----------
    config:
        Experiment scale and network hyper-parameters.
    engine:
        SNN execution engine — ``"auto"`` (default), ``"batched"`` or
        ``"scalar"`` (``"sparse"`` is accepted and treated as ``"auto"``).
        Engine choice never changes results, only speed.
    example_chunk:
        How many examples the batched inference passes advance in lockstep
        (bounds the transient memory of the batched Poisson draws).

    Notes
    -----
    The dataset and its train/test split are generated once per pipeline and
    reused across runs, so baseline and attacked runs see identical images
    and identical Poisson seeds — accuracy differences are attributable to
    the injected faults alone.

    Every random stream consumed by :meth:`run` (weight init, Poisson
    encoding, fault-site selection) is derived from ``config.seed`` and the
    attack label alone — never from mutable state accumulated by earlier
    runs.  Two consequences the execution subsystem relies on:

    * ``run(attack)`` is a pure function of ``(config, attack)``: the same
      attack gives bit-identical results regardless of run order, engine
      choice, or whether it was evaluated alone or inside a
      :meth:`run_batch` variant batch.
    * A pipeline rebuilt from the same config in another process (see
      :class:`repro.exec.executor.PipelineFromConfig`) produces the same
      results, so parallel sweeps match serial sweeps exactly.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        engine: str = "auto",
        example_chunk: int = 64,
    ) -> None:
        self.config = config or ExperimentConfig.benchmark()
        check_in_choices(engine, "engine", ENGINES)
        self.engine = engine
        self.example_chunk = int(check_positive(example_chunk, "example_chunk"))
        root = RandomState(self.config.seed, name="pipeline")
        self._dataset_rng = root.spawn("dataset")
        self._split_rng = root.spawn("split")

        dataset = SyntheticDigits(
            n_samples=self.config.n_samples, seed=self._dataset_rng
        )
        train_x, train_y, eval_x, eval_y = train_test_split(
            dataset.flattened(),
            dataset.labels,
            test_fraction=self.config.test_fraction,
            rng=self._split_rng,
        )
        self.train_images = train_x[: self.config.n_train]
        self.train_labels = train_y[: self.config.n_train]
        self.eval_images = eval_x[: self.config.n_eval]
        self.eval_labels = eval_y[: self.config.n_eval]
        self._baseline_result: Optional[ExperimentResult] = None

    # ----------------------------------------------------------------- engine
    @property
    def resolved_engine(self) -> str:
        """The engine actually used: ``"batched"`` or ``"scalar"``.

        ``"auto"`` (and ``"sparse"``, a circuit-tier choice with no SNN
        counterpart) resolves to the batched engine unless this NumPy fails
        the lockstep engine's reduction-order self-check (in which case the
        scalar reference is the only engine that can honour the pipeline's
        determinism guarantees).
        """
        if self.engine == "scalar":
            return "scalar"
        if self.engine == "batched":
            return "batched"
        return "batched" if reduction_contract_holds() else "scalar"

    # ----------------------------------------------------------------- pieces
    def build_network(self) -> DiehlAndCook2015:
        """A freshly initialised Diehl&Cook network (deterministic per seed)."""
        return DiehlAndCook2015(
            self.config.network, rng=RandomState(self.config.seed, name="weights")
        )

    def _encode(self, image: np.ndarray, rng: RandomState) -> np.ndarray:
        return poisson_encode(
            image,
            time_steps=self.config.time_steps,
            max_rate=self.config.max_rate,
            rng=rng,
        )

    def train(self, network: DiehlAndCook2015) -> None:
        """Run STDP training over the training images."""
        rng = RandomState(self.config.seed, name="train_encoding")
        for image in self.train_images:
            network.present(self._encode(image, rng), learning=True)

    def record_responses(
        self, network: DiehlAndCook2015, images: np.ndarray, *, stream: str
    ) -> np.ndarray:
        """Excitatory spike counts for each image, with learning disabled.

        The batched engine presents ``example_chunk`` examples in lockstep;
        the scalar engine loops.  Counts are bit-identical either way.
        """
        if self.resolved_engine == "batched":
            batched = BatchedNetwork.from_networks([network])
            counts = self._batched_responses(batched, images, stream=stream)
            return counts[0]
        return self._record_responses_scalar(network, images, stream=stream)

    def _record_responses_scalar(
        self, network: DiehlAndCook2015, images: np.ndarray, *, stream: str
    ) -> np.ndarray:
        """The reference per-example inference loop (scalar engine)."""
        rng = RandomState(self.config.seed, name=f"{stream}_encoding")
        counts: List[np.ndarray] = []
        for image in images:
            counts.append(network.present(self._encode(image, rng), learning=False))
        return np.asarray(counts)

    def _batched_responses(
        self, batched: BatchedNetwork, images: np.ndarray, *, stream: str
    ) -> np.ndarray:
        """Spike counts ``(variants, n_images, n_neurons)`` via lockstep runs.

        Examples are encoded and presented in ``example_chunk``-wide chunks;
        chunked encoding consumes the per-stream generator exactly as the
        scalar per-image loop does, so the spike counts of every (variant,
        example) lane match the scalar engine's bit for bit.
        """
        monitor = batched.monitors.get("excitatory_counts")
        if monitor is None:
            monitor = batched.add_monitor(
                "excitatory_counts",
                BatchedSpikeMonitor(EXCITATORY_LAYER, counts_only=True),
            )
        rng = RandomState(self.config.seed, name=f"{stream}_encoding")
        chunks: List[np.ndarray] = []
        for start in range(0, len(images), self.example_chunk):
            chunk = images[start : start + self.example_chunk]
            rasters = poisson_encode_batch(
                chunk,
                time_steps=self.config.time_steps,
                max_rate=self.config.max_rate,
                rng=rng,
            )
            batched.present({INPUT_LAYER: rasters}, learning=False)
            chunks.append(monitor.spike_counts())
        return np.concatenate(chunks, axis=1)

    def assign(self, network: DiehlAndCook2015) -> Tuple[np.ndarray, np.ndarray]:
        """Assign each excitatory neuron to a digit class from training activity."""
        counts = self.record_responses(network, self.train_images, stream="assign")
        return assign_labels(counts, self.train_labels, self.config.n_classes)

    def evaluate(
        self, network: DiehlAndCook2015, assignments: np.ndarray
    ) -> Tuple[float, float]:
        """Accuracy and mean excitatory spike count on the held-out images."""
        counts = self.record_responses(network, self.eval_images, stream="eval")
        predictions = all_activity_prediction(
            counts, assignments, self.config.n_classes
        )
        accuracy = classification_accuracy(predictions, self.eval_labels)
        return accuracy, float(counts.sum(axis=1).mean())

    def _fault_rng(self, attack: PowerAttack) -> RandomState:
        """Fault-site selection stream for one attack.

        Keyed on ``(config.seed, crc32(attack.label()))`` so the stream is a
        pure function of the configuration and the attack — independent of
        how many runs happened before, of the process running it, and of
        Python's per-process hash randomisation.  This is what makes
        parallel sweeps bit-identical to serial ones.
        """
        label_key = zlib.crc32(attack.label().encode("utf-8"))
        return RandomState(
            (self.config.seed, label_key), name=f"faults[{attack.label()}]"
        )

    def _attacked_network(self, attack: PowerAttack) -> Tuple[DiehlAndCook2015, List]:
        """A fresh network with the attack's faults injected."""
        network = self.build_network()
        injector = FaultInjector(network, rng=self._fault_rng(attack))
        records = attack.apply(injector)
        return network, records

    def trained_network(
        self, attack: Optional[PowerAttack] = None
    ) -> Tuple[DiehlAndCook2015, np.ndarray, np.ndarray]:
        """Train one network and return it with its label assignments.

        The serving tier's capture point: the same build → inject → train →
        assign sequence as :meth:`run`, stopped *before* evaluation so the
        trained state (plus per-neuron assignments and class rates) can be
        snapshotted by :func:`repro.snn.snapshot.snapshot_from_pipeline`.
        """
        attack = attack or NoAttack()
        network, _records = self._attacked_network(attack)
        self.train(network)
        assignments, rates = self.assign(network)
        return network, assignments, rates

    # ------------------------------------------------------------------- runs
    def run(self, attack: Optional[PowerAttack] = None) -> ExperimentResult:
        """Train and evaluate one network, optionally under a persistent attack."""
        attack = attack or NoAttack()
        network, records = self._attacked_network(attack)
        self.train(network)
        assignments, _rates = self.assign(network)
        accuracy, mean_spikes = self.evaluate(network, assignments)
        baseline = (
            self._baseline_result.accuracy
            if self._baseline_result is not None
            else (accuracy if isinstance(attack, NoAttack) else None)
        )
        result = ExperimentResult(
            attack_label=attack.label(),
            accuracy=accuracy,
            baseline_accuracy=baseline,
            mean_excitatory_spikes=mean_spikes,
            fault_descriptions=[record.describe() for record in records],
            scale_name=self.config.scale_name,
        )
        if isinstance(attack, NoAttack) and self._baseline_result is None:
            self._baseline_result = result
        return result

    def run_batch(
        self, attacks: Sequence[Optional[PowerAttack]]
    ) -> List[ExperimentResult]:
        """Evaluate a batch of attacks in one lockstep variant pass.

        Every attack's network shares the Diehl&Cook topology and differs
        only in the injected per-neuron corruptions, so the whole grid
        trains together on the batched engine: one pass over the training
        images advances every variant, then the assignment and evaluation
        passes batch variants × examples.  Each returned
        :class:`ExperimentResult` is bit-identical to ``run(attack)``.

        ``None`` entries request the attack-free baseline.  Raises
        :class:`~repro.snn.batched.BatchedNetworkError` subclasses when the
        lockstep engine cannot host the network (callers fall back to
        per-attack runs); with ``engine="scalar"`` it simply loops.
        """
        attacks = [attack or NoAttack() for attack in attacks]
        if self.resolved_engine != "batched" or len(attacks) == 1:
            return [self.run(attack) for attack in attacks]

        networks: List[DiehlAndCook2015] = []
        fault_records: List[List] = []
        for attack in attacks:
            network, records = self._attacked_network(attack)
            networks.append(network)
            fault_records.append(records)
        batched = BatchedNetwork.from_networks(networks)

        # Lockstep STDP training: every variant sees the identical encoded
        # raster a scalar run would (the stream is attack-independent).
        rng = RandomState(self.config.seed, name="train_encoding")
        for image in self.train_images:
            batched.present({INPUT_LAYER: self._encode(image, rng)}, learning=True)

        assign_counts = self._batched_responses(
            batched, self.train_images, stream="assign"
        )
        eval_counts = self._batched_responses(batched, self.eval_images, stream="eval")

        accuracies: List[float] = []
        mean_spikes: List[float] = []
        for variant in range(len(attacks)):
            assignments, _rates = assign_labels(
                assign_counts[variant], self.train_labels, self.config.n_classes
            )
            predictions = all_activity_prediction(
                eval_counts[variant], assignments, self.config.n_classes
            )
            accuracies.append(
                classification_accuracy(predictions, self.eval_labels)
            )
            mean_spikes.append(float(eval_counts[variant].sum(axis=1).mean()))

        baseline_accuracy = (
            self._baseline_result.accuracy if self._baseline_result is not None else None
        )
        if baseline_accuracy is None:
            for attack, accuracy in zip(attacks, accuracies):
                if isinstance(attack, NoAttack):
                    baseline_accuracy = accuracy
                    break
        results: List[ExperimentResult] = []
        for attack, accuracy, spikes, records in zip(
            attacks, accuracies, mean_spikes, fault_records
        ):
            result = ExperimentResult(
                attack_label=attack.label(),
                accuracy=accuracy,
                baseline_accuracy=baseline_accuracy,
                mean_excitatory_spikes=spikes,
                fault_descriptions=[record.describe() for record in records],
                scale_name=self.config.scale_name,
            )
            if isinstance(attack, NoAttack) and self._baseline_result is None:
                self._baseline_result = result
            results.append(result)
        return results

    def run_many(
        self,
        attacks: Sequence[Optional[PowerAttack]],
        *,
        workers: int = 0,
        executor=None,
    ) -> List[ExperimentResult]:
        """Evaluate a batch of attacks through the execution subsystem.

        ``None`` entries request the attack-free baseline.  With
        ``workers >= 2`` the evaluations fan out over a process pool (each
        worker rebuilds this pipeline from ``self.config``); on the serial
        path the executor routes the batch through :meth:`run_batch`, so a
        whole sweep trains in one lockstep pass.  Accuracies and spike
        counts are identical in every mode.  The back-referencing
        ``baseline_accuracy`` field is filled on attacked results only once
        the baseline is known to the executor — include a ``None`` entry in
        the batch (as the campaign sweeps do) to guarantee it in both
        modes; without one, a serial run may still inherit it from this
        pipeline's cached baseline while a parallel run cannot.
        """
        from repro.exec.executor import SweepExecutor

        executor = executor or SweepExecutor(self, workers=workers)
        return executor.map(attacks)

    def run_baseline(self) -> ExperimentResult:
        """Run (or return the cached) attack-free experiment."""
        if self._baseline_result is None:
            self._baseline_result = self.run(NoAttack())
        return self._baseline_result

    @property
    def baseline_accuracy(self) -> float:
        """Accuracy of the attack-free run (computed on demand)."""
        return self.run_baseline().accuracy
