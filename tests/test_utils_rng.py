"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


def test_same_seed_gives_same_stream():
    a = RandomState(123)
    b = RandomState(123)
    assert np.array_equal(a.random(10), b.random(10))


def test_different_seeds_give_different_streams():
    a = RandomState(1)
    b = RandomState(2)
    assert not np.array_equal(a.random(10), b.random(10))


def test_spawn_is_independent_of_parent_consumption():
    parent_a = RandomState(5)
    parent_b = RandomState(5)
    parent_b.random(100)  # consume numbers before spawning
    child_a = parent_a.spawn("child")
    child_b = parent_b.spawn("child")
    assert np.array_equal(child_a.random(5), child_b.random(5))


def test_spawned_children_differ_from_parent():
    parent = RandomState(5)
    child = parent.spawn("child")
    assert not np.array_equal(parent.random(5), child.random(5))


def test_ensure_rng_passes_through_randomstate():
    state = RandomState(9)
    assert ensure_rng(state) is state


def test_ensure_rng_accepts_int_and_none():
    assert isinstance(ensure_rng(3), RandomState)
    assert isinstance(ensure_rng(None), RandomState)


def test_ensure_rng_wraps_numpy_generator():
    generator = np.random.default_rng(0)
    state = ensure_rng(generator)
    assert state.generator is generator


def test_integers_respects_bounds():
    state = RandomState(0)
    values = state.integers(0, 10, size=1000)
    assert values.min() >= 0
    assert values.max() < 10


def test_choice_without_replacement_is_unique():
    state = RandomState(0)
    chosen = state.choice(50, size=20, replace=False)
    assert len(set(chosen.tolist())) == 20


def test_permutation_preserves_elements():
    state = RandomState(0)
    perm = state.permutation(np.arange(30))
    assert sorted(perm.tolist()) == list(range(30))


def test_shuffle_in_place():
    state = RandomState(0)
    values = np.arange(20)
    state.shuffle(values)
    assert sorted(values.tolist()) == list(range(20))


def test_normal_and_poisson_shapes():
    state = RandomState(0)
    assert state.normal(0, 1, size=(3, 4)).shape == (3, 4)
    assert state.poisson(2.0, size=7).shape == (7,)


def test_spawn_from_wrapped_generator_is_deterministic():
    child_a = ensure_rng(np.random.default_rng(7)).spawn("x")
    child_b = ensure_rng(np.random.default_rng(7)).spawn("x")
    assert np.array_equal(child_a.random(4), child_b.random(4))
