"""Trained-network snapshots: the persistence layer of the serving tier.

A snapshot freezes everything needed to score new examples *without
retraining*: the trained weights and adaptive thresholds, the model's
identity (so the topology can be rebuilt from code), the Poisson-encoding
parameters, the label assignments of the excitatory neurons, the residual
defense calibration and the experiment seed.  It deliberately excludes
per-presentation transients (membrane potentials, refractory counters,
traces) — those reset between examples, so a hydrated network scores
bit-identically to the live one it was captured from.

Snapshots persist through :mod:`repro.store` with the same discipline as
figure and scenario artifacts: one schema-versioned JSON document plus one
NPZ bundle, per-array SHA-256 digests, full provenance, atomic writes.
:func:`save_snapshot` / :func:`load_snapshot` round-trip a
:class:`NetworkSnapshot`; the ``python -m repro snapshot export|info`` CLI
wraps them.

Lifecycle::

    ClassificationPipeline.trained_network()      (train once)
        -> snapshot_from_pipeline(pipeline)       (capture state + labels)
        -> save_snapshot(snapshot, out_dir)       (JSON+NPZ artifact)
        ...
    load_snapshot(path)                           (digest-verified)
        -> ScoringEngine(snapshot)                (repro.snn.serving)
        -> engine.score(images) / engine.under_attack(attack)

Cross-package imports (store, config, defenses) are deferred into function
bodies: this module is imported by ``repro.snn.__init__``, which loads
before ``repro.core`` and ``repro.store`` during package initialisation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.snn.models import MODEL_VARIANTS, DiehlAndCook2015, DiehlAndCookParameters
from repro.snn.network import Network
from repro.snn.nodes import AdaptiveLIFNodes, LIFNodes

#: Array-key prefixes holding rebuildable network state (vs label metadata).
_LAYER_PREFIX = "layer."
_CONNECTION_PREFIX = "connection."

#: Array keys holding the classifier's label metadata.
ASSIGNMENTS_KEY = "labels.assignments"
CLASS_RATES_KEY = "labels.class_rates"


class SnapshotError(ValueError):
    """A snapshot cannot be captured or hydrated.

    Raised for unknown model identities, shape mismatches between a
    snapshot's arrays and the rebuilt topology, and state arrays that do
    not map onto any layer or connection — every case where silently
    proceeding could serve wrong predictions.
    """


@dataclass
class NetworkSnapshot:
    """A trained network frozen for inference-only scoring.

    Attributes
    ----------
    model:
        Identity of the architecture, either
        ``{"kind": "diehl_cook", "parameters": {...}}`` (rebuilt from
        :class:`~repro.snn.models.DiehlAndCookParameters`) or
        ``{"kind": "variant", "name": <MODEL_VARIANTS key>}``.
    score_layer:
        Layer whose spike counts are the classification feature.
    arrays:
        Flat mapping of state arrays: ``layer.<name>.<variable>`` and
        ``connection.<src>-><dst>.w`` keys hold network state; the
        ``labels.*`` keys hold the neuron-to-class assignments.
    encoding:
        Poisson-encoding parameters: ``{"time_steps", "max_rate"}``.
    seed:
        The experiment's master seed — encoding streams and fault-site
        selection derive from it exactly as in the live pipeline.
    n_classes:
        Number of digit classes the assignments map onto.
    config:
        Full JSON-able :class:`~repro.core.config.ExperimentConfig` of the
        producing run (``None`` for snapshots of bare networks).
    defenses:
        Residual defense calibration
        (:func:`repro.defenses.evaluation.residual_defense_factors`).
    metrics:
        Scalar metrics of the producing run (accuracy, prediction digest)
        that serving-side re-scores are compared against.
    engine:
        Engine the producing run resolved to (provenance only; scoring a
        snapshot is bit-identical on either engine).
    """

    model: Dict[str, Any]
    score_layer: str
    arrays: Dict[str, np.ndarray]
    encoding: Dict[str, Any]
    seed: int
    n_classes: int = 0
    config: Optional[Dict[str, Any]] = None
    defenses: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    engine: str = ""

    @property
    def time_steps(self) -> int:
        """Presentation length (simulation steps) per scored example."""
        return int(self.encoding["time_steps"])

    @property
    def max_rate(self) -> float:
        """Poisson firing rate (Hz) of a full-intensity pixel."""
        return float(self.encoding["max_rate"])

    @property
    def assignments(self) -> Optional[np.ndarray]:
        """Per-neuron class assignments (``None`` for bare-network snapshots)."""
        return self.arrays.get(ASSIGNMENTS_KEY)


def prediction_digest(predictions: np.ndarray) -> str:
    """Canonical SHA-256 of a predicted-label vector.

    Labels are cast to a fixed dtype (int64) first, so the digest is
    comparable across processes and platforms — this is the value the CI
    serving-smoke job diffs between an in-process score and a fresh-process
    re-score of the same snapshot.
    """
    canonical = np.ascontiguousarray(np.asarray(predictions, dtype=np.int64))
    return hashlib.sha256(canonical.tobytes()).hexdigest()


def model_identity(network: Network) -> Dict[str, Any]:
    """The rebuildable identity of ``network``.

    :class:`~repro.snn.models.DiehlAndCook2015` networks are identified by
    their hyper-parameters; other topologies must come from the
    :data:`~repro.snn.models.MODEL_VARIANTS` registry and be captured with
    an explicit ``model`` argument.
    """
    if isinstance(network, DiehlAndCook2015):
        from repro.utils.serialization import to_jsonable

        return {"kind": "diehl_cook", "parameters": to_jsonable(network.parameters)}
    raise SnapshotError(
        "cannot derive a model identity for a generic Network; pass "
        'model={"kind": "variant", "name": <MODEL_VARIANTS key>} explicitly'
    )


def _score_layer_name(network: Network) -> str:
    """The layer whose spikes the network's (first) monitor records."""
    for monitor in network.monitors.values():
        return monitor.layer_name
    raise SnapshotError("network has no monitor to derive the score layer from")


def capture_network_state(network: Network) -> Dict[str, np.ndarray]:
    """Copy every persistent state array out of ``network``.

    Persistent means: surviving ``reset_state_variables`` between
    presentations — connection weights, per-neuron threshold scales, input
    gains, base thresholds and adaptive theta offsets.  Per-presentation
    transients (membrane potential, refractory counters, traces, spikes)
    are excluded by design: they are reset before every scored example.
    """
    arrays: Dict[str, np.ndarray] = {}
    for name, nodes in network.layers.items():
        arrays[f"{_LAYER_PREFIX}{name}.input_gain"] = nodes.input_gain.copy()
        if isinstance(nodes, LIFNodes):
            arrays[f"{_LAYER_PREFIX}{name}.base_thresh"] = nodes.base_thresh.copy()
            arrays[f"{_LAYER_PREFIX}{name}.threshold_scale"] = (
                nodes.threshold_scale.copy()
            )
        if isinstance(nodes, AdaptiveLIFNodes):
            arrays[f"{_LAYER_PREFIX}{name}.theta"] = nodes.theta.copy()
    for (source, target), connection in network.connections.items():
        arrays[f"{_CONNECTION_PREFIX}{source}->{target}.w"] = connection.w.copy()
    return arrays


def capture_snapshot(
    network: Network,
    *,
    seed: int,
    time_steps: int,
    max_rate: float,
    model: Optional[Dict[str, Any]] = None,
    assignments: Optional[np.ndarray] = None,
    class_rates: Optional[np.ndarray] = None,
    n_classes: int = 0,
    config: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    engine: str = "",
    with_defenses: bool = True,
) -> NetworkSnapshot:
    """Freeze ``network`` (plus optional label assignments) into a snapshot.

    ``model`` may be omitted for :class:`~repro.snn.models.DiehlAndCook2015`
    networks (their identity is derived from ``network.parameters``); any
    other topology needs ``{"kind": "variant", "name": ...}`` naming its
    :data:`~repro.snn.models.MODEL_VARIANTS` builder.  ``with_defenses``
    embeds the circuit-calibrated residual defense factors so serving-side
    "attack under defense" queries carry the paper's Sec. V calibration.
    """
    arrays = capture_network_state(network)
    if assignments is not None:
        arrays[ASSIGNMENTS_KEY] = np.asarray(assignments, dtype=np.int64)
    if class_rates is not None:
        arrays[CLASS_RATES_KEY] = np.asarray(class_rates, dtype=float)
    defenses: Dict[str, float] = {}
    if with_defenses:
        from repro.defenses.evaluation import residual_defense_factors

        defenses = residual_defense_factors()
    return NetworkSnapshot(
        model=model if model is not None else model_identity(network),
        score_layer=_score_layer_name(network),
        arrays=arrays,
        encoding={"time_steps": int(time_steps), "max_rate": float(max_rate)},
        seed=int(seed),
        n_classes=int(n_classes),
        config=config,
        defenses=defenses,
        metrics=dict(metrics or {}),
        engine=engine,
    )


def snapshot_from_pipeline(pipeline, attack=None) -> NetworkSnapshot:
    """Train a pipeline (optionally under a persistent attack) and freeze it.

    Runs the pipeline's train + label-assignment passes once, records the
    held-out evaluation metrics (accuracy, mean spikes and the canonical
    prediction digest — the values serving-side re-scores are pinned
    against), and captures the trained state.  The snapshot embeds the full
    experiment config, so :meth:`repro.snn.serving.ScoringEngine.evaluate`
    can regenerate the identical held-out split and reproduce the stored
    accuracy bit-for-bit without retraining.
    """
    from repro.snn.evaluation import all_activity_prediction, classification_accuracy
    from repro.utils.serialization import to_jsonable

    config = pipeline.config
    network, assignments, class_rates = pipeline.trained_network(attack)
    counts = pipeline.record_responses(network, pipeline.eval_images, stream="eval")
    predictions = all_activity_prediction(counts, assignments, config.n_classes)
    metrics = {
        "accuracy": classification_accuracy(predictions, pipeline.eval_labels),
        "mean_excitatory_spikes": float(counts.sum(axis=1).mean()),
        "eval_predictions_sha256": prediction_digest(predictions),
    }
    if attack is not None:
        metrics["attack"] = attack.label()
    return capture_snapshot(
        network,
        seed=config.seed,
        time_steps=config.time_steps,
        max_rate=config.max_rate,
        assignments=assignments,
        class_rates=class_rates,
        n_classes=config.n_classes,
        config=to_jsonable(config),
        metrics=metrics,
        engine=pipeline.resolved_engine,
    )


def build_model(model: Dict[str, Any]) -> Network:
    """Rebuild the (untrained) topology a snapshot's ``model`` identifies."""
    kind = model.get("kind")
    if kind == "diehl_cook":
        parameters = DiehlAndCookParameters(**model["parameters"])
        return DiehlAndCook2015(parameters, rng=0)
    if kind == "variant":
        name = model.get("name")
        builder = MODEL_VARIANTS.get(name)
        if builder is None:
            raise SnapshotError(
                f"snapshot names unknown model variant {name!r}; "
                f"registered: {', '.join(sorted(MODEL_VARIANTS))}"
            )
        return builder(0)
    raise SnapshotError(f"unknown snapshot model kind {kind!r}")


def _restore_array(target: np.ndarray, key: str, value: np.ndarray) -> None:
    if target.shape != value.shape:
        raise SnapshotError(
            f"snapshot array {key!r} has shape {value.shape}, but the rebuilt "
            f"topology expects {target.shape}"
        )
    target[...] = value


def hydrate_network(snapshot: NetworkSnapshot) -> Network:
    """Rebuild the snapshot's topology and restore its trained state.

    Every ``layer.*`` / ``connection.*`` array must map onto the rebuilt
    topology with matching shape; anything else raises
    :class:`SnapshotError` — a snapshot that only half-applies would score
    plausibly but wrongly.
    """
    network = build_model(snapshot.model)
    for key, value in snapshot.arrays.items():
        if key.startswith(_LAYER_PREFIX):
            name, _, variable = key[len(_LAYER_PREFIX) :].rpartition(".")
            nodes = network.layers.get(name)
            if nodes is None or not isinstance(
                getattr(nodes, variable, None), np.ndarray
            ):
                raise SnapshotError(
                    f"snapshot array {key!r} does not map onto the rebuilt "
                    f"topology (layers: {', '.join(network.layers)})"
                )
            _restore_array(getattr(nodes, variable), key, value)
        elif key.startswith(_CONNECTION_PREFIX):
            pair, _, variable = key[len(_CONNECTION_PREFIX) :].rpartition(".")
            source, _, target = pair.partition("->")
            connection = network.connections.get((source, target))
            if connection is None or variable != "w":
                raise SnapshotError(
                    f"snapshot array {key!r} does not map onto the rebuilt "
                    f"topology (connections: "
                    f"{', '.join('->'.join(pair) for pair in network.connections)})"
                )
            _restore_array(connection.w, key, value)
        elif not key.startswith("labels."):
            raise SnapshotError(f"unrecognised snapshot array key {key!r}")
    network.set_learning(False)
    return network


def config_from_jsonable(payload: Dict[str, Any]):
    """Reconstruct an :class:`~repro.core.config.ExperimentConfig`.

    The inverse of ``to_jsonable(config)`` as embedded by
    :func:`snapshot_from_pipeline`: the nested network hyper-parameters are
    rebuilt into a :class:`~repro.snn.models.DiehlAndCookParameters`.
    """
    from repro.core.config import ExperimentConfig

    fields = dict(payload)
    network = fields.pop("network", None)
    if network is not None:
        fields["network"] = DiehlAndCookParameters(**network)
    return ExperimentConfig(**fields)


@dataclass
class _SnapshotRunInfo:
    """Execution-metadata shim :func:`repro.store.build_provenance` reads."""

    wall_seconds: float = 0.0
    workers: int = 0
    executor_tasks: int = 0
    executor_cache_hits: int = 0


def save_snapshot(
    snapshot: NetworkSnapshot,
    out_dir,
    *,
    name: str = "fig8",
    git_sha: Optional[str] = None,
    wall_seconds: float = 0.0,
):
    """Persist ``snapshot`` as ``snapshot-<name>.json`` + ``.npz``.

    The document carries the store's standard artifact envelope —
    ``schema_version``, per-array digests, full provenance — so snapshot
    artifacts get the same offline integrity checking, report listing and
    newer-schema refusal as figure and scenario artifacts.  Returns the
    written :class:`repro.store.ArtifactPaths`.
    """
    from pathlib import Path

    from repro import store
    from repro.core.config import ExperimentConfig
    from repro.utils.serialization import to_jsonable

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / f"snapshot-{name}.json"
    npz_path = out_dir / f"snapshot-{name}.npz"

    if snapshot.config is not None:
        config = config_from_jsonable(snapshot.config)
    else:
        config = ExperimentConfig.smoke().with_overrides(
            seed=snapshot.seed, scale_name="unknown"
        )
    store._atomic_write_npz(npz_path, snapshot.arrays)
    document = {
        "schema_version": store.SCHEMA_VERSION,
        "snapshot": name,
        "model": to_jsonable(snapshot.model),
        "score_layer": snapshot.score_layer,
        "encoding": to_jsonable(snapshot.encoding),
        "seed": snapshot.seed,
        "n_classes": snapshot.n_classes,
        "engine": snapshot.engine,
        "config": snapshot.config,
        "defenses": to_jsonable(snapshot.defenses),
        "metrics": to_jsonable(snapshot.metrics),
        "arrays": {
            key: {
                "npz": npz_path.name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "sha256": store._array_digest(array),
            }
            for key, array in snapshot.arrays.items()
        },
        "provenance": store.build_provenance(
            _SnapshotRunInfo(wall_seconds=wall_seconds), config, git_sha=git_sha
        ),
    }
    store._atomic_write_json(json_path, document)
    return store.ArtifactPaths(json_path=json_path, npz_path=npz_path)


def load_snapshot(json_path) -> NetworkSnapshot:
    """Load a snapshot artifact back; verifies schema and array digests.

    Raises :class:`ValueError` on tampered arrays or newer-schema
    documents and propagates :class:`OSError` when the NPZ bundle is
    missing — a snapshot that cannot be verified must never be served.
    """
    from repro.store import load_snapshot_result

    stored = load_snapshot_result(json_path)
    document = stored.document
    return NetworkSnapshot(
        model=document["model"],
        score_layer=document["score_layer"],
        arrays=stored.arrays,
        encoding=document["encoding"],
        seed=int(document["seed"]),
        n_classes=int(document.get("n_classes", 0)),
        config=document.get("config"),
        defenses=document.get("defenses", {}),
        metrics=document.get("metrics", {}),
        engine=document.get("engine", ""),
    )
