"""Fig. 8a-8c — Attacks 2-4: accuracy vs membrane-threshold corruption.

* Fig. 8a: excitatory-layer threshold change × fraction affected
  (paper: worst −7.32 % at −20 %, 100 % of the layer — relatively low impact).
* Fig. 8b: inhibitory-layer threshold change × fraction affected
  (paper: worst −84.52 % — catastrophic).
* Fig. 8c: both layers fully affected (paper: worst −85.65 %).

The benchmark-scale grids are reduced to the corner points (±20 % change,
0/50/100 % of the layer); run with ``REPRO_SCALE=paper`` and wider grids via
the campaign API for the full figures.
"""

from repro.attacks import AttackCampaign
from repro.core.reporting import format_attack_grid, format_sweep_series

THRESHOLD_CHANGES = (-0.2, 0.2)
FRACTIONS = (0.0, 0.5, 1.0)


def test_fig8a_attack2_excitatory_threshold(benchmark, pipeline, baseline_accuracy):
    campaign = AttackCampaign(pipeline)
    grid = benchmark.pedantic(
        campaign.sweep_layer_threshold,
        args=("excitatory", THRESHOLD_CHANGES, FRACTIONS),
        rounds=1,
        iterations=1,
    )
    print(format_attack_grid(grid, as_change=True))
    # Attacking the excitatory layer alone has limited impact compared to the
    # inhibitory-layer attack (paper: -7.3 % worst case vs -84.5 %).
    assert grid.worst_case_relative_degradation() < 0.5


def test_fig8b_attack3_inhibitory_threshold(benchmark, pipeline, baseline_accuracy):
    campaign = AttackCampaign(pipeline)
    grid = benchmark.pedantic(
        campaign.sweep_layer_threshold,
        args=("inhibitory", THRESHOLD_CHANGES, FRACTIONS),
        rounds=1,
        iterations=1,
    )
    print(format_attack_grid(grid, as_change=True))
    # The paper's headline: corrupting the inhibitory layer collapses accuracy.
    assert grid.worst_case_relative_degradation() > 0.6
    # Leaving the layer untouched (fraction 0) must match the baseline.
    assert grid.accuracy_at(-0.2, 0.0) == baseline_accuracy


def test_fig8c_attack4_both_layers(benchmark, pipeline, baseline_accuracy):
    campaign = AttackCampaign(pipeline)
    sweep = benchmark.pedantic(
        campaign.sweep_both_layers, args=(THRESHOLD_CHANGES,), rounds=1, iterations=1
    )
    print(
        format_sweep_series(
            "threshold change",
            sweep.values,
            sweep.accuracies(),
            baseline_accuracy=baseline_accuracy,
            title="Fig. 8c — Attack 4 (both layers)",
        )
    )
    worst = sweep.worst_case()
    assert worst.result.relative_degradation > 0.6
