"""Quickstart: train the Diehl&Cook SNN and attack its power supply.

Runs the attack-free baseline and the black-box Attack 5 (global VDD fault at
0.8 V) at a small scale, then prints both results.

Figure reproduced
    One point of Fig. 9a (Attack 5 at VDD = 0.8 V) against its baseline.
Expected runtime
    ~1 min on a laptop (smoke scale; two training runs).

Usage::

    python examples/quickstart.py
"""

from repro.attacks import Attack5GlobalSupply
from repro.core import ClassificationPipeline, ExperimentConfig
from repro.core.reporting import format_experiment_result


def main() -> None:
    # ``smoke`` keeps the example fast; switch to ExperimentConfig.benchmark()
    # or .paper() for the figures reported in EXPERIMENTS.md.
    config = ExperimentConfig.smoke()
    pipeline = ClassificationPipeline(config)

    print(f"Training the Diehl&Cook SNN ({config.scale_name} scale)...")
    baseline = pipeline.run_baseline()
    print(format_experiment_result(baseline))
    print()

    print("Re-training the same network under Attack 5 (VDD = 0.8 V)...")
    attacked = pipeline.run(Attack5GlobalSupply(vdd=0.8))
    print(format_experiment_result(attacked))
    print()

    degradation = attacked.relative_degradation or 0.0
    print(
        f"The shared-supply fault removed {degradation:.1%} of the baseline "
        f"accuracy ({baseline.accuracy:.3f} -> {attacked.accuracy:.3f})."
    )


if __name__ == "__main__":
    main()
