"""The paper's five power-oriented attacks as configurable objects.

Each attack knows (a) its threat model, (b) which network parameters it
corrupts and by how much, and (c) how to apply itself to a
:class:`~repro.snn.models.DiehlAndCook2015` network through a
:class:`~repro.attacks.injector.FaultInjector`.

| Attack | Paper section | Knowledge | Corruption |
|--------|---------------|-----------|------------|
| 1      | IV-B          | white box | input-driver amplitude (``theta``)   |
| 2      | IV-C          | white box | EL threshold, 0-100 % of the layer   |
| 3      | IV-C          | white box | IL threshold, 0-100 % of the layer   |
| 4      | IV-C          | white box | EL + IL thresholds, whole layers     |
| 5      | IV-D          | black box | drivers + both layer thresholds via a shared VDD |
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional

from repro.attacks.injector import FaultInjector, FaultRecord, FaultSiteSelection
from repro.attacks.threat import (
    ThreatModel,
    black_box_external_adversary,
    white_box_laser_adversary,
)
from repro.neurons.calibration import VddToParameterMap, behavioural_parameter_map
from repro.snn.models import EXCITATORY_LAYER, INHIBITORY_LAYER
from repro.utils.validation import check_fraction, check_positive, check_range


@dataclass
class PowerAttack:
    """Base class: a named, parameterised power-fault attack."""

    name: str = "power_attack"
    description: str = ""
    threat_model: ThreatModel = field(default_factory=white_box_laser_adversary)

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        """Inject this attack's faults and return the records."""
        raise NotImplementedError

    @property
    def is_black_box(self) -> bool:
        """True when the attack requires no architecture knowledge."""
        return self.threat_model.is_black_box

    def label(self) -> str:
        """Short label used in sweep tables."""
        return self.name


@dataclass
class NoAttack(PowerAttack):
    """The attack-free baseline (0 % of any layer affected)."""

    name: str = "baseline"
    description: str = "No supply manipulation; nominal operation."

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        return []


@dataclass
class Attack1InputSpikeCorruption(PowerAttack):
    """Attack 1 — corrupt the input current drivers (paper Sec. IV-B).

    A VDD change at the drivers scales the input spike amplitude, which
    scales the membrane-voltage change per input spike (the paper's
    ``theta``).  ``theta_change`` is the fractional change (−0.2 … +0.2 in
    the paper's sweep).
    """

    name: str = "attack1_input_spike_corruption"
    description: str = "Driver-only VDD fault scales the per-spike membrane charge."
    theta_change: float = -0.2
    fraction: float = 1.0
    selection: FaultSiteSelection = FaultSiteSelection.RANDOM

    def __post_init__(self) -> None:
        check_range(self.theta_change, "theta_change", -0.9, 2.0)
        check_fraction(self.fraction, "fraction")

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        scale = 1.0 + self.theta_change
        record = injector.inject_input_gain_fault(
            EXCITATORY_LAYER, scale, fraction=self.fraction, selection=self.selection
        )
        return [record]

    def label(self) -> str:
        return f"attack1(theta{self.theta_change:+.0%})"


@dataclass
class Attack2ExcitatoryThreshold(PowerAttack):
    """Attack 2 — corrupt the excitatory layer's membrane threshold."""

    name: str = "attack2_excitatory_threshold"
    description: str = "Laser-localised VDD fault on (part of) the excitatory layer."
    threshold_change: float = -0.2
    fraction: float = 1.0
    selection: FaultSiteSelection = FaultSiteSelection.RANDOM

    def __post_init__(self) -> None:
        check_range(self.threshold_change, "threshold_change", -0.9, 2.0)
        check_fraction(self.fraction, "fraction")

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        scale = 1.0 + self.threshold_change
        record = injector.inject_threshold_fault(
            EXCITATORY_LAYER, scale, fraction=self.fraction, selection=self.selection
        )
        return [record]

    def label(self) -> str:
        return f"attack2(thr{self.threshold_change:+.0%},{self.fraction:.0%})"


@dataclass
class Attack3InhibitoryThreshold(PowerAttack):
    """Attack 3 — corrupt the inhibitory layer's membrane threshold."""

    name: str = "attack3_inhibitory_threshold"
    description: str = "Laser-localised VDD fault on (part of) the inhibitory layer."
    threshold_change: float = -0.2
    fraction: float = 1.0
    selection: FaultSiteSelection = FaultSiteSelection.RANDOM

    def __post_init__(self) -> None:
        check_range(self.threshold_change, "threshold_change", -0.9, 2.0)
        check_fraction(self.fraction, "fraction")

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        scale = 1.0 + self.threshold_change
        record = injector.inject_threshold_fault(
            INHIBITORY_LAYER, scale, fraction=self.fraction, selection=self.selection
        )
        return [record]

    def label(self) -> str:
        return f"attack3(thr{self.threshold_change:+.0%},{self.fraction:.0%})"


@dataclass
class Attack4BothLayerThreshold(PowerAttack):
    """Attack 4 — corrupt both layer thresholds in full (paper Sec. IV-C)."""

    name: str = "attack4_both_layer_threshold"
    description: str = "VDD fault shared by the excitatory and inhibitory layers."
    threshold_change: float = -0.2

    def __post_init__(self) -> None:
        check_range(self.threshold_change, "threshold_change", -0.9, 2.0)

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        scale = 1.0 + self.threshold_change
        return [
            injector.inject_threshold_fault(EXCITATORY_LAYER, scale, fraction=1.0),
            injector.inject_threshold_fault(INHIBITORY_LAYER, scale, fraction=1.0),
        ]

    def label(self) -> str:
        return f"attack4(thr{self.threshold_change:+.0%})"


@dataclass
class CompositeAttack(PowerAttack):
    """Several attacks applied to the *same* network as one compound fault.

    The scenario subsystem (:mod:`repro.scenarios`) uses this to express
    compound threat configurations the paper never swept — e.g. a driver
    VDD droop (input-gain corruption) *while* a laser glitch shifts a layer
    threshold.  Members are applied in order; every member's fault records
    are concatenated, so reporting and reversal see the full compound fault.

    The label concatenates the member labels.  The executor's cache key is
    content-based over every member field, so distinct combinations never
    alias; the pipeline's fault-site RNG stream is keyed on the label —
    combinations whose labels coincide (labels omit e.g. the site-selection
    mode) share a stream but consume it through their own injection paths,
    so results stay a pure function of the attack content.
    """

    name: str = "composite_attack"
    description: str = "Compound supply fault combining several attacks."
    attacks: tuple = ()

    def __post_init__(self) -> None:
        if not self.attacks:
            raise ValueError("a composite attack needs at least one member attack")
        for member in self.attacks:
            if not isinstance(member, PowerAttack):
                raise TypeError(
                    f"composite members must be PowerAttack instances, "
                    f"got {type(member).__name__}"
                )

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        records: List[FaultRecord] = []
        for member in self.attacks:
            records.extend(member.apply(injector))
        return records

    @property
    def is_black_box(self) -> bool:
        """A composite is black box only if every member is."""
        return all(member.is_black_box for member in self.attacks)

    def label(self) -> str:
        return "+".join(member.label() for member in self.attacks)


@dataclass
class Attack5GlobalSupply(PowerAttack):
    """Attack 5 — black-box manipulation of the shared system supply.

    The adversary only chooses the supply voltage; the induced corruption of
    the per-spike drive (``theta``) and of both layers' thresholds is derived
    from the circuit-calibrated :class:`VddToParameterMap`.
    """

    name: str = "attack5_global_supply"
    description: str = "Black-box VDD fault on the whole system (drivers + all layers)."
    threat_model: ThreatModel = field(default_factory=black_box_external_adversary)
    vdd: float = 0.8
    neuron_type: str = "if_amplifier"
    parameter_map: Optional[VddToParameterMap] = None

    def __post_init__(self) -> None:
        check_positive(self.vdd, "vdd")

    def _map(self) -> VddToParameterMap:
        # Never mutate self: the attack object doubles as a cache/task key in
        # the execution subsystem, and must stay cheap to pickle.
        if self.parameter_map is None:
            return _default_parameter_map()
        return self.parameter_map

    def induced_theta_scale(self) -> float:
        """Driver-amplitude scale induced by the chosen supply."""
        return self._map().theta_scale(self.vdd)

    def induced_threshold_scale(self) -> float:
        """Threshold scale induced by the chosen supply."""
        return self._map().threshold_scale(self.vdd, self.neuron_type)

    def apply(self, injector: FaultInjector) -> List[FaultRecord]:
        theta_scale = self.induced_theta_scale()
        threshold_scale = self.induced_threshold_scale()
        return [
            injector.inject_input_gain_fault(EXCITATORY_LAYER, theta_scale, fraction=1.0),
            injector.inject_threshold_fault(EXCITATORY_LAYER, threshold_scale, fraction=1.0),
            injector.inject_threshold_fault(INHIBITORY_LAYER, threshold_scale, fraction=1.0),
        ]

    def label(self) -> str:
        return f"attack5(vdd={self.vdd:.2f}V)"


@lru_cache(maxsize=1)
def _default_parameter_map() -> VddToParameterMap:
    """The shared default calibration map (built once per process)."""
    return behavioural_parameter_map()
