"""Experiment configuration presets.

Three scales are provided:

* ``paper()`` — the paper's setup: 1000 training images, 100+100 neurons,
  250 ms presentations.  Used when regenerating the full evaluation.
* ``benchmark()`` — a reduced setup (300 training images, 150 ms) whose
  baseline accuracy matches the paper's (~76 %) but which keeps the full
  attack sweeps tractable on a laptop.  This is the default for the
  benchmark harness.
* ``smoke()`` — a tiny setup for unit and integration tests.

The scale used by the benchmark harness can be overridden with the
``REPRO_SCALE`` environment variable (``paper``, ``benchmark``, ``smoke`` or
``tiny``); unknown values raise instead of silently falling back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict

from repro.snn.models import DiehlAndCookParameters
from repro.utils.validation import check_fraction, check_positive


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one classification experiment."""

    #: Number of images used for STDP training (the paper uses 1000).
    n_train: int = 300
    #: Number of held-out images used to measure accuracy.
    n_eval: int = 100
    #: Poisson presentation length per image, in simulation steps (1 ms each).
    time_steps: int = 150
    #: Firing rate (Hz) of a full-intensity pixel.
    max_rate: float = 63.75
    #: Number of digit classes.
    n_classes: int = 10
    #: Master seed: dataset jitter, weight init, Poisson encoding and fault
    #: site selection all derive independent streams from it.
    seed: int = 7
    #: Network hyper-parameters.  The input→excitatory normalisation default
    #: is raised from BindsNET's 78.4 to 140 because the synthetic digits
    #: have thinner strokes (fewer active pixels) than MNIST; the higher norm
    #: restores the same per-step excitatory drive and the ~76 % baseline.
    network: DiehlAndCookParameters = field(
        default_factory=lambda: DiehlAndCookParameters(norm=140.0)
    )
    #: Fraction of the generated dataset reserved for evaluation.
    test_fraction: float = 0.25
    #: Human-readable scale label.
    scale_name: str = "benchmark"

    def __post_init__(self) -> None:
        check_positive(self.n_train, "n_train")
        check_positive(self.n_eval, "n_eval")
        check_positive(self.time_steps, "time_steps")
        check_positive(self.max_rate, "max_rate")
        check_positive(self.n_classes, "n_classes")
        check_fraction(self.test_fraction, "test_fraction")

    @property
    def n_samples(self) -> int:
        """Total number of synthetic images to generate."""
        return self.n_train + self.n_eval

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy of the config with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ presets
    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's experimental scale (Sec. IV-A)."""
        return cls(
            n_train=1000,
            n_eval=250,
            time_steps=250,
            scale_name="paper",
        )

    @classmethod
    def benchmark(cls) -> "ExperimentConfig":
        """Reduced scale with a matching ~76 % baseline (default for benches)."""
        return cls(scale_name="benchmark")

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny scale for unit/integration tests (seconds, not minutes)."""
        return cls(
            n_train=120,
            n_eval=60,
            time_steps=100,
            network=DiehlAndCookParameters(n_neurons=64, norm=140.0),
            scale_name="smoke",
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Sub-smoke scale for executor parity checks (~1 s per run).

        Too small for meaningful accuracy — use it only where the *value*
        under test is determinism (serial vs parallel, run-order
        independence), not classification quality.
        """
        return cls(
            n_train=40,
            n_eval=20,
            time_steps=60,
            network=DiehlAndCookParameters(n_neurons=32, norm=140.0),
            scale_name="tiny",
        )

    @classmethod
    def presets(cls) -> Dict[str, Callable[[], "ExperimentConfig"]]:
        """Every named scale preset (``name -> factory``), in paper order."""
        return {
            "paper": cls.paper,
            "benchmark": cls.benchmark,
            "smoke": cls.smoke,
            "tiny": cls.tiny,
        }

    @classmethod
    def from_scale(cls, scale: str) -> "ExperimentConfig":
        """Build the preset named ``scale``; raise listing the valid names."""
        presets = cls.presets()
        normalized = scale.strip().lower()
        if normalized not in presets:
            raise ValueError(
                f"scale must be one of {sorted(presets)}, got {scale!r}"
            )
        return presets[normalized]()

    @classmethod
    def from_environment(cls, default: str = "benchmark") -> "ExperimentConfig":
        """Pick a preset by the ``REPRO_SCALE`` environment variable.

        An unknown value raises :class:`ValueError` naming the valid scales
        instead of silently falling back to the default.
        """
        scale = os.environ.get("REPRO_SCALE", default)
        try:
            return cls.from_scale(scale)
        except ValueError:
            raise ValueError(
                f"REPRO_SCALE must be one of {sorted(cls.presets())}, got {scale!r}"
            ) from None
