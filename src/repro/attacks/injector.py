"""Per-neuron fault injection into the Diehl&Cook network.

The injector is the mechanism shared by all five attacks: it selects a
fraction of a layer (modelling the reach of a localised glitch) and corrupts
either the membrane-threshold scale or the input-drive gain of the selected
neurons.  All injections are recorded and reversible.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.snn.models import DiehlAndCook2015, EXCITATORY_LAYER, INHIBITORY_LAYER
from repro.snn.nodes import LIFNodes
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_in_choices, check_positive


class FaultSiteSelection(Enum):
    """How the affected neurons within a layer are chosen.

    ``RANDOM`` models independent glitch reach; ``CONTIGUOUS`` models a laser
    spot covering physically adjacent neurons (assuming index order follows
    layout order).
    """

    RANDOM = "random"
    CONTIGUOUS = "contiguous"


@dataclass
class FaultRecord:
    """One applied fault, for reporting and reversal."""

    layer: str
    parameter: str
    scale: float
    fraction: float
    affected: np.ndarray

    @property
    def n_affected(self) -> int:
        """Number of corrupted neurons."""
        return int(self.affected.sum())

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.layer}.{self.parameter} x{self.scale:.3f} on "
            f"{self.n_affected} neurons ({self.fraction:.0%} of layer)"
        )


class FaultInjector:
    """Applies and reverses power-fault corruptions on a Diehl&Cook network."""

    #: Layers that can be targeted by threshold faults.
    TARGETABLE_LAYERS = (EXCITATORY_LAYER, INHIBITORY_LAYER)

    def __init__(self, network: DiehlAndCook2015, *, rng: SeedLike = None) -> None:
        self.network = network
        self.rng = ensure_rng(rng, name="fault_injector")
        self.records: List[FaultRecord] = []

    # --------------------------------------------------------------- selection
    def _layer(self, layer: str) -> LIFNodes:
        check_in_choices(layer, "layer", self.TARGETABLE_LAYERS)
        return self.network.layers[layer]

    def select_fault_sites(
        self,
        layer: str,
        fraction: float,
        *,
        selection: FaultSiteSelection = FaultSiteSelection.RANDOM,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Boolean mask of the neurons reached by the fault."""
        check_fraction(fraction, "fraction")
        nodes = self._layer(layer)
        n_affected = int(round(fraction * nodes.n))
        mask = np.zeros(nodes.n, dtype=bool)
        if n_affected == 0:
            return mask
        generator = ensure_rng(rng, name="fault_sites") if rng is not None else self.rng
        if selection is FaultSiteSelection.RANDOM:
            chosen = generator.choice(nodes.n, size=n_affected, replace=False)
        else:
            start = int(generator.integers(0, nodes.n))
            chosen = (start + np.arange(n_affected)) % nodes.n
        mask[np.asarray(chosen, dtype=int)] = True
        return mask

    # --------------------------------------------------------------- injection
    def inject_threshold_fault(
        self,
        layer: str,
        scale: float,
        *,
        fraction: float = 1.0,
        selection: FaultSiteSelection = FaultSiteSelection.RANDOM,
        mask: Optional[np.ndarray] = None,
    ) -> FaultRecord:
        """Scale the membrane threshold of part of a layer.

        ``scale`` multiplies the threshold-to-rest gap (e.g. 0.8 models the
        −20 % threshold change of the paper's worst case).
        """
        check_positive(scale, "scale")
        nodes = self._layer(layer)
        if mask is None:
            mask = self.select_fault_sites(layer, fraction, selection=selection)
        else:
            mask = np.asarray(mask, dtype=bool)
            fraction = float(mask.mean())
        nodes.set_threshold_scale(scale, mask)
        record = FaultRecord(
            layer=layer,
            parameter="threshold",
            scale=scale,
            fraction=fraction,
            affected=mask,
        )
        self.records.append(record)
        return record

    def inject_input_gain_fault(
        self,
        layer: str,
        scale: float,
        *,
        fraction: float = 1.0,
        selection: FaultSiteSelection = FaultSiteSelection.RANDOM,
        mask: Optional[np.ndarray] = None,
    ) -> FaultRecord:
        """Scale the per-spike membrane drive of part of a layer.

        This is the paper's ``theta`` corruption: a corrupted current driver
        delivers larger or smaller input spikes, changing the membrane
        voltage added per input spike.
        """
        check_positive(scale, "scale")
        nodes = self._layer(layer)
        if mask is None:
            mask = self.select_fault_sites(layer, fraction, selection=selection)
        else:
            mask = np.asarray(mask, dtype=bool)
            fraction = float(mask.mean())
        nodes.set_input_gain(scale, mask)
        record = FaultRecord(
            layer=layer,
            parameter="input_gain",
            scale=scale,
            fraction=fraction,
            affected=mask,
        )
        self.records.append(record)
        return record

    # ----------------------------------------------------------------- removal
    def clear(self) -> None:
        """Remove every injected fault and restore nominal parameters."""
        for layer_name in self.TARGETABLE_LAYERS:
            nodes = self.network.layers[layer_name]
            nodes.clear_threshold_scale()
            nodes.set_input_gain(1.0)
        self.records.clear()

    def describe(self) -> str:
        """Multi-line description of all active faults."""
        if not self.records:
            return "no faults injected"
        return "\n".join(record.describe() for record in self.records)
