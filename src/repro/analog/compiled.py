"""Compiled circuit engine: split assembly, vectorised devices, LU reuse.

:class:`CompiledCircuit` is a drop-in :class:`~repro.analog.mna.MNASystem`
that compiles a circuit's topology once and then assembles each Newton
iteration from precomputed structure instead of walking ``circuit.devices``
with scalar ``stamp()`` calls:

* **Split linear/nonlinear assembly** — the matrix stamps of resistors,
  source/inductor incidence rows and (per time step) capacitor/inductor
  companion conductances never change, so they are pre-assembled into one
  *base matrix* per ``(analysis, dt)`` and the per-iteration work reduces to
  one ``memcpy`` plus the source and nonlinear re-stamps.
* **Vectorised device evaluation** — all MOSFETs (and diodes/switches) are
  evaluated at once: terminal voltages are gathered through precomputed
  index arrays, the device model runs as NumPy array math
  (:func:`repro.analog.mosfet.channel_current_array`), and the resulting
  conductance/current stamps are scattered with ``np.add.at`` against
  precomputed flat-index maps.
* **LU reuse** — for linear circuits the factorisation of the (constant)
  matrix is cached per ``(analysis, dt, gmin)`` and each step costs one
  back-substitution; for nonlinear transients the factors of the last
  assembled Jacobian are kept and offered as a *frozen-Jacobian first
  iterate* for the next step (:meth:`CompiledCircuit.predict_step`), with a
  backward-error residual check that falls back to full Newton when the
  step is not mild.  SciPy provides the factorisation; without it the
  engine still runs (dense solves), only the reuse paths are disabled.

Device *values* that only affect the right-hand side (independent source
values/waveforms) may change freely between solves — ``dc_sweep`` relies on
this.  Topology and R/C/L/transistor parameters are frozen at compile time.

The scalar :class:`~repro.analog.mna.MNASystem` path is kept untouched as
the reference implementation; the parity suite in
``tests/test_analog_compiled.py`` pins the two engines together on every
registered figure circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analog.devices import (
    GMIN,
    Capacitor,
    CurrentSource,
    Device,
    Diode,
    Inductor,
    Resistor,
    VoltageControlledSwitch,
    VoltageSource,
    diode_current_and_conductance_array,
    switch_conductance_array,
)
from repro.analog.mna import MNASystem, SolverOptions, Stamper, StampState
from repro.analog.mosfet import MOSFET, channel_current_array
from repro.analog.netlist import Circuit

try:  # SciPy is optional: only the LU-reuse fast paths need it.
    # The raw LAPACK bindings are used instead of scipy.linalg.lu_factor /
    # lu_solve: the high-level wrappers cost tens of microseconds per call,
    # which swamps the back-substitution itself at circuit sizes of a few
    # tens of unknowns.
    from scipy.linalg.lapack import dgetrf, dgetrs

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on scipy-free installs
    dgetrf = dgetrs = None
    HAVE_SCIPY = False

#: Device classes the compiler knows how to vectorise / pre-assemble.  Exact
#: type matches only: subclasses may override ``stamp`` and are therefore
#: routed through the scalar fallback path.
COMPILED_DEVICE_TYPES = (
    Resistor,
    Capacitor,
    Inductor,
    VoltageSource,
    CurrentSource,
    MOSFET,
    Diode,
    VoltageControlledSwitch,
)

#: Bound on the per-(analysis, dt) base-matrix and LU caches.  Adaptive
#: stepping and subdivision produce a stream of distinct dt values; the
#: bound keeps the caches from growing without limit.
_CACHE_LIMIT = 16

#: System size (unknown count) from which ``engine="auto"`` routes a
#: compiled-supported circuit to the sparse tier instead of the dense one.
#: Dense LU is O(N^3) with a small constant, sparse ``splu`` roughly
#: O(nnz^1.5) with a larger one; on crossbar-shaped MNA matrices (a few
#: percent dense) the measured crossover sits well below this threshold, so
#: the margin keeps small circuits on the dense path where they are
#: fastest.  See ``benchmarks/test_engine_hotpath.py`` for the measured
#: dense-vs-sparse scaling curve.
SPARSE_SIZE_THRESHOLD = 256

#: Valid ``engine=`` values of :func:`make_system` and the analyses.
ENGINES = ("auto", "compiled", "sparse", "scalar")


def estimate_system_size(circuit: Circuit) -> int:
    """Unknown count (nodes + branch currents) of ``circuit``.

    Cheap enough to call before building a system: used by the ``auto``
    engine heuristic to decide dense vs sparse without compiling twice.
    """
    return len(circuit.nodes()) + sum(d.n_branches for d in circuit.devices)


def _dt_key(dt: float) -> float:
    """Cache key for a time step, quantised to 12 significant digits.

    A uniform grid built as ``i * dt`` yields per-step widths that differ in
    the last ulp (``3e-4 - 2e-4 != 1e-4`` exactly), which would fragment the
    base-matrix/LU caches into one entry per step.  Quantisation collapses
    those while keeping genuinely different steps (subdivision shrinks by
    4x) distinct; the companion RHS always uses the exact ``state.dt``, so
    the introduced matrix perturbation is ~1e-12 relative — far below
    solver tolerance.
    """
    return float(f"{dt:.12e}")


#: Componentwise backward-error threshold of the frozen-Jacobian first
#: iterate: the predicted solution is accepted as the Newton starting point
#: only when ``|A x - b| <= tol * (|A||x| + |b|)`` row-wise.
_FROZEN_RESIDUAL_TOL = 1e-7

#: Newton-iteration count from which a transient step counts as hard enough
#: for LU reuse: steps converging faster than this solve cheaper without the
#: extra factor-and-keep / predict-and-check work.
_PREDICTOR_MIN_ITERATIONS = 3


@dataclass
class EngineStats:
    """Counters exposed by the compiled engine (benchmark instrumentation)."""

    #: Matrix/RHS assemblies (one per Newton iteration).
    assemblies: int = 0
    #: Fresh LU factorisations.
    factorizations: int = 0
    #: Linear solves served from a cached LU (linear circuits).
    lu_reuses: int = 0
    #: Frozen-Jacobian first iterates accepted / rejected by the residual check.
    frozen_accepts: int = 0
    frozen_rejects: int = 0

    def merge(self, other: "EngineStats") -> None:
        """Accumulate ``other`` into this counter set."""
        self.assemblies += other.assemblies
        self.factorizations += other.factorizations
        self.lu_reuses += other.lu_reuses
        self.frozen_accepts += other.frozen_accepts
        self.frozen_rejects += other.frozen_rejects


class _VectorGroup:
    """Shared gather/scatter machinery of one vectorised device class.

    A group stores, per device, the padded gather indices of its terminals
    plus two precomputed scatter maps: matrix entries addressed by flat
    index into the dense workspace, and RHS entries addressed by row.  Each
    scatter entry selects one *component* (a named per-device array produced
    by :meth:`evaluate`, e.g. ``di/dvd`` or ``i_eq``) and a sign.

    ``evaluate`` broadcasts: with a padded voltage vector of shape
    ``(size+1,)`` components come out ``(C, M)``; with a batch of vectors
    ``(B, size+1)`` (and optionally stacked per-variant ``params``) they come
    out ``(C, B, M)`` and :meth:`scatter` lands them in stacked ``(B, N, N)``
    workspaces through per-variant flat offsets.
    """

    #: Names of the per-device parameter arrays (stacked across a batch).
    PARAM_KEYS: Tuple[str, ...] = ()

    def __init__(self, system: MNASystem, devices: Sequence[Device]) -> None:
        self.system = system
        self.devices = list(devices)
        self.params: Dict[str, np.ndarray] = {}
        self._buffer_cache: Dict[tuple, tuple] = {}
        self._mat_flat: np.ndarray
        self._mat_comp: np.ndarray
        self._mat_dev: np.ndarray
        self._mat_sign: np.ndarray
        self._rhs_idx: np.ndarray
        self._rhs_comp: np.ndarray
        self._rhs_dev: np.ndarray
        self._rhs_sign: np.ndarray

    # ------------------------------------------------------------- compilation
    def _gather_index(self, node: str) -> int:
        """Padded solution index of ``node`` (ground maps to the zero slot)."""
        idx = self.system.index_of(node)
        return self.system.size if idx < 0 else idx

    def _build_scatter(
        self,
        matrix_entries: Sequence[Tuple[int, int, int, int, float]],
        rhs_entries: Sequence[Tuple[int, int, int, float]],
    ) -> None:
        """Freeze the scatter maps.

        ``matrix_entries`` holds ``(row, col, component, device, sign)`` and
        ``rhs_entries`` holds ``(row, component, device, sign)``; entries with
        a ground row/column (index < 0) must already be filtered out.
        """
        size = self.system.size
        self._mat_flat = np.array(
            [r * size + c for r, c, _, _, _ in matrix_entries], dtype=np.intp
        )
        self._mat_comp = np.array([e[2] for e in matrix_entries], dtype=np.intp)
        self._mat_dev = np.array([e[3] for e in matrix_entries], dtype=np.intp)
        self._mat_sign = np.array([e[4] for e in matrix_entries], dtype=float)
        self._rhs_idx = np.array([e[0] for e in rhs_entries], dtype=np.intp)
        self._rhs_comp = np.array([e[1] for e in rhs_entries], dtype=np.intp)
        self._rhs_dev = np.array([e[2] for e in rhs_entries], dtype=np.intp)
        self._rhs_sign = np.array([e[3] for e in rhs_entries], dtype=float)

    def _component_buffers(
        self, n_mat: int, n_rhs: int, batch_shape: tuple
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reusable output buffers (avoids an ``np.stack`` per iteration)."""
        buffers = self._buffer_cache.get(batch_shape)
        if buffers is None:
            count = len(self.devices)
            buffers = (
                np.empty((n_mat, *batch_shape, count)),
                np.empty((n_rhs, *batch_shape, count)),
            )
            self._buffer_cache[batch_shape] = buffers
        return buffers

    # -------------------------------------------------------------- evaluation
    def evaluate(
        self, padded: np.ndarray, params: Optional[Dict[str, np.ndarray]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover - interface
        """Return ``(matrix_components, rhs_components)`` for ``padded``."""
        raise NotImplementedError

    def scatter(
        self,
        matrix_flat: np.ndarray,
        rhs: np.ndarray,
        mat_comp: np.ndarray,
        rhs_comp: np.ndarray,
        *,
        matrix_offsets: Optional[np.ndarray] = None,
        rhs_offsets: Optional[np.ndarray] = None,
        mat_index: Optional[np.ndarray] = None,
    ) -> None:
        """Accumulate evaluated components into (possibly batched) workspaces.

        ``mat_index`` overrides the dense flat-index scatter map with an
        alternative per-entry target (the sparse engines pass the CSC
        ``data`` positions of the same entries); the RHS map is storage
        independent and always used as compiled.
        """
        target = self._mat_flat if mat_index is None else mat_index
        if mat_comp.ndim == 2:  # single variant: components are (C, M)
            np.add.at(
                matrix_flat,
                target,
                self._mat_sign * mat_comp[self._mat_comp, self._mat_dev],
            )
            np.add.at(
                rhs,
                self._rhs_idx,
                self._rhs_sign * rhs_comp[self._rhs_comp, self._rhs_dev],
            )
            return
        # Batched: components are (C, B, M); advanced indexing with the
        # batch slice in the middle yields (E, B) -> transpose to (B, E).
        mat_values = self._mat_sign * mat_comp[self._mat_comp, :, self._mat_dev].T
        np.add.at(
            matrix_flat,
            target[None, :] + matrix_offsets[:, None],
            mat_values,
        )
        rhs_values = self._rhs_sign * rhs_comp[self._rhs_comp, :, self._rhs_dev].T
        np.add.at(
            rhs, self._rhs_idx[None, :] + rhs_offsets[:, None], rhs_values
        )

    def stacked_params(
        self, member_groups: Sequence["_VectorGroup"]
    ) -> Dict[str, np.ndarray]:
        """Stack the parameter arrays of per-variant groups into (B, M)."""
        return {
            key: np.stack([group.params[key] for group in member_groups])
            for key in self.PARAM_KEYS
        }


class _MOSFETGroup(_VectorGroup):
    """Every MOSFET of the circuit, evaluated as one array operation."""

    PARAM_KEYS = ("sign", "beta", "vth0", "lambda_", "n_vt")

    def __init__(self, system: MNASystem, devices: Sequence[MOSFET]) -> None:
        super().__init__(system, devices)
        self._d = np.array([self._gather_index(m.nodes[0]) for m in devices], np.intp)
        self._g = np.array([self._gather_index(m.nodes[1]) for m in devices], np.intp)
        self._s = np.array([self._gather_index(m.nodes[2]) for m in devices], np.intp)
        self.params = {
            "sign": np.array(
                [1.0 if m.parameters.polarity == "nmos" else -1.0 for m in devices]
            ),
            "beta": np.array([m.beta for m in devices]),
            "vth0": np.array([m.parameters.vth0 for m in devices]),
            "lambda_": np.array([m.parameters.lambda_ for m in devices]),
            "n_vt": np.array(
                [
                    m.parameters.subthreshold_slope * m.parameters.thermal_voltage
                    for m in devices
                ]
            ),
        }
        matrix_entries: List[Tuple[int, int, int, int, float]] = []
        rhs_entries: List[Tuple[int, int, int, float]] = []
        for i, mosfet in enumerate(devices):
            d, g, s = (system.index_of(node) for node in mosfet.nodes)
            # Components: 0 = di/dvd, 1 = di/dvg, 2 = di/dvs; KCL rows at the
            # drain (+) and source (-), mirroring MOSFET.stamp.
            for row, sign in ((d, 1.0), (s, -1.0)):
                if row < 0:
                    continue
                for comp, col in enumerate((d, g, s)):
                    if col >= 0:
                        matrix_entries.append((row, col, comp, i, sign))
                rhs_entries.append((row, 0, i, -sign))  # -i_eq at d, +i_eq at s
        self._build_scatter(matrix_entries, rhs_entries)

    def evaluate(self, padded, params=None):
        p = params or self.params
        vd = padded[..., self._d]
        vg = padded[..., self._g]
        vs = padded[..., self._s]
        i_ds, di_dvd, di_dvg, di_dvs = channel_current_array(
            vd,
            vg,
            vs,
            sign=p["sign"],
            beta=p["beta"],
            vth0=p["vth0"],
            lambda_=p["lambda_"],
            n_vt=p["n_vt"],
        )
        i_eq = i_ds - di_dvd * vd - di_dvg * vg - di_dvs * vs
        mat_comp, rhs_comp = self._component_buffers(3, 1, padded.shape[:-1])
        mat_comp[0], mat_comp[1], mat_comp[2] = di_dvd, di_dvg, di_dvs
        rhs_comp[0] = i_eq
        return mat_comp, rhs_comp


class _DiodeGroup(_VectorGroup):
    """Every diode of the circuit, evaluated as one array operation."""

    PARAM_KEYS = ("saturation_current", "vt", "v_crit")

    def __init__(self, system: MNASystem, devices: Sequence[Diode]) -> None:
        super().__init__(system, devices)
        self._a = np.array([self._gather_index(d.nodes[0]) for d in devices], np.intp)
        self._c = np.array([self._gather_index(d.nodes[1]) for d in devices], np.intp)
        self.params = {
            "saturation_current": np.array([d.saturation_current for d in devices]),
            "vt": np.array([d.vt for d in devices]),
            "v_crit": np.array([d.v_crit for d in devices]),
        }
        matrix_entries: List[Tuple[int, int, int, int, float]] = []
        rhs_entries: List[Tuple[int, int, int, float]] = []
        for i, diode in enumerate(devices):
            a, c = (system.index_of(node) for node in diode.nodes)
            # Component 0 = conductance (two-terminal stamp), RHS 0 = i_eq.
            for row, col, sign in ((a, a, 1.0), (c, c, 1.0), (a, c, -1.0), (c, a, -1.0)):
                if row >= 0 and col >= 0:
                    matrix_entries.append((row, col, 0, i, sign))
            if a >= 0:
                rhs_entries.append((a, 0, i, -1.0))
            if c >= 0:
                rhs_entries.append((c, 0, i, 1.0))
        self._build_scatter(matrix_entries, rhs_entries)

    def evaluate(self, padded, params=None):
        p = params or self.params
        v = padded[..., self._a] - padded[..., self._c]
        current, conductance = diode_current_and_conductance_array(
            v,
            saturation_current=p["saturation_current"],
            vt=p["vt"],
            v_crit=p["v_crit"],
        )
        i_eq = current - conductance * v
        mat_comp, rhs_comp = self._component_buffers(1, 1, padded.shape[:-1])
        mat_comp[0] = conductance
        rhs_comp[0] = i_eq
        return mat_comp, rhs_comp


class _SwitchGroup(_VectorGroup):
    """Every voltage-controlled switch, evaluated as one array operation."""

    PARAM_KEYS = ("threshold", "on_conductance", "off_conductance", "transition_width")

    def __init__(
        self, system: MNASystem, devices: Sequence[VoltageControlledSwitch]
    ) -> None:
        super().__init__(system, devices)
        self._a = np.array([self._gather_index(d.nodes[0]) for d in devices], np.intp)
        self._b = np.array([self._gather_index(d.nodes[1]) for d in devices], np.intp)
        self._cp = np.array([self._gather_index(d.nodes[2]) for d in devices], np.intp)
        self._cn = np.array([self._gather_index(d.nodes[3]) for d in devices], np.intp)
        self.params = {
            "threshold": np.array([d.threshold for d in devices]),
            "on_conductance": np.array([d.on_conductance for d in devices]),
            "off_conductance": np.array([d.off_conductance for d in devices]),
            "transition_width": np.array([d.transition_width for d in devices]),
        }
        matrix_entries: List[Tuple[int, int, int, int, float]] = []
        rhs_entries: List[Tuple[int, int, int, float]] = []
        for i, switch in enumerate(devices):
            a, b, cp, cn = (system.index_of(node) for node in switch.nodes)
            # Component 0 = conductance, 1 = transconductance (dg * v_ab).
            for row, col, sign in ((a, a, 1.0), (b, b, 1.0), (a, b, -1.0), (b, a, -1.0)):
                if row >= 0 and col >= 0:
                    matrix_entries.append((row, col, 0, i, sign))
            for row, out_sign in ((a, 1.0), (b, -1.0)):
                if row < 0:
                    continue
                if cp >= 0:
                    matrix_entries.append((row, cp, 1, i, out_sign))
                if cn >= 0:
                    matrix_entries.append((row, cn, 1, i, -out_sign))
                rhs_entries.append((row, 0, i, -out_sign))  # -i_eq at a, +i_eq at b
        self._build_scatter(matrix_entries, rhs_entries)

    def evaluate(self, padded, params=None):
        p = params or self.params
        v_ctrl = padded[..., self._cp] - padded[..., self._cn]
        v_ab = padded[..., self._a] - padded[..., self._b]
        g, dg = switch_conductance_array(
            v_ctrl,
            threshold=p["threshold"],
            on_conductance=p["on_conductance"],
            off_conductance=p["off_conductance"],
            transition_width=p["transition_width"],
        )
        trans = dg * v_ab
        i_eq = -trans * v_ctrl
        mat_comp, rhs_comp = self._component_buffers(2, 1, padded.shape[:-1])
        mat_comp[0], mat_comp[1] = g, trans
        rhs_comp[0] = i_eq
        return mat_comp, rhs_comp


class CompiledCircuit(MNASystem):
    """An :class:`MNASystem` with compiled (split + vectorised) assembly.

    Drop-in compatible with every solver entry point (``newton_solve``,
    transient/DC analyses): only :meth:`assemble` and :meth:`solve_assembled`
    are overridden.  See the module docstring for what is precomputed.
    """

    def __init__(self, circuit: Circuit) -> None:
        super().__init__(circuit)
        self.stats = EngineStats()
        self._base_cache: Dict[tuple, np.ndarray] = {}
        self._lu_cache: Dict[tuple, tuple] = {}
        self._frozen_lu: Optional[tuple] = None
        self._frozen_key: Optional[tuple] = None
        self._frozen_fresh = False
        self._solve_iterations = 0
        self._linear_signature: Optional[tuple] = None
        self._last_key: tuple = ("dc", 0.0)
        self._padded_guess = np.zeros(self.size + 1)
        self._padded_prev = np.zeros(self.size + 1)
        self._zero_padded = np.zeros(self.size + 1)
        self._compile(circuit)

    # ------------------------------------------------------------- compilation
    @classmethod
    def supports(cls, circuit: Circuit) -> bool:
        """Whether every device is a compiled type (no scalar fallback)."""
        return all(type(device) in COMPILED_DEVICE_TYPES for device in circuit.devices)

    def _compile(self, circuit: Circuit) -> None:
        size = self.size
        mosfets: List[MOSFET] = []
        diodes: List[Diode] = []
        switches: List[VoltageControlledSwitch] = []
        self._vsrc: List[Tuple[VoltageSource, int]] = []
        self._isrc: List[Tuple[CurrentSource, int, int]] = []
        self._fallback: List[Device] = []
        caps: List[Capacitor] = []
        inductors: List[Inductor] = []
        # The constant linear stamps are collected as (row, col, value)
        # coordinate entries first; _finalise_pattern turns them into the
        # engine's storage (a dense matrix here, a CSC pattern in the
        # sparse subclass).
        static_entries: List[Tuple[int, int, float]] = []

        def add_static(row: int, col: int, value: float) -> None:
            if row >= 0 and col >= 0:
                static_entries.append((row, col, value))

        for device in circuit.devices:
            kind = type(device)
            if kind is Resistor:
                a, b = (self.index_of(node) for node in device.nodes)
                g = device.conductance
                add_static(a, a, g)
                add_static(b, b, g)
                add_static(a, b, -g)
                add_static(b, a, -g)
            elif kind is Capacitor:
                caps.append(device)
            elif kind in (VoltageSource, Inductor):
                pos, neg = (self.index_of(node) for node in device.nodes)
                branch = self.branch_index_of(device)
                add_static(pos, branch, 1.0)
                add_static(branch, pos, 1.0)
                add_static(neg, branch, -1.0)
                add_static(branch, neg, -1.0)
                if kind is VoltageSource:
                    self._vsrc.append((device, branch))
                else:
                    inductors.append(device)
            elif kind is CurrentSource:
                pos, neg = (self.index_of(node) for node in device.nodes)
                self._isrc.append((device, pos, neg))
            elif kind is MOSFET:
                mosfets.append(device)
            elif kind is Diode:
                diodes.append(device)
            elif kind is VoltageControlledSwitch:
                switches.append(device)
            else:
                self._fallback.append(device)

        # Capacitor scaffolding: matrix entries scale with geq = C/dt
        # (transient) or GMIN (DC); RHS injections gather the previous
        # terminal voltages.
        self._cap_values = np.array([c.capacitance for c in caps])
        cap_mat: List[Tuple[int, int, float]] = []  # (flat, cap index, sign)
        cap_rhs: List[Tuple[int, int, float]] = []  # (row, cap index, sign)
        cap_a_gather, cap_b_gather = [], []
        for i, cap in enumerate(caps):
            a, b = (self.index_of(node) for node in cap.nodes)
            cap_a_gather.append(size if a < 0 else a)
            cap_b_gather.append(size if b < 0 else b)
            for row, col, sign in ((a, a, 1.0), (b, b, 1.0), (a, b, -1.0), (b, a, -1.0)):
                if row >= 0 and col >= 0:
                    cap_mat.append((row * size + col, i, sign))
            if a >= 0:
                cap_rhs.append((a, i, 1.0))
            if b >= 0:
                cap_rhs.append((b, i, -1.0))
        self._cap_mat_flat = np.array([e[0] for e in cap_mat], dtype=np.intp)
        self._cap_mat_src = np.array([e[1] for e in cap_mat], dtype=np.intp)
        self._cap_mat_sign = np.array([e[2] for e in cap_mat], dtype=float)
        self._cap_rhs_idx = np.array([e[0] for e in cap_rhs], dtype=np.intp)
        self._cap_rhs_src = np.array([e[1] for e in cap_rhs], dtype=np.intp)
        self._cap_rhs_sign = np.array([e[2] for e in cap_rhs], dtype=float)
        self._cap_a_gather = np.array(cap_a_gather, dtype=np.intp)
        self._cap_b_gather = np.array(cap_b_gather, dtype=np.intp)

        # Inductor scaffolding: branch diagonal -L/dt plus the -req * i_prev
        # companion on the RHS (transient only; DC keeps the short circuit).
        self._ind_values = np.array([ind.inductance for ind in inductors])
        self._ind_branch = np.array(
            [self.branch_index_of(ind) for ind in inductors], dtype=np.intp
        )
        self._ind_diag_flat = self._ind_branch * size + self._ind_branch

        self._groups: List[_VectorGroup] = []
        if mosfets:
            self._groups.append(_MOSFETGroup(self, mosfets))
        if diodes:
            self._groups.append(_DiodeGroup(self, diodes))
        if switches:
            self._groups.append(_SwitchGroup(self, switches))
        #: Fully linear circuits have an iteration-independent matrix, so
        #: their LU factors can be cached exactly.
        self._fully_linear = not self._groups and not self._fallback
        self._static_entries = (
            np.array([e[0] for e in static_entries], dtype=np.intp),
            np.array([e[1] for e in static_entries], dtype=np.intp),
            np.array([e[2] for e in static_entries], dtype=float),
        )
        self._finalise_pattern()

    def _finalise_pattern(self) -> None:
        """Freeze the constant-stamp storage (dense matrix for this engine).

        Runs once at the end of :meth:`_compile`, after the scatter maps
        (static entries, capacitor/inductor companions, vectorised device
        groups) exist.  The sparse subclass overrides this to build the CSC
        pattern instead of a dense matrix.
        """
        rows, cols, values = self._static_entries
        self._static_matrix = np.zeros((self.size, self.size))
        np.add.at(self._static_matrix, (rows, cols), values)

    # ----------------------------------------------------------- base matrices
    def step_key(self, analysis: str, dt: float) -> tuple:
        """The cache key of one ``(analysis, dt)`` configuration."""
        return ("dc", 0.0) if analysis == "dc" else ("transient", _dt_key(dt))

    def base_matrix(self, analysis: str, dt: float) -> np.ndarray:
        """The constant linear stamp pattern for one ``(analysis, dt)``."""
        return self._base_for(self.step_key(analysis, dt), analysis, dt)

    def _base_for(self, key: tuple, analysis: str, dt: float) -> np.ndarray:
        base = self._base_cache.pop(key, None)  # re-insert below: LRU order
        if base is None:
            base = self._static_matrix.copy()
            if len(self._cap_values):
                geq = (
                    np.full_like(self._cap_values, GMIN)
                    if analysis == "dc"
                    else self._cap_values / dt
                )
                np.add.at(
                    base.ravel(),
                    self._cap_mat_flat,
                    self._cap_mat_sign * geq[self._cap_mat_src],
                )
            if len(self._ind_values) and analysis == "transient":
                base.ravel()[self._ind_diag_flat] -= self._ind_values / dt
            if len(self._base_cache) >= _CACHE_LIMIT:
                self._base_cache.pop(next(iter(self._base_cache)))
        self._base_cache[key] = base
        return base

    # ---------------------------------------------------------------- assembly
    def _padded(self, vector: Optional[np.ndarray], buffer: np.ndarray) -> np.ndarray:
        """``vector`` copied into a buffer with a trailing zero ground slot."""
        if vector is None or len(vector) != self.size:
            return self._zero_padded
        buffer[: self.size] = vector
        return buffer

    def _assemble_source_rhs(self, rhs: np.ndarray, time: float) -> None:
        """Stamp the independent source values into ``rhs``."""
        for device, branch in self._vsrc:
            rhs[branch] += device.value_at(time)
        for device, pos, neg in self._isrc:
            current = device.value_at(time)
            if pos >= 0:
                rhs[pos] -= current
            if neg >= 0:
                rhs[neg] += current

    def _assemble_companion_rhs(self, rhs: np.ndarray, state: StampState) -> None:
        """Stamp the capacitor/inductor companion injections into ``rhs``."""
        prev = self._padded(state.previous, self._padded_prev)
        if len(self._cap_values):
            injection = (self._cap_values / state.dt) * (
                prev[self._cap_a_gather] - prev[self._cap_b_gather]
            )
            np.add.at(
                rhs,
                self._cap_rhs_idx,
                self._cap_rhs_sign * injection[self._cap_rhs_src],
            )
        if len(self._ind_values):
            rhs[self._ind_branch] -= (
                self._ind_values / state.dt
            ) * prev[self._ind_branch]

    def assemble(self, state: StampState, options: SolverOptions) -> tuple:
        """Compiled replacement of :meth:`MNASystem.assemble` (same contract)."""
        analysis = state.analysis
        key = self.step_key(analysis, state.dt)
        matrix, rhs = self._matrix, self._rhs
        np.copyto(matrix, self._base_for(key, analysis, state.dt))
        rhs.fill(0.0)
        self._assemble_source_rhs(rhs, state.time)
        if analysis == "transient":
            self._assemble_companion_rhs(rhs, state)
        if self._groups:
            padded = self._padded(state.guess, self._padded_guess)
            matrix_flat = matrix.ravel()
            for group in self._groups:
                mat_comp, rhs_comp = group.evaluate(padded)
                group.scatter(matrix_flat, rhs, mat_comp, rhs_comp)
        if self._fallback:
            stamper = Stamper(self, matrix=matrix, rhs=rhs)
            for device in self._fallback:
                device.stamp(stamper, state)
        gmin = state.gmin if state.gmin else options.gmin
        matrix.flat[self._node_diag_flat] += gmin
        self._last_key = key
        self._linear_signature = (key, gmin) if self._fully_linear else None
        self.stats.assemblies += 1
        return matrix, rhs

    # ----------------------------------------------------------------- solving
    def _factor(self, matrix: np.ndarray) -> Optional[tuple]:
        """LU factors of ``matrix`` or None when it is (near-)singular."""
        lu, piv, info = dgetrf(matrix)
        if info != 0:
            return None
        self.stats.factorizations += 1
        return lu, piv

    @staticmethod
    def _back_substitute(factors: tuple, rhs: np.ndarray) -> np.ndarray:
        """Solve through cached LAPACK ``getrf`` factors."""
        solution, info = dgetrs(factors[0], factors[1], rhs)
        if info != 0:  # pragma: no cover - getrs only fails on bad arguments
            raise np.linalg.LinAlgError(f"dgetrs failed with info={info}")
        return solution

    def solve_assembled(
        self, matrix: np.ndarray, rhs: np.ndarray, *, iteration: int = 0
    ) -> np.ndarray:
        if iteration == 0:
            # A new Newton run starts: the frozen factors (if any) now belong
            # to the *previous* solve and predict_step has had its chance.
            self._frozen_fresh = False
        self._solve_iterations = iteration + 1
        if not HAVE_SCIPY:
            return super().solve_assembled(matrix, rhs, iteration=iteration)
        if self._linear_signature is not None:
            # pop + re-insert keeps the dict in LRU order, so the eviction
            # below removes the least recently used factors, not the hottest.
            factors = self._lu_cache.pop(self._linear_signature, None)
            if factors is None:
                factors = self._factor(matrix)
                if factors is None:
                    return super().solve_assembled(matrix, rhs, iteration=iteration)
                if len(self._lu_cache) >= _CACHE_LIMIT:
                    self._lu_cache.pop(next(iter(self._lu_cache)))
            else:
                self.stats.lu_reuses += 1
            self._lu_cache[self._linear_signature] = factors
            return self._back_substitute(factors, rhs)
        # Nonlinear: factor through raw LAPACK (cheaper than np.linalg.solve's
        # wrapper) and keep the factors so the next step's first iterate can
        # reuse them through predict_step.
        factors = self._factor(matrix)
        if factors is None:
            return super().solve_assembled(matrix, rhs, iteration=iteration)
        self._frozen_lu = factors
        self._frozen_key = self._last_key
        self._frozen_fresh = True
        return self._back_substitute(factors, rhs)

    # ----------------------------------------------------- frozen-Jacobian hook
    def predict_step(
        self,
        state: StampState,
        solution: np.ndarray,
        options: SolverOptions,
    ) -> Optional[np.ndarray]:
        """Frozen-Jacobian first iterate for the next transient step.

        Assembles the system at the previous step's converged solution and
        back-substitutes through the *cached* LU factors of the previous
        step's final Jacobian (which was factored at essentially the same
        operating point).  The iterate is accepted — as the Newton starting
        guess only, so correctness never depends on it — when its
        componentwise backward error against the freshly assembled system is
        small; otherwise the caller proceeds with full Newton from
        ``solution``.  Returns ``None`` whenever reuse does not apply:
        linear circuits (their whole factorisation is cached instead),
        SciPy missing, a changed dt, or a preceding step mild enough that
        plain Newton is already minimal.
        """
        if (
            not HAVE_SCIPY
            or not self.is_nonlinear
            or not self._frozen_fresh
            or self._frozen_lu is None
            or self._solve_iterations < _PREDICTOR_MIN_ITERATIONS
            or self._frozen_key != self.step_key("transient", state.dt)
        ):
            return None
        state.guess = solution
        matrix, rhs = self.assemble(state, options)
        predicted = self._back_substitute(self._frozen_lu, rhs)
        if not np.all(np.isfinite(predicted)):
            self.stats.frozen_rejects += 1
            return None
        residual = np.abs(matrix @ predicted - rhs)
        denom = np.abs(matrix) @ np.abs(predicted) + np.abs(rhs) + 1e-300
        if np.max(residual / denom) > _FROZEN_RESIDUAL_TOL:
            self.stats.frozen_rejects += 1
            return None
        self.stats.frozen_accepts += 1
        return predicted


def make_system(circuit: Circuit, engine: str = "auto") -> MNASystem:
    """Build the solver backend selected by ``engine``.

    ``"scalar"`` always uses the reference :class:`MNASystem`;
    ``"compiled"`` always uses the dense :class:`CompiledCircuit` (unknown
    device types are still handled through its scalar fallback stamping);
    ``"sparse"`` requests the CSC + ``splu`` tier of
    :mod:`repro.analog.sparse`, degrading to the dense compiled engine
    (with a single warning per process) when SciPy is unavailable or the
    circuit contains non-compiled device types; ``"auto"`` compiles exactly
    when every device is a compiled type, picking the sparse tier once the
    system size reaches :data:`SPARSE_SIZE_THRESHOLD` unknowns.
    """
    if engine == "scalar":
        return MNASystem(circuit)
    if engine == "compiled":
        return CompiledCircuit(circuit)
    if engine == "sparse":
        from repro.analog.sparse import try_sparse_system

        system = try_sparse_system(circuit, explicit=True)
        return system if system is not None else CompiledCircuit(circuit)
    if engine == "auto":
        if not CompiledCircuit.supports(circuit):
            return MNASystem(circuit)
        if estimate_system_size(circuit) >= SPARSE_SIZE_THRESHOLD:
            from repro.analog.sparse import try_sparse_system

            system = try_sparse_system(circuit, explicit=False)
            if system is not None:
                return system
        return CompiledCircuit(circuit)
    raise ValueError(
        f"unknown engine {engine!r}; use one of {', '.join(ENGINES)}"
    )
