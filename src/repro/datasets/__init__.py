"""Synthetic digit dataset (offline MNIST substitute).

The paper evaluates on MNIST; this environment has no network access, so the
dataset substrate renders 28×28 grey-scale digits from stroke skeletons with
per-sample geometric jitter and noise.  The attacks act on network
parameters, not on the input distribution, so any separable ten-class
rate-coded image task preserves the relative accuracy-degradation trends
(see DESIGN.md, substitution table).

* :mod:`repro.datasets.digits` — the stroke renderer and the
  :class:`SyntheticDigits` dataset.
* :mod:`repro.datasets.transforms` — intensity scaling / normalisation.
* :mod:`repro.datasets.loaders` — shuffled batching helpers.
"""

from repro.datasets.digits import (
    DIGIT_SKELETONS,
    SyntheticDigits,
    render_digit,
)
from repro.datasets.transforms import intensity_scale, normalize_unit, threshold_binarize
from repro.datasets.loaders import DataLoader, train_test_split

__all__ = [
    "DIGIT_SKELETONS",
    "SyntheticDigits",
    "render_digit",
    "intensity_scale",
    "normalize_unit",
    "threshold_binarize",
    "DataLoader",
    "train_test_split",
]
