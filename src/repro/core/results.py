"""Result containers for the attack experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class ExperimentResult:
    """Outcome of one train-and-evaluate run, possibly under attack.

    Attributes
    ----------
    attack_label:
        Label of the applied attack (``"baseline"`` when none).
    accuracy:
        Classification accuracy on the held-out images.
    baseline_accuracy:
        Accuracy of the matching attack-free run (same config and seed).
    mean_excitatory_spikes:
        Average number of excitatory spikes per evaluated example — the
        paper's qualitative explanations (inhibition collapse, silenced
        excitatory layer) show up directly in this number.
    fault_descriptions:
        Human-readable descriptions of the injected faults.
    """

    attack_label: str
    accuracy: float
    baseline_accuracy: Optional[float] = None
    mean_excitatory_spikes: float = 0.0
    fault_descriptions: List[str] = field(default_factory=list)
    scale_name: str = "benchmark"

    @property
    def accuracy_change(self) -> Optional[float]:
        """Absolute accuracy change vs the baseline (negative = degradation)."""
        if self.baseline_accuracy is None:
            return None
        return self.accuracy - self.baseline_accuracy

    @property
    def relative_degradation(self) -> Optional[float]:
        """Accuracy degradation as a fraction of the baseline accuracy.

        The paper reports degradations this way ("accuracy is reduced by
        85.65 %" means the attacked accuracy lost 85.65 % of the baseline).
        """
        if self.baseline_accuracy in (None, 0.0):
            return None
        return (self.baseline_accuracy - self.accuracy) / self.baseline_accuracy

    def as_row(self) -> tuple:
        """(label, accuracy, change) tuple for table printing."""
        change = self.accuracy_change
        return (
            self.attack_label,
            round(self.accuracy, 4),
            None if change is None else round(change, 4),
        )


@dataclass
class AttackGridResult:
    """A 2-D sweep of attack parameters (e.g. threshold change × fraction).

    ``accuracies[i, j]`` is the accuracy for ``row_values[i]`` and
    ``column_values[j]``.
    """

    name: str
    row_parameter: str
    column_parameter: str
    row_values: np.ndarray
    column_values: np.ndarray
    accuracies: np.ndarray
    baseline_accuracy: float
    scale_name: str = "benchmark"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.row_values = np.asarray(self.row_values, dtype=float)
        self.column_values = np.asarray(self.column_values, dtype=float)
        self.accuracies = np.asarray(self.accuracies, dtype=float)
        expected = (len(self.row_values), len(self.column_values))
        if self.accuracies.shape != expected:
            raise ValueError(
                f"accuracies must have shape {expected}, got {self.accuracies.shape}"
            )

    def accuracy_at(self, row_value: float, column_value: float) -> float:
        """Accuracy at an exact grid point."""
        row = int(np.argmin(np.abs(self.row_values - row_value)))
        col = int(np.argmin(np.abs(self.column_values - column_value)))
        return float(self.accuracies[row, col])

    def degradation(self) -> np.ndarray:
        """Accuracy drop below the baseline (positive numbers = degradation)."""
        return self.baseline_accuracy - self.accuracies

    def worst_case(self) -> tuple:
        """(row_value, column_value, accuracy) of the most damaging point."""
        idx = np.unravel_index(np.argmin(self.accuracies), self.accuracies.shape)
        return (
            float(self.row_values[idx[0]]),
            float(self.column_values[idx[1]]),
            float(self.accuracies[idx]),
        )

    def worst_case_relative_degradation(self) -> float:
        """Largest accuracy loss as a fraction of the baseline accuracy."""
        if self.baseline_accuracy == 0:
            return 0.0
        return float(
            (self.baseline_accuracy - self.accuracies.min()) / self.baseline_accuracy
        )
