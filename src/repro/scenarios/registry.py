"""The scenario registry: one name → one declarative scenario.

Mirrors the figure registry (:mod:`repro.figures`) one abstraction level
up: figures pin the paper's published sweeps, scenarios span the wider
threat space the paper's model supports.  The CLI
(``python -m repro scenarios list|run|report``), the runner and the tests
all address scenarios through this registry, so a scenario defined once —
in code or loaded from a YAML/JSON file — is first-class everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.scenarios.composite import CompositeScenario
from repro.scenarios.spec import ScenarioSpec

#: Anything the registry can hold.
Scenario = Union[ScenarioSpec, CompositeScenario]

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry (names must be unique)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """The registered scenario for ``name`` (KeyError lists valid names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def iter_scenarios() -> List[Scenario]:
    """All registered scenarios, in registration order."""
    return list(_REGISTRY.values())


def scenario_names() -> List[str]:
    """Names of every registered scenario, in registration order."""
    return list(_REGISTRY)


def unregister_scenario(name: str) -> None:
    """Remove one scenario (used by tests registering temporary scenarios)."""
    _REGISTRY.pop(name, None)
