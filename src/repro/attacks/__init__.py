"""Power-oriented fault-injection attacks on the Diehl&Cook SNN.

The package translates circuit-level supply-voltage corruption into
network-level parameter corruption and packages the paper's five attacks:

* :mod:`repro.attacks.threat` — the threat model (power domains, adversary
  capabilities, black-box vs white-box knowledge).
* :mod:`repro.attacks.injector` — the fault injector that corrupts per-neuron
  thresholds and input gains for a chosen fraction of a layer.
* :mod:`repro.attacks.attacks` — Attack 1-5 as configurable objects.
* :mod:`repro.attacks.campaign` — sweep drivers that regenerate the attack
  figures (accuracy vs theta change, vs threshold change x fraction, vs VDD).
"""

from repro.attacks.threat import (
    AdversaryAccess,
    PowerDomain,
    PowerDomainScheme,
    ThreatModel,
)
from repro.attacks.injector import FaultInjector, FaultRecord, FaultSiteSelection
from repro.attacks.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
    CompositeAttack,
    NoAttack,
    PowerAttack,
)
from repro.attacks.campaign import AttackCampaign, AttackOutcome, AttackSweep

__all__ = [
    "AdversaryAccess",
    "PowerDomain",
    "PowerDomainScheme",
    "ThreatModel",
    "FaultInjector",
    "FaultRecord",
    "FaultSiteSelection",
    "PowerAttack",
    "NoAttack",
    "Attack1InputSpikeCorruption",
    "Attack2ExcitatoryThreshold",
    "Attack3InhibitoryThreshold",
    "Attack4BothLayerThreshold",
    "Attack5GlobalSupply",
    "CompositeAttack",
    "AttackCampaign",
    "AttackOutcome",
    "AttackSweep",
]
