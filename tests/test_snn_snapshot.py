"""Bitwise serving-parity suite: snapshots, scoring engine, CLI integration.

The serving tier's contract is that train → save → load → score is
bit-identical to scoring with the in-memory network it was captured from —
across every registered model variant, both engines (scalar/batched) and
clean-vs-fault-injected scoring.  The suite also pins the persistence
discipline (digest verification, newer-schema refusal, loud errors on
tampered or missing arrays) and the ``python -m repro snapshot`` /
``repro report`` command surface.
"""

import json

import numpy as np
import pytest

from repro.attacks.attacks import (
    Attack2ExcitatoryThreshold,
    Attack4BothLayerThreshold,
)
from repro.cli import main
from repro.core import ClassificationPipeline, ExperimentConfig
from repro.figures import fig8_accuracy_from_snapshot
from repro.snn import MODEL_VARIANTS, InputNodes, LIFNodes
from repro.snn.serving import ScoringEngine
from repro.snn.snapshot import (
    ASSIGNMENTS_KEY,
    NetworkSnapshot,
    SnapshotError,
    capture_network_state,
    capture_snapshot,
    hydrate_network,
    load_snapshot,
    prediction_digest,
    save_snapshot,
    snapshot_from_pipeline,
)
from repro.store import classify_artifact_json, load_snapshot_result

TIME_STEPS = 40
MAX_RATE = 63.75


def input_layer_name(network):
    for name, nodes in network.layers.items():
        if isinstance(nodes, InputNodes):
            return name
    raise AssertionError("model has no input layer")


def make_rasters(network, count, time_steps=TIME_STEPS, seed=11):
    rng = np.random.default_rng(seed)
    n = network.layers[input_layer_name(network)].n
    return np.stack([rng.random((time_steps, n)) < 0.25 for _ in range(count)])


def train_variant(name, seed=5, presentations=4, corrupt=False):
    """A briefly-trained (and optionally fault-corrupted) variant network."""
    network = MODEL_VARIANTS[name](seed)
    input_name = input_layer_name(network)
    for raster in make_rasters(network, presentations, seed=seed + 1):
        network.set_learning(True)
        for connection in network.connections.values():
            connection.normalize()
        network.reset_monitors()
        network.reset_state_variables()
        network.run({input_name: raster})
    if corrupt:
        # The shape of an injected fault: persistent per-neuron threshold
        # and gain corruption that the snapshot must round-trip exactly.
        for nodes in network.layers.values():
            if isinstance(nodes, LIFNodes):
                nodes.threshold_scale[::2] = 0.8
                nodes.input_gain[:] = 1.1
                break
    return network


def reference_counts(network, rasters):
    """Scalar-engine spike counts of the in-memory network (the oracle)."""
    input_name = input_layer_name(network)
    monitor = next(iter(network.monitors.values()))
    network.set_learning(False)
    counts = []
    for raster in rasters:
        network.reset_monitors()
        network.reset_state_variables()
        network.run({input_name: raster})
        counts.append(monitor.spike_counts())
    return np.asarray(counts)


# ---------------------------------------------------------------------------
# Per-variant parity: every registered model, both engines, clean + faulted.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("corrupt", [False, True], ids=["clean", "faulted"])
@pytest.mark.parametrize("name", sorted(MODEL_VARIANTS))
def test_saved_snapshot_scores_bit_identical_to_live_network(
    name, corrupt, tmp_path
):
    network = train_variant(name, corrupt=corrupt)
    rasters = make_rasters(network, 5, seed=23)
    expected = reference_counts(network, rasters)

    snapshot = capture_snapshot(
        network,
        seed=5,
        time_steps=TIME_STEPS,
        max_rate=MAX_RATE,
        model={"kind": "variant", "name": name},
    )
    paths = save_snapshot(snapshot, tmp_path, name=f"variant-{name}")
    loaded = load_snapshot(paths.json_path)

    for engine in ("scalar", "batched"):
        result = ScoringEngine(loaded, engine=engine).score_rasters(rasters)
        assert np.array_equal(result.spike_counts, expected), (
            f"{name}/{engine}: served spike counts diverge from the live network"
        )
        # Without label assignments every prediction is the -1 sentinel.
        assert np.all(result.labels == -1)


@pytest.mark.parametrize("name", sorted(MODEL_VARIANTS))
def test_hydrated_state_matches_captured_state(name):
    network = train_variant(name, corrupt=True)
    snapshot = capture_snapshot(
        network,
        seed=5,
        time_steps=TIME_STEPS,
        max_rate=MAX_RATE,
        model={"kind": "variant", "name": name},
    )
    hydrated = hydrate_network(snapshot)
    for key, value in capture_network_state(hydrated).items():
        assert np.array_equal(value, snapshot.arrays[key]), key


# ---------------------------------------------------------------------------
# Pipeline round-trip: fig-8 accuracy from a snapshot, no retraining.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_pipeline():
    return ClassificationPipeline(ExperimentConfig.tiny())


@pytest.fixture(scope="module")
def tiny_snapshot_paths(tiny_pipeline, tmp_path_factory):
    snapshot = snapshot_from_pipeline(tiny_pipeline)
    out_dir = tmp_path_factory.mktemp("snapshots")
    return save_snapshot(snapshot, out_dir, name="tiny"), snapshot


class TestPipelineRoundTrip:
    def test_snapshot_metrics_match_live_run(self, tiny_pipeline, tiny_snapshot_paths):
        _, snapshot = tiny_snapshot_paths
        live = tiny_pipeline.run_baseline()
        assert snapshot.metrics["accuracy"] == live.accuracy
        assert (
            snapshot.metrics["mean_excitatory_spikes"] == live.mean_excitatory_spikes
        )

    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_served_evaluation_is_bit_identical(self, tiny_snapshot_paths, engine):
        paths, snapshot = tiny_snapshot_paths
        loaded = load_snapshot(paths.json_path)
        evaluation = ScoringEngine(loaded, engine=engine).evaluate()
        assert evaluation.accuracy == snapshot.metrics["accuracy"]
        assert evaluation.mean_spikes == snapshot.metrics["mean_excitatory_spikes"]
        assert (
            evaluation.predictions_sha256
            == snapshot.metrics["eval_predictions_sha256"]
        )

    def test_score_reproduces_pipeline_eval_counts(
        self, tiny_pipeline, tiny_snapshot_paths
    ):
        paths, _ = tiny_snapshot_paths
        engine = ScoringEngine(load_snapshot(paths.json_path))
        network, assignments, _rates = tiny_pipeline.trained_network()
        counts = tiny_pipeline.record_responses(
            network, tiny_pipeline.eval_images, stream="eval"
        )
        result = engine.score(tiny_pipeline.eval_images, stream="eval")
        assert np.array_equal(result.spike_counts, counts)
        assert np.array_equal(engine.snapshot.arrays[ASSIGNMENTS_KEY], assignments)

    def test_fig8_helper_reports_parity(self, tiny_snapshot_paths):
        paths, snapshot = tiny_snapshot_paths
        report = fig8_accuracy_from_snapshot(paths.json_path)
        assert report["parity"] is True
        assert report["accuracy"] == snapshot.metrics["accuracy"]
        assert (
            report["predictions_sha256"]
            == snapshot.metrics["eval_predictions_sha256"]
        )


class TestFaultInjectedServing:
    """Snapshot × attack composition matches the live pipeline's faults."""

    ATTACK = Attack2ExcitatoryThreshold(threshold_change=-0.2, fraction=0.5)

    def test_attack_trained_snapshot_serves_bit_identical(
        self, tiny_pipeline, tmp_path
    ):
        attack = Attack4BothLayerThreshold(threshold_change=-0.2)
        snapshot = snapshot_from_pipeline(tiny_pipeline, attack=attack)
        assert snapshot.metrics["attack"] == attack.label()
        paths = save_snapshot(snapshot, tmp_path, name="attacked")
        evaluation = ScoringEngine(load_snapshot(paths.json_path)).evaluate()
        assert evaluation.accuracy == snapshot.metrics["accuracy"]
        assert (
            evaluation.predictions_sha256
            == snapshot.metrics["eval_predictions_sha256"]
        )

    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_under_attack_matches_manual_injection(
        self, tiny_snapshot_paths, engine
    ):
        paths, _ = tiny_snapshot_paths
        loaded = load_snapshot(paths.json_path)
        attacked = ScoringEngine(loaded, engine=engine).under_attack(self.ATTACK)
        assert attacked.fault_records, "attack injected no faults"
        # The same (snapshot, attack) pair is a pure function: a second
        # composition corrupts the same fault sites and scores identically.
        again = ScoringEngine(loaded, engine=engine, attack=self.ATTACK)
        rasters = make_rasters(attacked.network, 4, seed=31)
        first = attacked.score_rasters(rasters)
        second = again.score_rasters(rasters)
        assert np.array_equal(first.spike_counts, second.spike_counts)
        assert np.array_equal(first.labels, second.labels)

    def test_attacked_scoring_diverges_from_clean(self, tiny_snapshot_paths):
        paths, _ = tiny_snapshot_paths
        loaded = load_snapshot(paths.json_path)
        clean = ScoringEngine(loaded)
        attacked = clean.under_attack(Attack4BothLayerThreshold(threshold_change=1.2))
        rasters = make_rasters(clean.network, 4, seed=37)
        assert not np.array_equal(
            clean.score_rasters(rasters).spike_counts,
            attacked.score_rasters(rasters).spike_counts,
        )


# ---------------------------------------------------------------------------
# Persistence discipline: digests, schema refusal, classification.
# ---------------------------------------------------------------------------


class TestPersistenceIntegrity:
    def test_document_is_classified_as_snapshot(self, tiny_snapshot_paths):
        paths, _ = tiny_snapshot_paths
        assert classify_artifact_json(paths.json_path) == "snapshot"

    def test_round_trip_preserves_every_array_bitwise(self, tiny_snapshot_paths):
        paths, snapshot = tiny_snapshot_paths
        loaded = load_snapshot(paths.json_path)
        assert set(loaded.arrays) == set(snapshot.arrays)
        for key, value in snapshot.arrays.items():
            assert np.array_equal(loaded.arrays[key], value), key
            assert loaded.arrays[key].dtype == value.dtype, key
        assert loaded.seed == snapshot.seed
        assert loaded.encoding == snapshot.encoding
        assert loaded.n_classes == snapshot.n_classes
        assert loaded.defenses == snapshot.defenses

    def test_tampered_array_is_rejected_loudly(self, tiny_snapshot_paths, tmp_path):
        paths, snapshot = tiny_snapshot_paths
        target = tmp_path / "snapshot-tampered.json"
        npz = tmp_path / "snapshot-tampered.npz"
        document = json.loads(paths.json_path.read_text())
        for entry in document["arrays"].values():
            entry["npz"] = npz.name
        target.write_text(json.dumps(document))
        arrays = dict(np.load(paths.npz_path))
        key = next(k for k in arrays if k.startswith("connection."))
        arrays[key] = arrays[key] + 1.0
        np.savez(npz, **arrays)
        with pytest.raises(ValueError, match="digest mismatch"):
            load_snapshot(target)

    def test_newer_schema_is_refused(self, tiny_snapshot_paths, tmp_path):
        paths, _ = tiny_snapshot_paths
        document = json.loads(paths.json_path.read_text())
        document["schema_version"] = document["schema_version"] + 1
        target = tmp_path / "snapshot-future.json"
        target.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(target)

    def test_missing_npz_raises_oserror(self, tiny_snapshot_paths, tmp_path):
        paths, _ = tiny_snapshot_paths
        target = tmp_path / "snapshot-orphan.json"
        target.write_text(paths.json_path.read_text())
        with pytest.raises(OSError):
            load_snapshot(target)

    def test_provenance_records_engine_scale_and_seed(self, tiny_snapshot_paths):
        paths, snapshot = tiny_snapshot_paths
        stored = load_snapshot_result(paths.json_path)
        assert stored.name == "tiny"
        assert stored.document["engine"] == snapshot.engine
        assert stored.provenance["scale"] == "tiny"
        assert stored.provenance["seed"] == snapshot.seed
        assert "git_sha" in stored.provenance


class TestHydrationErrors:
    def _bare_snapshot(self, **overrides):
        fields = dict(
            model={"kind": "variant", "name": "lif_feedforward_postpre"},
            score_layer="readout",
            arrays={},
            encoding={"time_steps": TIME_STEPS, "max_rate": MAX_RATE},
            seed=0,
        )
        fields.update(overrides)
        return NetworkSnapshot(**fields)

    def test_unknown_variant_name(self):
        snapshot = self._bare_snapshot(model={"kind": "variant", "name": "nope"})
        with pytest.raises(SnapshotError, match="unknown model variant"):
            hydrate_network(snapshot)

    def test_unknown_model_kind(self):
        snapshot = self._bare_snapshot(model={"kind": "mystery"})
        with pytest.raises(SnapshotError, match="model kind"):
            hydrate_network(snapshot)

    def test_shape_mismatch_is_rejected(self):
        snapshot = self._bare_snapshot(
            arrays={"layer.readout.input_gain": np.ones(3)}
        )
        with pytest.raises(SnapshotError, match="shape"):
            hydrate_network(snapshot)

    def test_unmapped_array_key_is_rejected(self):
        snapshot = self._bare_snapshot(arrays={"mystery.blob": np.ones(4)})
        with pytest.raises(SnapshotError, match="unrecognised"):
            hydrate_network(snapshot)

    def test_evaluate_without_config_is_rejected(self):
        network = train_variant("lif_feedforward_postpre")
        snapshot = capture_snapshot(
            network,
            seed=5,
            time_steps=TIME_STEPS,
            max_rate=MAX_RATE,
            model={"kind": "variant", "name": "lif_feedforward_postpre"},
        )
        with pytest.raises(SnapshotError, match="config"):
            ScoringEngine(snapshot).evaluate()


# ---------------------------------------------------------------------------
# CLI surface: snapshot export/info/--rescore and the report listing.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cli_export_dir(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("cli_snapshots")
    code = main(
        [
            "snapshot",
            "export",
            "--scale",
            "tiny",
            "--out",
            str(out_dir),
            "--name",
            "fig8",
            "--quiet",
        ]
    )
    assert code == 0
    return out_dir


class TestSnapshotCli:
    def test_export_writes_a_verified_artifact(self, cli_export_dir):
        json_path = cli_export_dir / "snapshot-fig8.json"
        assert json_path.exists()
        assert (cli_export_dir / "snapshot-fig8.npz").exists()
        assert classify_artifact_json(json_path) == "snapshot"
        load_snapshot(json_path)  # digest-verified

    def test_info_rescore_proves_cross_engine_parity(self, cli_export_dir, capsys):
        json_path = cli_export_dir / "snapshot-fig8.json"
        for engine in ("batched", "scalar"):
            code = main(
                ["snapshot", "info", str(json_path), "--rescore", "--engine", engine]
            )
            assert code == 0, f"--rescore failed on the {engine} engine"
        out = capsys.readouterr().out
        assert "serving parity" in out

    def test_report_lists_snapshot_with_provenance(self, cli_export_dir, capsys):
        assert main(["report", str(cli_export_dir)]) == 0
        out = capsys.readouterr().out
        assert "Serving snapshots" in out
        assert "snapshot-fig8.json" in out
        assert "tiny" in out

    def test_report_fails_on_corrupt_snapshot_npz(self, cli_export_dir, tmp_path, capsys):
        json_path = tmp_path / "snapshot-broken.json"
        json_path.write_text((cli_export_dir / "snapshot-fig8.json").read_text())
        arrays = dict(np.load(cli_export_dir / "snapshot-fig8.npz"))
        key = next(iter(arrays))
        arrays[key] = arrays[key] + 1.0
        np.savez(tmp_path / "snapshot-fig8.npz", **arrays)
        assert main(["report", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "failed to load" in err

    def test_report_fails_on_missing_snapshot_npz(self, cli_export_dir, tmp_path, capsys):
        json_path = tmp_path / "snapshot-orphan.json"
        json_path.write_text((cli_export_dir / "snapshot-fig8.json").read_text())
        assert main(["report", str(tmp_path)]) == 1

    def test_info_rescore_detects_tampered_metrics(self, cli_export_dir, tmp_path, capsys):
        source = json.loads((cli_export_dir / "snapshot-fig8.json").read_text())
        source["metrics"]["eval_predictions_sha256"] = "0" * 64
        source["metrics"]["accuracy"] = 0.999
        for entry in source["arrays"].values():
            entry["npz"] = "snapshot-fig8.npz"
        (tmp_path / "snapshot-fig8.json").write_text(json.dumps(source))
        (tmp_path / "snapshot-fig8.npz").write_bytes(
            (cli_export_dir / "snapshot-fig8.npz").read_bytes()
        )
        assert (
            main(["snapshot", "info", str(tmp_path / "snapshot-fig8.json"), "--rescore"])
            == 1
        )
        assert "diverge" in capsys.readouterr().err


def test_prediction_digest_is_dtype_canonical():
    a = prediction_digest(np.array([1, 2, 3], dtype=np.int32))
    b = prediction_digest(np.array([1, 2, 3], dtype=np.int64))
    c = prediction_digest([1, 2, 3])
    assert a == b == c
    assert prediction_digest([3, 2, 1]) != a
