"""Fig. 6a-6c — membrane-threshold and time-to-spike sensitivity to VDD.

Fig. 6a: membrane threshold vs VDD for both neurons (paper: AH −17.9 %/+16.8 %,
I&F −18.0 %/+17.1 % for ±20 % VDD).

Fig. 6b/6c: the resulting time-to-spike change at fixed input amplitude.

Thin wrapper over the ``fig6`` registry entry (``python -m repro run fig6``).
"""

import numpy as np

from repro.figures import get_figure


def test_fig6a_threshold_vs_vdd(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig6").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert -0.22 < result.metrics["threshold_change_at_0v8"] < -0.10
    assert 0.10 < result.metrics["threshold_change_at_1v2"] < 0.22
    # The I&F comparator trips at half the supply by construction.
    assert np.allclose(
        result.arrays["if_model_threshold_V"], 0.5 * result.arrays["vdd_V"]
    )


def test_fig6bc_time_to_spike_vs_vdd(figure_context):
    metrics = get_figure("fig6").run(figure_context).metrics
    # Lower supply -> lower threshold -> faster spiking for both neurons.
    assert metrics["ah_tts_change_at_0v8_pct"] < -8
    assert metrics["ah_tts_change_at_1v2_pct"] > 8
    assert metrics["if_tts_change_at_0v8_pct"] < -12
    assert metrics["if_tts_change_at_1v2_pct"] > 15
