"""Behavioural model of the Axon-Hillock neuron.

The model reproduces, in closed form plus a light event-driven loop, the
properties of the circuit in :mod:`repro.circuits.axon_hillock` that matter
for the attack analysis:

* **Membrane threshold** — the switching threshold of the first inverter,
  computed from the square-law expression
  ``V_sw = (VDD - |V_tp| + V_tn * sqrt(r)) / (1 + sqrt(r))`` with
  ``r = beta_n / beta_p``; it scales almost proportionally with VDD, which is
  the vulnerability exploited by Attacks 2-5.
* **Integration** — below threshold the output is low, so the input charges
  ``C_mem + C_fb`` linearly.
* **Firing and reset** — when the membrane crosses the threshold the output
  fires; the reset path (bounded by the ``V_pw`` bias) discharges the
  membrane back to ground at roughly constant current, after which the cycle
  repeats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analog.mosfet import MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.neurons.metrics import SpikeMetrics
from repro.utils.validation import check_positive


@dataclass
class AxonHillockModel:
    """Event-driven behavioural Axon-Hillock neuron.

    Parameters
    ----------
    membrane_capacitance, feedback_capacitance:
        The two 1 pF capacitors of the paper's design.
    vdd:
        Supply voltage (the attack knob).
    pmos_aspect_ratio, nmos_aspect_ratio:
        W/L of the first inverter's devices; the sizing defense sweeps the
        effective ratio.
    reset_current:
        Discharge current of the reset path when the output is high (set by
        the ``V_pw`` bias in the circuit).
    threshold_override:
        When set, the membrane threshold is pinned to this value regardless
        of VDD — used to model the comparator/bandgap defenses.
    """

    membrane_capacitance: float = 1e-12
    feedback_capacitance: float = 1e-12
    vdd: float = 1.0
    pmos_aspect_ratio: float = 400e-9 / 65e-9
    nmos_aspect_ratio: float = 520e-9 / 65e-9
    reset_current: float = 550e-9
    nmos_params: MOSFETParameters = NMOS_65NM
    pmos_params: MOSFETParameters = PMOS_65NM
    threshold_override: float | None = None
    nominal_vdd: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.membrane_capacitance, "membrane_capacitance")
        check_positive(self.feedback_capacitance, "feedback_capacitance")
        check_positive(self.vdd, "vdd")
        check_positive(self.pmos_aspect_ratio, "pmos_aspect_ratio")
        check_positive(self.nmos_aspect_ratio, "nmos_aspect_ratio")
        check_positive(self.reset_current, "reset_current")

    # ------------------------------------------------------------- threshold
    @property
    def beta_ratio(self) -> float:
        """``beta_n / beta_p`` of the first inverter."""
        beta_n = self.nmos_params.kp * self.nmos_aspect_ratio
        beta_p = self.pmos_params.kp * self.pmos_aspect_ratio
        return beta_n / beta_p

    def membrane_threshold(self, vdd: float | None = None) -> float:
        """Membrane (inverter switching) threshold at supply ``vdd``.

        Uses the standard square-law switching-point expression.  When both
        devices are in saturation at the trip point this matches the MNA
        extraction within a few millivolts (see the ablation benchmark).
        """
        if self.threshold_override is not None:
            return self.threshold_override
        vdd = self.vdd if vdd is None else vdd
        root_r = math.sqrt(self.beta_ratio)
        vtn = self.nmos_params.vth0
        vtp = self.pmos_params.vth0
        threshold = (vdd - vtp + vtn * root_r) / (1.0 + root_r)
        # The switching point is physically confined between the device
        # thresholds for very asymmetric sizing.
        return float(min(max(threshold, vtn * 0.5), vdd))

    def threshold_change(self, vdd: float) -> float:
        """Fractional threshold change at ``vdd`` vs the nominal supply."""
        nominal = self.membrane_threshold(self.nominal_vdd)
        return (self.membrane_threshold(vdd) - nominal) / nominal

    @property
    def integration_capacitance(self) -> float:
        """Capacitance charged by the input while the output is low."""
        return self.membrane_capacitance + self.feedback_capacitance

    # ------------------------------------------------------------- behaviour
    def time_to_first_spike(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        vdd: float | None = None,
    ) -> float:
        """Time for the membrane to charge from rest to threshold.

        ``duty_cycle`` is the fraction of time the input spike train is high
        (the paper's 200 nA / 25 ns spikes at 40 MHz correspond to 0.5).
        """
        check_positive(input_amplitude, "input_amplitude")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        vdd = self.vdd if vdd is None else vdd
        average_current = input_amplitude * duty_cycle
        threshold = self.membrane_threshold(vdd)
        return self.integration_capacitance * threshold / average_current

    def reset_time(self, input_amplitude: float = 200e-9, *, duty_cycle: float = 0.5,
                   vdd: float | None = None) -> float:
        """Duration of the output pulse (membrane discharge back to rest)."""
        vdd = self.vdd if vdd is None else vdd
        average_current = input_amplitude * duty_cycle
        net_discharge = self.reset_current - average_current
        if net_discharge <= 0:
            return math.inf
        threshold = self.membrane_threshold(vdd)
        return self.integration_capacitance * threshold / net_discharge

    def inter_spike_interval(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        vdd: float | None = None,
    ) -> float:
        """Steady-state firing period (charge time plus reset time)."""
        return self.time_to_first_spike(
            input_amplitude, duty_cycle=duty_cycle, vdd=vdd
        ) + self.reset_time(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)

    def simulate(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        duration: float = 100e-6,
        vdd: float | None = None,
    ) -> SpikeMetrics:
        """Event-driven simulation over ``duration`` seconds."""
        charge = self.time_to_first_spike(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)
        reset = self.reset_time(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)
        spikes: List[float] = []
        t = charge
        while t <= duration:
            spikes.append(t)
            if not math.isfinite(reset):
                break
            t += reset + charge
        return SpikeMetrics.from_spike_times(spikes)

    def membrane_trajectory(
        self,
        input_amplitude: float = 200e-9,
        *,
        duty_cycle: float = 0.5,
        duration: float = 40e-6,
        points: int = 2000,
        vdd: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Piecewise-linear (time, membrane, output) traces for plotting.

        The output trace is a 0/VDD square wave that is high while the
        membrane is being reset, mirroring paper Fig. 2c.
        """
        vdd = self.vdd if vdd is None else vdd
        charge = self.time_to_first_spike(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)
        reset = self.reset_time(input_amplitude, duty_cycle=duty_cycle, vdd=vdd)
        threshold = self.membrane_threshold(vdd)
        time = np.linspace(0.0, duration, points)
        membrane = np.zeros_like(time)
        output = np.zeros_like(time)
        period = charge + reset if math.isfinite(reset) else math.inf
        for i, t in enumerate(time):
            if not math.isfinite(period):
                phase = t
                membrane[i] = min(threshold * phase / charge, threshold)
                output[i] = 0.0
                continue
            phase = t % period
            if phase < charge:
                membrane[i] = threshold * phase / charge
                output[i] = 0.0
            else:
                membrane[i] = threshold * (1.0 - (phase - charge) / reset)
                output[i] = vdd
        return time, membrane, output
