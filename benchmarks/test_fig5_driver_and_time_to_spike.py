"""Fig. 5b & 5c — driver amplitude vs VDD and time-to-spike vs amplitude.

Fig. 5b: the current-mirror driver's output amplitude across the 0.8-1.2 V
supply range (paper: 136 nA → 264 nA, i.e. −32 %/+32 %).

Fig. 5c: the change in time-to-spike of both neurons when the input amplitude
is corrupted over that range (paper: AH −24.7 %/+53.7 %, I&F −6.7 %/+14.5 %).

Thin wrapper over the ``fig5`` registry entry (``python -m repro run fig5``).
"""

from repro.figures import get_figure


def test_fig5b_driver_amplitude_vs_vdd(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig5").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert result.metrics["amplitude_change_at_0v8"] < -0.25
    assert result.metrics["amplitude_change_at_1v2"] > 0.25


def test_fig5c_time_to_spike_vs_amplitude(figure_context):
    metrics = get_figure("fig5").run(figure_context).metrics
    # Paper: AH slows by ~54 % at 0.8 V and speeds up by ~25 % at 1.2 V;
    # the I&F neuron is several times less sensitive.
    assert 25 < metrics["ah_tts_change_at_0v8_pct"] < 80
    assert -35 < metrics["ah_tts_change_at_1v2_pct"] < -15
    assert (
        abs(metrics["if_period_change_at_0v8_pct"])
        < abs(metrics["ah_tts_change_at_0v8_pct"]) / 2
    )
    assert (
        abs(metrics["if_period_change_at_1v2_pct"])
        < abs(metrics["ah_tts_change_at_1v2_pct"]) / 2
    )
