"""Level-1 MOSFET model with a smooth subthreshold tail.

The paper simulates its neuron circuits with PTM 65 nm HSPICE models; the
attack analysis, however, only relies on first-order sensitivities (how an
inverter's switching threshold, a current mirror's output current and a
neuron's time-to-spike move with the supply voltage).  A square-law model
with channel-length modulation and a smooth subthreshold turn-on reproduces
all of those monotonic relationships while remaining robust inside a compact
Newton-Raphson solver.

The smoothing follows the EKV-style interpolation: the overdrive voltage is
replaced by ``n * Vt * softplus((Vgs - Vth) / (n * Vt))`` which tends to the
square-law overdrive far above threshold and to an exponential tail below it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.analog.devices import Device, GMIN
from repro.analog.units import parse_value, thermal_voltage
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MOSFETParameters:
    """Process/device parameters for the level-1 model.

    Attributes
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    vth0:
        Zero-bias threshold voltage magnitude (positive for both polarities).
    kp:
        Transconductance parameter ``mu * Cox`` in A/V².
    lambda_:
        Channel-length modulation coefficient (1/V).
    subthreshold_slope:
        Ideality factor ``n`` of the subthreshold exponential.
    temperature_k:
        Junction temperature in Kelvin (sets the thermal voltage).
    """

    polarity: str
    vth0: float
    kp: float
    lambda_: float = 0.1
    subthreshold_slope: float = 1.5
    temperature_k: float = 300.15

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")
        check_positive(self.vth0, "vth0")
        check_positive(self.kp, "kp")
        check_positive(self.subthreshold_slope, "subthreshold_slope")

    @property
    def thermal_voltage(self) -> float:
        """kT/q for the configured temperature."""
        return thermal_voltage(self.temperature_k)

    def with_threshold(self, vth0: float) -> "MOSFETParameters":
        """Return a copy with a different threshold voltage."""
        return replace(self, vth0=vth0)


#: Representative 65 nm low-power NMOS parameters (approximating PTM 65 nm LP).
NMOS_65NM = MOSFETParameters(polarity="nmos", vth0=0.423, kp=285e-6, lambda_=0.12)

#: Representative 65 nm low-power PMOS parameters.
PMOS_65NM = MOSFETParameters(polarity="pmos", vth0=0.365, kp=120e-6, lambda_=0.15)


def _softplus(x: float) -> float:
    """Numerically safe ``log(1 + exp(x))``."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _sigmoid(x: float) -> float:
    """Numerically safe logistic function."""
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    ex = math.exp(x)
    return ex / (1.0 + ex)


def softplus_array(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_softplus` (agrees with the scalar form to ~1e-31)."""
    return np.where(x > 35.0, x, np.log1p(np.exp(np.minimum(x, 35.0))))


def sigmoid_array(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_sigmoid` (both branches evaluate ``exp(-|x|)``)."""
    ex = np.exp(-np.abs(x))
    return np.where(x >= 0.0, 1.0 / (1.0 + ex), ex / (1.0 + ex))


def channel_current_array(
    vd: np.ndarray,
    vg: np.ndarray,
    vs: np.ndarray,
    *,
    sign: np.ndarray,
    beta: np.ndarray,
    vth0: np.ndarray,
    lambda_: np.ndarray,
    n_vt: np.ndarray,
):
    """Vectorised :meth:`MOSFET.channel_current` over arrays of transistors.

    Every argument broadcasts; ``sign`` is ``+1`` for NMOS and ``-1`` for
    PMOS (a PMOS is an NMOS with negated terminal voltages and reversed
    current).  Returns ``(i_ds, di/dvd, di/dvg, di/dvs)`` with the same
    region selection (triode vs saturation, drain/source swap) as the
    scalar reference implementation.
    """
    vdn, vgn, vsn = sign * vd, sign * vg, sign * vs
    swap = vdn < vsn
    lo = np.minimum(vdn, vsn)  # effective source (lower terminal)
    vgs = vgn - lo
    vds = np.abs(vdn - vsn)
    x = (vgs - vth0) / n_vt
    veff = n_vt * softplus_array(x)
    dveff = sigmoid_array(x)
    clm = 1.0 + lambda_ * vds
    # Branchless region selection: with vm = min(vds, veff) the triode
    # expressions evaluate to the saturation ones at vm == veff, so the
    # explicit triode/saturation split of the scalar model collapses to
    # min/max (identical values in both regions).
    vm = np.minimum(vds, veff)
    half = veff - 0.5 * vm
    ids = beta * half * vm * clm
    gm = beta * vm * clm * dveff
    gds = beta * np.maximum(veff - vds, 0.0) * clm + beta * half * vm * lambda_
    gds = np.maximum(gds, 0.0) + GMIN
    i_ds = sign * np.where(swap, -ids, ids)
    di_dvd = np.where(swap, gm + gds, gds)
    di_dvg = np.where(swap, -gm, gm)
    di_dvs = np.where(swap, -gds, -(gm + gds))
    return i_ds, di_dvd, di_dvg, di_dvs


class MOSFET(Device):
    """A three-terminal (drain, gate, source) level-1 MOSFET.

    The body terminal is assumed tied to the source (no body effect), which
    matches how the neuron circuits in the paper are drawn.

    Parameters
    ----------
    name:
        Instance name (e.g. ``"MN1"``).
    drain, gate, source:
        Node names.
    parameters:
        A :class:`MOSFETParameters` instance (see :data:`NMOS_65NM` and
        :data:`PMOS_65NM`).
    width, length:
        Channel dimensions in metres (SPICE-style strings accepted).
    """

    is_nonlinear = True

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        parameters: MOSFETParameters,
        *,
        width: float | str = 1e-6,
        length: float | str = 65e-9,
    ) -> None:
        super().__init__(name, (drain, gate, source))
        self.parameters = parameters
        self.width = check_positive(parse_value(width), f"{name}.width")
        self.length = check_positive(parse_value(length), f"{name}.length")

    # ------------------------------------------------------------------ sizing
    @property
    def aspect_ratio(self) -> float:
        """W / L."""
        return self.width / self.length

    @property
    def beta(self) -> float:
        """Device transconductance factor ``kp * W / L`` (A/V²)."""
        return self.parameters.kp * self.aspect_ratio

    # ----------------------------------------------------------- I/V equations
    def _forward_current(self, vgs: float, vds: float) -> tuple[float, float, float]:
        """NMOS-referenced drain current for ``vds >= 0``.

        Returns ``(ids, gm, gds)``.
        """
        params = self.parameters
        n_vt = params.subthreshold_slope * params.thermal_voltage
        x = (vgs - params.vth0) / n_vt
        veff = n_vt * _softplus(x)
        dveff_dvgs = _sigmoid(x)
        beta = self.beta
        clm = 1.0 + params.lambda_ * vds
        if vds < veff:
            # Triode region.
            ids = beta * (veff - 0.5 * vds) * vds * clm
            gm = beta * vds * clm * dveff_dvgs
            gds = (
                beta * (veff - vds) * clm
                + beta * (veff - 0.5 * vds) * vds * params.lambda_
            )
        else:
            # Saturation region.
            ids = 0.5 * beta * veff * veff * clm
            gm = beta * veff * clm * dveff_dvgs
            gds = 0.5 * beta * veff * veff * params.lambda_
        return ids, gm, max(gds, 0.0) + GMIN

    def _oriented_current(
        self, vd: float, vg: float, vs: float
    ) -> tuple[float, float, float, float]:
        """NMOS-referenced drain-to-source current and partials.

        Handles drain/source swap for ``vds < 0`` (the channel is symmetric).
        Returns ``(i_ds, di/dvd, di/dvg, di/dvs)``.
        """
        if vd >= vs:
            ids, gm, gds = self._forward_current(vg - vs, vd - vs)
            return ids, gds, gm, -(gm + gds)
        # Swap roles: the physical source is the higher-potential terminal.
        ids, gm, gds = self._forward_current(vg - vd, vs - vd)
        return -ids, gm + gds, -gm, -gds

    def channel_current(
        self, vd: float, vg: float, vs: float
    ) -> tuple[float, float, float, float]:
        """Drain-to-source channel current and its partial derivatives.

        Returns ``(i_ds, di/dvd, di/dvg, di/dvs)`` where ``i_ds`` is the
        current flowing from the drain node into the source node through the
        channel (negative for a conducting PMOS).
        """
        if self.parameters.polarity == "nmos":
            return self._oriented_current(vd, vg, vs)
        # A PMOS behaves like an NMOS with all terminal voltages negated and
        # the current direction reversed.
        i_n, d_vd, d_vg, d_vs = self._oriented_current(-vd, -vg, -vs)
        return -i_n, d_vd, d_vg, d_vs

    def drain_current(self, vd: float, vg: float, vs: float) -> float:
        """Convenience accessor returning only the drain-to-source current."""
        return self.channel_current(vd, vg, vs)[0]

    # ----------------------------------------------------------------- stamping
    def stamp(self, stamper, state) -> None:
        d, g, s = self.nodes
        vd = state.guess_voltage(d)
        vg = state.guess_voltage(g)
        vs = state.guess_voltage(s)
        i_ds, di_dvd, di_dvg, di_dvs = self.channel_current(vd, vg, vs)
        i_eq = i_ds - di_dvd * vd - di_dvg * vg - di_dvs * vs
        # KCL row for the drain: current i_ds leaves the drain node.
        stamper.add_matrix(d, d, di_dvd)
        stamper.add_matrix(d, g, di_dvg)
        stamper.add_matrix(d, s, di_dvs)
        stamper.stamp_current_injection(d, -i_eq)
        # KCL row for the source: current i_ds enters the source node.
        stamper.add_matrix(s, d, -di_dvd)
        stamper.add_matrix(s, g, -di_dvg)
        stamper.add_matrix(s, s, -di_dvs)
        stamper.stamp_current_injection(s, i_eq)
