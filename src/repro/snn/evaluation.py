"""Label assignment and accuracy metrics for the unsupervised SNN.

Diehl & Cook's network is trained without labels; classification works by
assigning each excitatory neuron to the digit class for which it fired most
during a labelled assignment pass, then predicting new examples from the
per-class average activity ("all activity") or the per-class firing
proportions ("proportion weighting").

The per-class reductions are scatter-based (``np.add.at`` / ``bincount``)
instead of per-class Python loops, with outputs bit-identical to the loop
formulation:

* :func:`assign_labels` accumulates over the *example* axis, where NumPy's
  strided-axis reduction and ``np.add.at`` visit examples in the same
  sequential order — identical for any float input;
* the prediction scores sum *integer-valued* spike counts (every in-repo
  caller passes spike counts), and integer sums within double precision are
  exact under any summation order;
* :func:`proportion_weighting_prediction` multiplies counts by non-integer
  proportions before reducing, so it hoists the weighting out of the loop
  but keeps the reference's per-class contiguous reduction — the one place
  a reordered sum could differ in the last bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive


def _check_class_indices(indices: np.ndarray, n_classes: int, name: str) -> None:
    """Reject out-of-range class indices before they reach a scatter op.

    The previous per-class loops silently skipped indices outside
    ``[0, n_classes)``; ``np.add.at`` would instead wrap negatives and crash
    on overflows, so the scatter formulation makes the contract explicit.
    """
    if indices.size and (indices.min() < 0 or indices.max() >= n_classes):
        raise ValueError(f"{name} must lie in [0, {n_classes}), got out-of-range values")


def assign_labels(
    spike_counts: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each neuron to the class it responds to most strongly.

    Parameters
    ----------
    spike_counts:
        Array of shape ``(n_examples, n_neurons)`` with the excitatory spike
        counts recorded while each example was presented.
    labels:
        Integer class label of each example, shape ``(n_examples,)``.
    n_classes:
        Total number of classes.

    Returns
    -------
    assignments:
        Class index per neuron, shape ``(n_neurons,)``.
    rates:
        Average response of each neuron to each class,
        shape ``(n_classes, n_neurons)``.
    """
    spike_counts = np.asarray(spike_counts, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if spike_counts.ndim != 2:
        raise ValueError("spike_counts must be 2-D (examples x neurons)")
    if len(labels) != len(spike_counts):
        raise ValueError("labels and spike_counts must have the same length")
    check_positive(n_classes, "n_classes")
    _check_class_indices(labels, n_classes, "labels")

    n_neurons = spike_counts.shape[1]
    rates = np.zeros((n_classes, n_neurons))
    np.add.at(rates, labels, spike_counts)
    class_sizes = np.bincount(labels, minlength=n_classes)[:n_classes]
    present = class_sizes > 0
    rates[present] /= class_sizes[present, None]
    assignments = rates.argmax(axis=0)
    return assignments, rates


def all_activity_prediction(
    spike_counts: np.ndarray,
    assignments: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Predict classes from the mean activity of each class's assigned neurons."""
    spike_counts = np.asarray(spike_counts, dtype=float)
    assignments = np.asarray(assignments, dtype=int)
    if spike_counts.ndim != 2:
        raise ValueError("spike_counts must be 2-D (examples x neurons)")
    _check_class_indices(assignments, n_classes, "assignments")
    n_examples = spike_counts.shape[0]
    scores = np.zeros((n_classes, n_examples))
    np.add.at(scores, assignments, spike_counts.T)
    class_counts = np.bincount(assignments, minlength=n_classes)[:n_classes]
    populated = class_counts > 0
    scores[populated] /= class_counts[populated, None]
    scores[~populated] = 0.0
    return scores.T.argmax(axis=1)


def proportion_weighting_prediction(
    spike_counts: np.ndarray,
    assignments: np.ndarray,
    class_rates: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Predict classes weighting each neuron's vote by its class selectivity."""
    spike_counts = np.asarray(spike_counts, dtype=float)
    assignments = np.asarray(assignments, dtype=int)
    class_rates = np.asarray(class_rates, dtype=float)
    totals = class_rates.sum(axis=0)
    totals[totals == 0] = 1.0
    proportions = class_rates / totals  # (n_classes, n_neurons)
    n_examples = spike_counts.shape[0]
    # Weight every neuron's activity by its own class's proportion once,
    # instead of re-multiplying inside the per-class loop; the per-class
    # reduction itself stays the reference's contiguous sum so the scores
    # are bit-identical even for non-integer inputs.
    neuron_index = np.arange(spike_counts.shape[1])
    weighted = spike_counts * proportions[assignments, neuron_index][None, :]
    class_counts = np.bincount(assignments, minlength=n_classes)[:n_classes]
    scores = np.zeros((n_examples, n_classes))
    for cls in np.flatnonzero(class_counts):
        mask = assignments == cls
        scores[:, cls] = weighted[:, mask].sum(axis=1) / class_counts[cls]
    return scores.argmax(axis=1)


def classification_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy over zero examples")
    return float(np.mean(predictions == labels))
