"""Tests for the VDD → network-parameter calibration maps."""

import pytest

from repro.neurons.calibration import (
    VddSensitivity,
    behavioural_parameter_map,
    circuit_parameter_map,
)


class TestVddSensitivity:
    def test_interpolation_and_scaling(self):
        sensitivity = VddSensitivity("x", [0.8, 1.0, 1.2], [80.0, 100.0, 120.0])
        assert sensitivity.value_at(0.9) == pytest.approx(90.0)
        assert sensitivity.nominal_value == pytest.approx(100.0)
        assert sensitivity.scale_at(1.2) == pytest.approx(1.2)
        assert sensitivity.fractional_change(0.8) == pytest.approx(-0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            VddSensitivity("x", [1.0], [1.0])
        with pytest.raises(ValueError):
            VddSensitivity("x", [1.0, 0.9], [1.0, 2.0])
        with pytest.raises(ValueError):
            VddSensitivity("x", [0.9, 1.0], [1.0, 2.0, 3.0])


class TestBehaviouralMap:
    def test_nominal_is_identity(self):
        mapping = behavioural_parameter_map()
        assert mapping.theta_scale(1.0) == pytest.approx(1.0, abs=1e-6)
        assert mapping.threshold_scale(1.0, "if_amplifier") == pytest.approx(1.0, abs=1e-6)
        assert mapping.threshold_scale(1.0, "axon_hillock") == pytest.approx(1.0, abs=1e-6)

    def test_low_vdd_reduces_both_parameters(self):
        mapping = behavioural_parameter_map()
        assert mapping.theta_scale(0.8) < 0.8
        assert 0.75 < mapping.threshold_scale(0.8, "if_amplifier") < 0.85
        assert 0.80 < mapping.threshold_scale(0.8, "axon_hillock") < 0.90

    def test_percent_helpers(self):
        mapping = behavioural_parameter_map()
        assert mapping.theta_change_percent(1.2) > 25.0
        assert mapping.threshold_change_percent(1.2, "if_amplifier") == pytest.approx(20.0, abs=0.5)

    def test_unknown_neuron_type_rejected(self):
        mapping = behavioural_parameter_map()
        with pytest.raises(ValueError):
            mapping.threshold_scale(0.8, "hodgkin_huxley")

    def test_available_neuron_types(self):
        mapping = behavioural_parameter_map()
        assert set(mapping.available_neuron_types()) == {"axon_hillock", "if_amplifier"}


class TestCircuitMap:
    def test_circuit_and_behavioural_maps_agree(self):
        circuit_map = circuit_parameter_map(vdd_values=(0.8, 1.0, 1.2))
        behavioural_map = behavioural_parameter_map()
        for vdd in (0.8, 1.2):
            assert circuit_map.theta_scale(vdd) == pytest.approx(
                behavioural_map.theta_scale(vdd), abs=0.06
            )
            assert circuit_map.threshold_scale(vdd, "axon_hillock") == pytest.approx(
                behavioural_map.threshold_scale(vdd, "axon_hillock"), abs=0.05
            )

    def test_if_threshold_follows_divider_exactly(self):
        circuit_map = circuit_parameter_map(vdd_values=(0.8, 1.0, 1.2))
        assert circuit_map.threshold_scale(0.8, "if_amplifier") == pytest.approx(0.8)
        assert circuit_map.threshold_scale(1.2, "if_amplifier") == pytest.approx(1.2)
