"""Attack sweep drivers that regenerate the paper's attack figures.

The campaign object wraps a classification pipeline (anything exposing
``run(attack)`` and ``run_baseline()``) and sweeps attack parameters:

* :meth:`AttackCampaign.sweep_attack1_theta` — Fig. 7b.
* :meth:`AttackCampaign.sweep_layer_threshold` — Fig. 8a (excitatory) and
  Fig. 8b (inhibitory).
* :meth:`AttackCampaign.sweep_both_layers` — Fig. 8c.
* :meth:`AttackCampaign.sweep_global_vdd` — Fig. 9a.

Every sweep submits its grid points as one batch to a
:class:`~repro.exec.executor.SweepExecutor`, so independent evaluations run
in parallel when the campaign is built with ``workers >= 2`` and the
baseline is computed exactly once per campaign (not once per sweep).  On
the serial path the executor routes whole batches through the lockstep
batched SNN engine (:mod:`repro.exec.snn_batch` →
``pipeline.run_batch``): the grid's variants — which differ only in the
per-neuron corruptions the fault injector writes — train and evaluate in
one stacked pass, with results bit-identical to per-run execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
    PowerAttack,
)
from repro.attacks.injector import FaultSiteSelection
from repro.core.results import AttackGridResult, ExperimentResult
from repro.exec.executor import SweepExecutor
from repro.neurons.calibration import VddToParameterMap
from repro.snn.models import EXCITATORY_LAYER, INHIBITORY_LAYER
from repro.utils.validation import check_in_choices

#: Default parameter grids, matching the paper's figures.
DEFAULT_THRESHOLD_CHANGES = (-0.2, -0.1, 0.1, 0.2)
DEFAULT_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_THETA_CHANGES = (-0.2, -0.1, 0.0, 0.1, 0.2)
DEFAULT_VDD_VALUES = (0.8, 0.9, 1.0, 1.1, 1.2)


@dataclass
class AttackOutcome:
    """One attack configuration together with its measured result."""

    attack: PowerAttack
    result: ExperimentResult

    @property
    def accuracy(self) -> float:
        """Measured accuracy under this attack."""
        return self.result.accuracy


@dataclass
class AttackSweep:
    """A one-dimensional sweep (parameter value → outcome)."""

    name: str
    parameter: str
    values: np.ndarray
    outcomes: List[AttackOutcome] = field(default_factory=list)
    baseline_accuracy: float = 0.0

    def accuracies(self) -> np.ndarray:
        """Accuracy per swept value."""
        return np.array([outcome.accuracy for outcome in self.outcomes])

    def accuracy_changes(self) -> np.ndarray:
        """Accuracy minus baseline per swept value."""
        return self.accuracies() - self.baseline_accuracy

    def worst_case(self) -> AttackOutcome:
        """The most damaging configuration."""
        return min(self.outcomes, key=lambda outcome: outcome.accuracy)


class AttackCampaign:
    """Runs families of attacks against one classification pipeline.

    Pipeline protocol
    -----------------
    The wrapped ``pipeline`` must provide:

    * ``run(attack) -> ExperimentResult`` — train and evaluate one network
      with the given :class:`~repro.attacks.attacks.PowerAttack` injected
      (results must be a pure function of the pipeline config and the
      attack, independent of run order).
    * ``run_baseline() -> ExperimentResult`` — the attack-free run.
    * ``.config`` — the experiment configuration.  For parallel execution
      the config must be picklable and sufficient to rebuild an equivalent
      pipeline in a worker process (``ClassificationPipeline(config)``);
      pass a custom ``executor`` with a ``pipeline_factory`` otherwise.

    Parameters
    ----------
    pipeline:
        The evaluation pipeline (see protocol above).
    executor:
        Optional pre-configured :class:`SweepExecutor`.  It must wrap the
        *same* pipeline as the campaign (sweeps execute through the
        executor; a mismatch would attribute another experiment's results
        to this campaign's config, so it is rejected).  Sharing one
        executor across campaigns over the same pipeline shares its result
        cache too.
    workers:
        Convenience shortcut: when ``executor`` is not given, build one
        with this many worker processes (``0``/``1`` = serial).
    batch_runs:
        Passed through to the built executor: ``True`` (default) lets
        serial sweeps run as one lockstep pass on the batched SNN engine
        when the pipeline supports it, ``False`` forces per-run execution.
    """

    def __init__(
        self,
        pipeline,
        *,
        executor: Optional[SweepExecutor] = None,
        workers: int = 0,
        batch_runs: bool = True,
    ) -> None:
        self.pipeline = pipeline
        if (
            executor is not None
            and executor._pipeline is not None
            and executor._pipeline is not pipeline
        ):
            raise ValueError(
                "the executor wraps a different pipeline than the campaign; "
                "sweeps run through the executor, so results would be "
                "attributed to the wrong experiment"
            )
        self.executor = executor or SweepExecutor(
            pipeline, workers=workers, batch_runs=batch_runs
        )

    # --------------------------------------------------------------- baselines
    @property
    def baseline_accuracy(self) -> float:
        """Accuracy of the attack-free run (evaluated once per campaign)."""
        return self.executor.run_baseline().accuracy

    # ------------------------------------------------------------ Fig. 7b
    def sweep_attack1_theta(
        self,
        theta_changes: Sequence[float] = DEFAULT_THETA_CHANGES,
    ) -> AttackSweep:
        """Attack 1: accuracy vs per-spike membrane-charge (theta) change."""
        attacks: List[Optional[PowerAttack]] = [
            None if abs(change) < 1e-12
            else Attack1InputSpikeCorruption(theta_change=float(change))
            for change in theta_changes
        ]
        # The leading None puts the baseline in the batch (it is evaluated
        # first on the serial path), so every attacked result can carry its
        # baseline accuracy regardless of execution mode.
        results = self.executor.map([None] + attacks)[1:]
        sweep = AttackSweep(
            name="attack1_theta_sweep",
            parameter="theta_change",
            values=np.asarray(theta_changes, dtype=float),
            baseline_accuracy=self.baseline_accuracy,
        )
        for attack, result in zip(attacks, results):
            if attack is None:
                attack = Attack1InputSpikeCorruption(theta_change=0.0)
            sweep.outcomes.append(AttackOutcome(attack=attack, result=result))
        return sweep

    # ------------------------------------------------------- Fig. 8a / Fig. 8b
    def sweep_layer_threshold(
        self,
        layer: str,
        threshold_changes: Sequence[float] = DEFAULT_THRESHOLD_CHANGES,
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        *,
        selection: FaultSiteSelection = FaultSiteSelection.RANDOM,
    ) -> AttackGridResult:
        """Attack 2 or 3: accuracy vs threshold change x fraction of the layer."""
        check_in_choices(layer, "layer", (EXCITATORY_LAYER, INHIBITORY_LAYER))
        attack_cls = (
            Attack2ExcitatoryThreshold
            if layer == EXCITATORY_LAYER
            else Attack3InhibitoryThreshold
        )
        attacks: List[Optional[PowerAttack]] = []
        for change in threshold_changes:
            for fraction in fractions:
                if fraction == 0.0:
                    attacks.append(None)
                else:
                    attacks.append(
                        attack_cls(
                            threshold_change=float(change),
                            fraction=float(fraction),
                            selection=selection,
                        )
                    )
        results = self.executor.map([None] + attacks)[1:]
        accuracies = np.array([result.accuracy for result in results]).reshape(
            (len(threshold_changes), len(fractions))
        )
        return AttackGridResult(
            name=f"{layer}_threshold_sweep",
            row_parameter="threshold_change",
            column_parameter="fraction_affected",
            row_values=np.asarray(threshold_changes, dtype=float),
            column_values=np.asarray(fractions, dtype=float),
            accuracies=accuracies,
            baseline_accuracy=self.baseline_accuracy,
            scale_name=self.pipeline.config.scale_name,
            metadata={"layer": layer, "selection": selection.value},
        )

    # ------------------------------------------------------------------ Fig. 8c
    def sweep_both_layers(
        self,
        threshold_changes: Sequence[float] = DEFAULT_THRESHOLD_CHANGES,
    ) -> AttackSweep:
        """Attack 4: accuracy vs threshold change applied to both layers."""
        attacks = [
            Attack4BothLayerThreshold(threshold_change=float(change))
            for change in threshold_changes
        ]
        results = self.executor.map([None] + attacks)[1:]
        sweep = AttackSweep(
            name="attack4_both_layers",
            parameter="threshold_change",
            values=np.asarray(threshold_changes, dtype=float),
            baseline_accuracy=self.baseline_accuracy,
        )
        for attack, result in zip(attacks, results):
            sweep.outcomes.append(AttackOutcome(attack=attack, result=result))
        return sweep

    # ------------------------------------------------------------------ Fig. 9a
    def sweep_global_vdd(
        self,
        vdd_values: Sequence[float] = DEFAULT_VDD_VALUES,
        *,
        neuron_type: str = "if_amplifier",
        parameter_map: Optional[VddToParameterMap] = None,
    ) -> AttackSweep:
        """Attack 5: accuracy vs the shared supply voltage (black box)."""
        attacks: List[Optional[PowerAttack]] = []
        placeholders: List[PowerAttack] = []
        for vdd in vdd_values:
            attack = Attack5GlobalSupply(
                vdd=float(vdd), neuron_type=neuron_type, parameter_map=parameter_map
            )
            placeholders.append(attack)
            if abs(float(vdd) - attack.threat_model.nominal_vdd) < 1e-9:
                attacks.append(None)
            else:
                attacks.append(attack)
        results = self.executor.map([None] + attacks)[1:]
        sweep = AttackSweep(
            name="attack5_global_vdd",
            parameter="vdd",
            values=np.asarray(vdd_values, dtype=float),
            baseline_accuracy=self.baseline_accuracy,
        )
        for attack, result in zip(placeholders, results):
            sweep.outcomes.append(AttackOutcome(attack=attack, result=result))
        return sweep
