"""VDD → network-parameter calibration.

The bridge between the circuit tier and the SNN attack tier: supply-voltage
manipulation changes two network-level parameters of the Diehl&Cook SNN,

* ``theta_scale`` — the multiplicative change of the per-input-spike membrane
  charge (set by the input driver's output amplitude, paper Sec. III-B), and
* ``threshold_scale`` — the multiplicative change of the neuron membrane
  threshold (set by the inverter switching point or the Vthr divider,
  paper Sec. III-C).

:func:`behavioural_parameter_map` derives both from the fast behavioural
models; :func:`circuit_parameter_map` derives them from the MNA netlists
(slower, used for cross-validation and the ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.neurons.axon_hillock import AxonHillockModel
from repro.neurons.driver import CurrentDriverModel
from repro.neurons.if_amplifier import IFAmplifierModel
from repro.utils.validation import check_in_choices, check_positive

#: Neuron flavours implemented in the paper.
NEURON_TYPES = ("axon_hillock", "if_amplifier")


@dataclass
class VddSensitivity:
    """Sensitivity of one quantity to the supply voltage.

    Stores the sampled (vdd, value) relation and exposes interpolation plus
    fractional-change helpers.
    """

    name: str
    vdd_values: np.ndarray
    values: np.ndarray
    nominal_vdd: float = 1.0

    def __post_init__(self) -> None:
        self.vdd_values = np.asarray(self.vdd_values, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.vdd_values.shape != self.values.shape:
            raise ValueError("vdd_values and values must have the same shape")
        if len(self.vdd_values) < 2:
            raise ValueError("a sensitivity needs at least two sample points")
        if np.any(np.diff(self.vdd_values) <= 0):
            raise ValueError("vdd_values must be strictly increasing")

    def value_at(self, vdd: float) -> float:
        """Interpolated value at ``vdd``."""
        return float(np.interp(vdd, self.vdd_values, self.values))

    @property
    def nominal_value(self) -> float:
        """Value at the nominal supply."""
        return self.value_at(self.nominal_vdd)

    def scale_at(self, vdd: float) -> float:
        """Value at ``vdd`` relative to the nominal value."""
        nominal = self.nominal_value
        if nominal == 0:
            raise ZeroDivisionError(f"{self.name}: nominal value is zero")
        return self.value_at(vdd) / nominal

    def fractional_change(self, vdd: float) -> float:
        """``scale_at(vdd) - 1``."""
        return self.scale_at(vdd) - 1.0


@dataclass
class VddToParameterMap:
    """The (theta, threshold) corruption a given supply voltage induces.

    Attributes
    ----------
    driver_amplitude:
        Sensitivity of the input driver output amplitude to VDD.
    thresholds:
        Per-neuron-type sensitivity of the membrane threshold to VDD.
    nominal_vdd:
        The uncorrupted supply.
    """

    driver_amplitude: VddSensitivity
    thresholds: Dict[str, VddSensitivity] = field(default_factory=dict)
    nominal_vdd: float = 1.0

    def theta_scale(self, vdd: float) -> float:
        """Per-spike membrane-charge scale factor at supply ``vdd``."""
        return self.driver_amplitude.scale_at(vdd)

    def threshold_scale(self, vdd: float, neuron_type: str = "if_amplifier") -> float:
        """Membrane-threshold scale factor at supply ``vdd``."""
        check_in_choices(neuron_type, "neuron_type", self.thresholds.keys())
        return self.thresholds[neuron_type].scale_at(vdd)

    def threshold_change_percent(self, vdd: float, neuron_type: str) -> float:
        """Threshold change in percent (positive = higher threshold)."""
        return 100.0 * (self.threshold_scale(vdd, neuron_type) - 1.0)

    def theta_change_percent(self, vdd: float) -> float:
        """Driver-amplitude (theta) change in percent."""
        return 100.0 * (self.theta_scale(vdd) - 1.0)

    def available_neuron_types(self) -> Sequence[str]:
        """Neuron types with a calibrated threshold sensitivity."""
        return tuple(self.thresholds)


def behavioural_parameter_map(
    vdd_values: Sequence[float] = (0.8, 0.85, 0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2),
    *,
    driver: CurrentDriverModel | None = None,
    axon_hillock: AxonHillockModel | None = None,
    if_amplifier: IFAmplifierModel | None = None,
    nominal_vdd: float = 1.0,
) -> VddToParameterMap:
    """Build the VDD → parameter map from the behavioural models."""
    check_positive(nominal_vdd, "nominal_vdd")
    vdd_values = np.asarray(sorted(vdd_values), dtype=float)
    driver = driver or CurrentDriverModel(nominal_vdd=nominal_vdd)
    axon_hillock = axon_hillock or AxonHillockModel(nominal_vdd=nominal_vdd)
    if_amplifier = if_amplifier or IFAmplifierModel(nominal_vdd=nominal_vdd)

    amplitude = VddSensitivity(
        name="driver_amplitude",
        vdd_values=vdd_values,
        values=driver.amplitude_vs_vdd(vdd_values),
        nominal_vdd=nominal_vdd,
    )
    thresholds = {
        "axon_hillock": VddSensitivity(
            name="axon_hillock_threshold",
            vdd_values=vdd_values,
            values=np.array([axon_hillock.membrane_threshold(v) for v in vdd_values]),
            nominal_vdd=nominal_vdd,
        ),
        "if_amplifier": VddSensitivity(
            name="if_amplifier_threshold",
            vdd_values=vdd_values,
            values=np.array([if_amplifier.membrane_threshold(v) for v in vdd_values]),
            nominal_vdd=nominal_vdd,
        ),
    }
    return VddToParameterMap(
        driver_amplitude=amplitude, thresholds=thresholds, nominal_vdd=nominal_vdd
    )


def circuit_parameter_map(
    vdd_values: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
    *,
    nominal_vdd: float = 1.0,
    inverter_sizing=None,
    driver_design=None,
    threshold_divider_ratio: float = 0.5,
) -> VddToParameterMap:
    """Build the VDD → parameter map from the MNA circuit netlists.

    This is the slow, ground-truth calibration path; it sweeps the actual
    inverter and current-driver circuits.  The I&F threshold follows the
    resistive divider exactly, as in the paper.  Both circuit sweeps run the
    whole VDD grid through the lockstep batched engine (every point is a
    parameter variant of one topology).
    """
    from repro.circuits.current_driver import amplitude_vs_vdd
    from repro.circuits.inverter import threshold_vs_vdd

    check_positive(nominal_vdd, "nominal_vdd")
    vdd_values = np.asarray(sorted(vdd_values), dtype=float)
    amplitude = VddSensitivity(
        name="driver_amplitude",
        vdd_values=vdd_values,
        values=amplitude_vs_vdd(vdd_values, design=driver_design),
        nominal_vdd=nominal_vdd,
    )
    ah_threshold = VddSensitivity(
        name="axon_hillock_threshold",
        vdd_values=vdd_values,
        values=threshold_vs_vdd(vdd_values, sizing=inverter_sizing),
        nominal_vdd=nominal_vdd,
    )
    if_threshold = VddSensitivity(
        name="if_amplifier_threshold",
        vdd_values=vdd_values,
        values=vdd_values * threshold_divider_ratio,
        nominal_vdd=nominal_vdd,
    )
    return VddToParameterMap(
        driver_amplitude=amplitude,
        thresholds={"axon_hillock": ah_threshold, "if_amplifier": if_threshold},
        nominal_vdd=nominal_vdd,
    )
