"""The paper's threat model (Sec. I and III-A).

The adversary manipulates the supply voltage of an analog-neuron SNN
accelerator, either globally (external power port) or locally (laser-induced
glitching of part of a die).  Three power-domain configurations determine
which components a given VDD manipulation can reach:

* **Case 1 — separate domains**: current drivers and neurons have their own
  supplies, so each can be corrupted independently.
* **Case 2 — single domain**: the whole SNN shares one supply; corrupting it
  affects drivers and every neuron layer at once (the black-box Attack 5).
* **Case 3 — local glitching**: the adversary has fine-grained (laser)
  control inside a domain and can hit a fraction of one layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from repro.utils.validation import check_fraction, check_range


class PowerDomainScheme(Enum):
    """How the SNN's supplies are partitioned (paper Sec. III-A)."""

    SEPARATE_DOMAINS = "separate_domains"
    SINGLE_DOMAIN = "single_domain"
    LOCAL_GLITCHING = "local_glitching"


class AdversaryAccess(Enum):
    """How the adversary reaches the supply."""

    EXTERNAL_POWER_PORT = "external_power_port"
    INSIDER_POWER_PORT = "insider_power_port"
    LASER_GLITCHING = "laser_glitching"


class PowerDomain(Enum):
    """The circuit blocks a fault can target."""

    CURRENT_DRIVERS = "current_drivers"
    EXCITATORY_LAYER = "excitatory_layer"
    INHIBITORY_LAYER = "inhibitory_layer"
    WHOLE_SYSTEM = "whole_system"


@dataclass
class ThreatModel:
    """A concrete adversary instantiation.

    Attributes
    ----------
    scheme:
        Power-domain partitioning of the victim.
    access:
        Physical access vector.
    targets:
        Which domains the adversary can corrupt.
    knows_architecture:
        White-box attacks require layout/architecture knowledge to aim the
        fault; the black-box Attack 5 does not.
    vdd_range:
        The supply excursion the adversary can impose (the paper studies
        ±20 % around the 1 V nominal).
    reachable_fraction:
        Largest fraction of a targeted layer a localised glitch can cover
        (1.0 for global manipulation).
    """

    scheme: PowerDomainScheme
    access: AdversaryAccess
    targets: Tuple[PowerDomain, ...]
    knows_architecture: bool
    vdd_range: Tuple[float, float] = (0.8, 1.2)
    nominal_vdd: float = 1.0
    reachable_fraction: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        low, high = self.vdd_range
        if low >= high:
            raise ValueError("vdd_range must be (low, high) with low < high")
        check_range(self.nominal_vdd, "nominal_vdd", low, high)
        check_fraction(self.reachable_fraction, "reachable_fraction")
        if not self.targets:
            raise ValueError("a threat model needs at least one target domain")

    @property
    def is_black_box(self) -> bool:
        """True when the attack needs no architecture knowledge."""
        return not self.knows_architecture

    def can_target(self, domain: PowerDomain) -> bool:
        """Whether this adversary can corrupt ``domain``."""
        return domain in self.targets or PowerDomain.WHOLE_SYSTEM in self.targets

    def clamp_vdd(self, vdd: float) -> float:
        """Clip a requested supply voltage into the adversary's range."""
        low, high = self.vdd_range
        return min(max(vdd, low), high)


def black_box_external_adversary() -> ThreatModel:
    """The Attack-5 adversary: controls the shared external supply only."""
    return ThreatModel(
        scheme=PowerDomainScheme.SINGLE_DOMAIN,
        access=AdversaryAccess.EXTERNAL_POWER_PORT,
        targets=(PowerDomain.WHOLE_SYSTEM,),
        knows_architecture=False,
        description=(
            "External adversary with possession of the device or its power "
            "port; corrupts drivers and every neuron layer simultaneously."
        ),
    )


def white_box_laser_adversary(reachable_fraction: float = 1.0) -> ThreatModel:
    """The Attack 1-4 adversary: laser-induced local power glitching."""
    return ThreatModel(
        scheme=PowerDomainScheme.LOCAL_GLITCHING,
        access=AdversaryAccess.LASER_GLITCHING,
        targets=(
            PowerDomain.CURRENT_DRIVERS,
            PowerDomain.EXCITATORY_LAYER,
            PowerDomain.INHIBITORY_LAYER,
        ),
        knows_architecture=True,
        reachable_fraction=reachable_fraction,
        description=(
            "Insider adversary with layout knowledge and a focused laser; "
            "can glitch individual layers or peripherals, partially or fully."
        ),
    )
