"""Tests for repro.utils.tables and repro.utils.serialization."""

import dataclasses
import json

import numpy as np
import pytest

from repro.utils.serialization import load_json, save_json, to_jsonable
from repro.utils.tables import format_mapping, format_table


def test_format_table_aligns_columns():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
    lines = text.splitlines()
    assert "name" in lines[0] and "value" in lines[0]
    assert len(lines) == 4  # header, separator, two rows


def test_format_table_with_title():
    text = format_table(["a"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="headers"):
        format_table(["a", "b"], [[1]])


def test_format_table_formats_floats_compactly():
    text = format_table(["x"], [[0.123456789]])
    assert "0.1235" in text


def test_format_mapping():
    text = format_mapping({"alpha": 1, "beta": 2})
    assert "alpha" in text and "beta" in text


def test_to_jsonable_handles_numpy_scalars_and_arrays():
    payload = {"a": np.int64(3), "b": np.float64(2.5), "c": np.array([1, 2]), "d": np.bool_(True)}
    converted = to_jsonable(payload)
    assert converted == {"a": 3, "b": 2.5, "c": [1, 2], "d": True}
    json.dumps(converted)


def test_to_jsonable_handles_dataclasses_and_sets():
    @dataclasses.dataclass
    class Point:
        x: int
        y: float

    converted = to_jsonable({"p": Point(1, 2.0), "s": {1, 2}})
    assert converted["p"] == {"x": 1, "y": 2.0}
    assert sorted(converted["s"]) == [1, 2]


def test_to_jsonable_rejects_unknown_types():
    with pytest.raises(TypeError):
        to_jsonable(object())


def test_save_and_load_json_roundtrip(tmp_path):
    path = tmp_path / "result.json"
    save_json(path, {"accuracy": np.float64(0.76), "series": np.arange(3)})
    loaded = load_json(path)
    assert loaded == {"accuracy": 0.76, "series": [0, 1, 2]}
