"""Tests for the figure registry, the ``python -m repro`` CLI and the store.

Covers the ISSUE 2 acceptance criteria: ``repro list`` output, running one
registered figure at tiny scale, JSON/NPZ artifact round-trips (load ==
saved), and cache-resume (a second run against the same results directory
completes from executor cache hits with bit-identical numbers).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.exec.executor import SweepExecutor
from repro.figures import (
    FigureResult,
    FigureTable,
    figure_names,
    get_figure,
    iter_figures,
)
from repro.store import (
    SCHEMA_VERSION,
    PersistentResultCache,
    is_figure_artifact,
    load_figure_result,
    save_figure_result,
)

EXPECTED_FIGURES = {
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7b",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig10a",
    "fig10c",
    "residuals",
    "overheads",
    "summary",
}


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        assert EXPECTED_FIGURES == set(figure_names())

    def test_specs_carry_metadata(self):
        for spec in iter_figures():
            assert spec.title and spec.description
            assert spec.tags
            for claim in spec.claims:
                assert claim.metric

    def test_unknown_figure_lists_the_valid_names(self):
        with pytest.raises(KeyError, match="fig8"):
            get_figure("fig999")

    def test_pipeline_figures_are_flagged(self):
        assert get_figure("fig8").uses_pipeline
        assert not get_figure("fig3").uses_pipeline


class TestScalePresets:
    def test_presets_cover_every_scale(self):
        assert set(ExperimentConfig.presets()) == {
            "paper",
            "benchmark",
            "smoke",
            "tiny",
        }

    def test_from_scale_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="tiny"):
            ExperimentConfig.from_scale("enormous")

    def test_from_environment_accepts_tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert ExperimentConfig.from_environment().scale_name == "tiny"

    def test_from_environment_error_names_the_valid_scales(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError, match="benchmark"):
            ExperimentConfig.from_environment()


class TestCLIList:
    def test_list_names_every_figure(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_FIGURES:
            assert name in out

    def test_run_rejects_unknown_figures(self):
        with pytest.raises(SystemExit, match="fig999"):
            main(["run", "fig999"])

    def test_run_without_figures_requires_all(self):
        with pytest.raises(SystemExit, match="--all"):
            main(["run"])


class TestStoreRoundTrip:
    def _synthetic_result(self) -> FigureResult:
        return FigureResult(
            figure="synthetic",
            metrics={"accuracy": 0.12345678901234567, "spikes": 42.0},
            arrays={
                "grid": np.arange(6, dtype=float).reshape(2, 3),
                "flags": np.array([True, False]),
            },
            tables=[
                FigureTable(title="t", headers=["a", "b"], rows=[["1", "2"]])
            ],
            wall_seconds=1.25,
            executor_tasks=3,
            executor_cache_hits=1,
        )

    def test_json_npz_round_trip(self, tmp_path):
        spec = get_figure("overheads")
        result = self._synthetic_result()
        config = ExperimentConfig.tiny()
        paths = save_figure_result(
            spec, result, tmp_path, config=config, git_sha="abc123"
        )
        assert paths.json_path.exists() and paths.npz_path.exists()

        stored = load_figure_result(paths.json_path)
        assert stored.document["schema_version"] == SCHEMA_VERSION
        assert stored.figure == "overheads"
        assert stored.metrics == result.metrics
        for name, array in result.arrays.items():
            assert np.array_equal(stored.arrays[name], array)
        provenance = stored.provenance
        assert provenance["git_sha"] == "abc123"
        assert provenance["scale"] == "tiny"
        assert provenance["seed"] == config.seed
        assert provenance["config"]["n_train"] == config.n_train
        assert provenance["executor_tasks"] == 3
        assert provenance["executor_cache_hits"] == 1

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION + 1, "figure": "x"})
        )
        with pytest.raises(ValueError, match="schema"):
            load_figure_result(path)

    def test_corrupt_array_is_rejected(self, tmp_path):
        spec = get_figure("overheads")
        paths = save_figure_result(
            spec,
            self._synthetic_result(),
            tmp_path,
            config=ExperimentConfig.tiny(),
            git_sha="abc",
        )
        np.savez(
            paths.npz_path,
            grid=np.zeros((2, 3)),
            flags=np.array([True, False]),
        )
        with pytest.raises(ValueError, match="digest"):
            load_figure_result(paths.json_path)

    def test_is_figure_artifact(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"schema_version": 1, "figure": "fig3"}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"results": {}}))
        assert is_figure_artifact(good)
        assert not is_figure_artifact(bad)
        assert not is_figure_artifact(tmp_path / "missing.json")


class TestPersistentResultCache:
    def test_results_survive_a_new_cache_instance(self, tmp_path):
        path = tmp_path / "cache.json"
        original = ExperimentResult(
            attack_label="attack5[vdd=0.8]",
            accuracy=0.1234567890123,
            baseline_accuracy=0.76,
            mean_excitatory_spikes=12.5,
            fault_descriptions=["theta x0.68"],
            scale_name="tiny",
        )
        cache = PersistentResultCache(path)
        cache.put("scope::attack5", original)

        reloaded = PersistentResultCache(path)
        assert reloaded.peek("scope::attack5") == original

    def test_newer_cache_schema_is_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION + 1, "results": {}})
        )
        with pytest.raises(ValueError, match="schema"):
            PersistentResultCache(path)

    def test_entries_with_drifted_fields_become_cache_misses(self, tmp_path):
        path = tmp_path / "cache.json"
        good = {"attack_label": "a", "accuracy": 0.5}
        drifted = {"attack_label": "b", "accuracy": 0.5, "no_such_field": 1}
        path.write_text(
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "results": {"k1": good, "k2": drifted},
                }
            )
        )
        cache = PersistentResultCache(path)
        assert cache.peek("k1") is not None
        assert cache.peek("k2") is None

    def test_executor_serves_hits_from_a_reloaded_cache(self, tmp_path):
        config = ExperimentConfig.tiny()
        path = tmp_path / "cache.json"

        first = SweepExecutor(
            _pipeline_for(config), cache=PersistentResultCache(path)
        )
        baseline = first.run_baseline()
        assert first.stats.tasks_executed == 1

        second = SweepExecutor(
            _pipeline_for(config), cache=PersistentResultCache(path)
        )
        resumed = second.run_baseline()
        assert second.stats.tasks_executed == 0
        assert second.stats.cache_hits == 1
        assert resumed == baseline


def _pipeline_for(config):
    from repro.core import ClassificationPipeline

    return ClassificationPipeline(config)


class TestCLIRunAndResume:
    @pytest.fixture()
    def artifact_dir(self, tmp_path):
        out = tmp_path / "results"
        rc = main(
            ["run", "fig9a", "--scale", "tiny", "--out", str(out), "--quiet"]
        )
        assert rc == 0
        return out

    def test_run_writes_schema_versioned_artifacts(self, artifact_dir):
        stored = load_figure_result(artifact_dir / "fig9a.json")
        assert stored.document["schema_version"] == SCHEMA_VERSION
        assert stored.figure == "fig9a"
        provenance = stored.provenance
        assert provenance["scale"] == "tiny"
        assert provenance["seed"] == ExperimentConfig.tiny().seed
        assert provenance["git_sha"]
        assert provenance["versions"]["numpy"] == np.__version__
        # The first run trains every grid point itself.
        assert provenance["executor_tasks"] > 0
        assert (artifact_dir / "fig9a.npz").exists()
        assert np.array_equal(
            stored.arrays["vdd_V"], np.array([0.8, 1.0, 1.2])
        )

    def test_rerun_resumes_from_cache_bit_identically(self, artifact_dir, capsys):
        first = load_figure_result(artifact_dir / "fig9a.json")
        rc = main(
            [
                "run",
                "fig9a",
                "--scale",
                "tiny",
                "--out",
                str(artifact_dir),
                "--quiet",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        second = load_figure_result(artifact_dir / "fig9a.json")
        # Resumed entirely from the persistent cache...
        assert second.provenance["executor_tasks"] == 0
        assert second.provenance["executor_cache_hits"] > 0
        # ...with bit-identical numbers.
        assert second.metrics == first.metrics
        for name, array in first.arrays.items():
            assert np.array_equal(second.arrays[name], array)

    def test_report_renders_the_paper_comparison(self, artifact_dir, capsys):
        assert main(["report", str(artifact_dir)]) == 0
        out = capsys.readouterr().out
        assert "fig9a" in out
        assert "paper" in out
        assert "0.8493" in out

    def test_report_rejects_directories_without_artifacts(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 1
        assert "no figure artifacts" in capsys.readouterr().err


class TestReportExitCodes:
    """Regression: ``repro report`` must fail on missing/corrupt artifacts.

    It used to print a partial table and exit 0, so CI never noticed a
    half-written results directory.
    """

    def _write_artifact(self, out_dir) -> None:
        spec = get_figure("overheads")
        result = FigureResult(
            figure="overheads",
            metrics={"x": 1.0},
            arrays={"grid": np.arange(4, dtype=float)},
            tables=[FigureTable(title="t", headers=["a"], rows=[["1"]])],
        )
        save_figure_result(
            spec, result, out_dir, config=ExperimentConfig.tiny(), git_sha="abc"
        )

    def test_corrupt_array_digest_fails_the_report(self, tmp_path, capsys):
        self._write_artifact(tmp_path)
        np.savez(tmp_path / "overheads.npz", grid=np.zeros(4))
        assert main(["report", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "failed to load" in err
        assert "digest" in err

    def test_missing_npz_fails_the_report(self, tmp_path, capsys):
        self._write_artifact(tmp_path)
        (tmp_path / "overheads.npz").unlink()
        assert main(["report", str(tmp_path)]) == 1
        assert "failed to load" in capsys.readouterr().err

    def test_newer_schema_fails_the_report(self, tmp_path, capsys):
        self._write_artifact(tmp_path)
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {"schema_version": SCHEMA_VERSION + 1, "figure": "x", "arrays": {}}
            )
        )
        assert main(["report", str(tmp_path)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_good_artifacts_still_render_before_the_failure_exit(
        self, tmp_path, capsys
    ):
        self._write_artifact(tmp_path)
        bad = tmp_path / "broken.json"
        bad.write_text(
            json.dumps(
                {"schema_version": SCHEMA_VERSION + 1, "figure": "bad", "arrays": {}}
            )
        )
        assert main(["report", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "overheads" in captured.out  # the intact artifact is reported
        assert "broken.json" in captured.err

    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        self._write_artifact(tmp_path)
        assert main(["report", str(tmp_path)]) == 0
        assert capsys.readouterr().err == ""

    def test_unparseable_json_fails_the_report(self, tmp_path, capsys):
        self._write_artifact(tmp_path)
        (tmp_path / "truncated.json").write_text('{"schema_version": 1, "figu')
        assert main(["report", str(tmp_path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_unrelated_json_is_still_skipped_silently(self, tmp_path, capsys):
        self._write_artifact(tmp_path)
        (tmp_path / "notes.json").write_text(json.dumps({"scratch": True}))
        assert main(["report", str(tmp_path)]) == 0
        assert capsys.readouterr().err == ""
