"""Tests for waveform post-processing and the sweep driver."""

import numpy as np
import pytest

from repro.analog.sweep import ParameterSweep
from repro.analog.waveform import Waveform, detect_spikes, threshold_crossings


def sawtooth_waveform(n_teeth=3, period=1.0, amplitude=1.0, points_per_tooth=100):
    time = np.linspace(0, n_teeth * period, n_teeth * points_per_tooth, endpoint=False)
    values = amplitude * (time % period) / period
    return Waveform(time, values, name="sawtooth")


class TestWaveform:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(3), np.arange(4))
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 0.0, 1.0]), np.zeros(3))

    def test_summaries(self):
        wave = Waveform(np.linspace(0, 1, 11), np.linspace(0, 1, 11))
        assert wave.maximum() == 1.0
        assert wave.minimum() == 0.0
        assert wave.peak_to_peak() == 1.0
        assert wave.mean() == pytest.approx(0.5, abs=1e-6)
        assert wave.duration == pytest.approx(1.0)
        assert wave.value_at(0.25) == pytest.approx(0.25)

    def test_slice(self):
        wave = sawtooth_waveform()
        sliced = wave.slice(1.0, 2.0)
        assert sliced.time[0] >= 1.0 and sliced.time[-1] <= 2.0

    def test_rising_crossings_interpolated(self):
        time = np.array([0.0, 1.0, 2.0, 3.0])
        values = np.array([0.0, 1.0, 0.0, 1.0])
        crossings = threshold_crossings(time, values, 0.5, direction="rising")
        assert crossings == pytest.approx([0.5, 2.5])

    def test_falling_and_both_crossings(self):
        time = np.array([0.0, 1.0, 2.0])
        values = np.array([1.0, 0.0, 1.0])
        falling = threshold_crossings(time, values, 0.5, direction="falling")
        both = threshold_crossings(time, values, 0.5, direction="both")
        assert len(falling) == 1 and len(both) == 2

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            threshold_crossings([0, 1], [0, 1], 0.5, direction="sideways")

    def test_spike_detection_counts_teeth(self):
        wave = sawtooth_waveform(n_teeth=5)
        assert wave.spike_count(0.5) == 5

    def test_spike_rate_and_isi(self):
        wave = sawtooth_waveform(n_teeth=4, period=2.0)
        assert wave.spike_rate(0.5) == pytest.approx(0.5, rel=0.05)
        isi = wave.inter_spike_intervals(0.5)
        assert np.allclose(isi, 2.0, atol=0.05)

    def test_min_separation_merges_chatter(self):
        time = np.linspace(0, 1, 1000)
        noisy = (np.sin(2 * np.pi * 3 * time) > 0).astype(float)
        noisy[500] = 0.0  # brief dropout creates an extra crossing
        merged = detect_spikes(time, noisy, 0.5, min_separation=0.2)
        raw = detect_spikes(time, noisy, 0.5)
        assert len(merged) <= len(raw)
        assert len(merged) == 3

    def test_time_to_first_crossing_none_when_never(self):
        wave = Waveform(np.linspace(0, 1, 10), np.zeros(10))
        assert wave.time_to_first_crossing(0.5) is None

    def test_rise_time_positive(self):
        time = np.linspace(0, 1, 101)
        wave = Waveform(time, np.clip(time * 2, 0, 1))
        rise = wave.rise_time()
        assert rise is not None and 0.3 < rise < 0.5


class TestParameterSweep:
    def test_collects_metrics(self):
        sweep = ParameterSweep("x", [1.0, 2.0, 3.0], lambda x: {"square": x * x, "double": 2 * x})
        result = sweep.run()
        assert np.allclose(result.metric("square"), [1, 4, 9])
        assert result.header() == ["x", "square", "double"]
        assert len(result.as_rows()) == 3

    def test_relative_change(self):
        sweep = ParameterSweep("x", [1.0, 2.0], lambda x: {"y": 10 * x})
        result = sweep.run()
        change = result.relative_change("y", reference_value=1.0)
        assert change == pytest.approx([0.0, 1.0])

    def test_metric_at_interpolates(self):
        result = ParameterSweep("x", [0.0, 1.0], lambda x: {"y": x}).run()
        assert result.metric_at("y", 0.5) == pytest.approx(0.5)

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            ParameterSweep("x", [], lambda x: {"y": x})

    def test_rejects_inconsistent_metric_names(self):
        calls = {"n": 0}

        def evaluate(x):
            calls["n"] += 1
            return {"a": x} if calls["n"] == 1 else {"b": x}

        with pytest.raises(ValueError):
            ParameterSweep("x", [1.0, 2.0], evaluate).run()
