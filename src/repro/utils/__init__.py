"""Shared utilities for the reproduction library.

This package holds small, dependency-free helpers used across the analog
simulator, SNN framework, attack pipeline and benchmark harness:

* :mod:`repro.utils.rng` — deterministic seeded random-number handling.
* :mod:`repro.utils.validation` — argument validation helpers with uniform
  error messages.
* :mod:`repro.utils.tables` — plain-text table rendering for benchmark and
  experiment reports.
* :mod:`repro.utils.serialization` — JSON-friendly result serialisation.
"""

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_positive,
    check_probability,
    check_range,
)

__all__ = [
    "RandomState",
    "ensure_rng",
    "format_table",
    "check_fraction",
    "check_in_choices",
    "check_positive",
    "check_probability",
    "check_range",
]
