"""Run all five power-oriented attacks against one trained pipeline.

Reproduces the paper's headline comparison (the summary behind Figs. 7b-9a)
through the ``summary`` entry of the figure registry: the driver-only and
excitatory-layer attacks barely move the accuracy, while the
inhibitory-layer, both-layer and global-supply attacks collapse it.

Figure reproduced
    Summary row of Figs. 7b, 8a-8c and 9a (one representative point per
    attack family).
Expected runtime
    ~5 min serially at the default ``benchmark`` scale; seconds at
    ``REPRO_SCALE=smoke``.  ``--workers N`` fans the five attacked runs out
    over N processes and divides the wall-clock accordingly.

Usage::

    python examples/attack_campaign.py                     # serial, benchmark scale
    python examples/attack_campaign.py --workers 4         # parallel sweep
    REPRO_SCALE=smoke python examples/attack_campaign.py   # quick look
"""

import argparse

from repro.core import ExperimentConfig
from repro.core.reporting import format_execution_report
from repro.figures import FigureContext, get_figure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the attack sweep (0/1 = serial, default)",
    )
    args = parser.parse_args()

    config = ExperimentConfig.from_environment(default="benchmark")
    mode = f"{args.workers} workers" if args.workers >= 2 else "serial"
    print(f"Running the 5-attack campaign ({config.scale_name} scale, {mode})...")

    with FigureContext(config, workers=args.workers) as context:
        result = get_figure("summary").run(context)
        print()
        print(result.render())
        print()
        print(format_execution_report(context.executor.stats))


if __name__ == "__main__":
    main()
