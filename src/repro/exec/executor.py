"""The sweep executor: serial or process-parallel attack evaluation.

Every task is one pipeline evaluation — ``pipeline.run(attack)`` or, for
``attack=None``, ``pipeline.run_baseline()``.  Tasks are independent by
construction (each run trains a fresh network from seeds derived from the
experiment config and the attack label alone), so they parallelise across
processes without any shared state.

Worker processes do **not** receive the parent's pipeline object.  They
rebuild an equivalent pipeline once per worker from a picklable factory
(by default :class:`PipelineFromConfig` around ``pipeline.config``), then
serve every task assigned to them from that private pipeline.  Because all
pipeline randomness is a pure function of the config seed and the attack
label, the rebuilt pipelines produce bit-identical results to the parent's.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache, attack_cache_key, scope_key
from repro.exec.snn_batch import PipelineBatchDispatcher

#: Module-global pipeline of the current worker process (set by the pool
#: initializer, used by every task executed in that worker).
_WORKER_PIPELINE = None


def _initialize_worker(pipeline_factory: Callable[[], object]) -> None:
    """Build the worker-private pipeline once per pool process."""
    global _WORKER_PIPELINE
    # Workers must not inherit the parent's signal handling (fork start
    # method copies it): graceful shutdown is the parent's job.  SIGINT is
    # ignored — Ctrl-C hits the whole process group, and the parent shuts
    # the pool down; SIGTERM resets to default so pool teardown after a
    # worker crash terminates siblings without tracebacks.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        pass
    _WORKER_PIPELINE = pipeline_factory()


def _execute_task(key: str, attack) -> tuple:
    """Run one attack (or the baseline) on the worker's pipeline."""
    start = time.perf_counter()
    if attack is None:
        result = _WORKER_PIPELINE.run_baseline()
    else:
        result = _WORKER_PIPELINE.run(attack)
    return key, result, time.perf_counter() - start


@dataclass(frozen=True)
class PipelineFromConfig:
    """Picklable factory that rebuilds a classification pipeline in a worker.

    Rebuilding from the config is cheap relative to one training run and
    sidesteps pickling the parent pipeline's dataset arrays and RNG state.
    ``engine`` selects the SNN execution engine of the rebuilt pipeline
    (results are engine-independent; see :mod:`repro.core.pipeline`).
    """

    config: object
    engine: str = "auto"

    def __call__(self):
        from repro.core.pipeline import ClassificationPipeline

        return ClassificationPipeline(self.config, engine=self.engine)


@dataclass
class TaskTiming:
    """Timing record of one executed task."""

    key: str
    seconds: float
    cached: bool = False
    worker_mode: str = "serial"


@dataclass
class ExecutionStats:
    """Aggregate instrumentation of one executor's lifetime.

    ``speedup_estimate`` compares the summed task time (what a serial run
    would have cost) with the measured wall-clock time of the parallel
    batches; it is the executor's own measurement of how much the process
    pool helped.
    """

    workers: int = 0
    tasks_executed: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    task_seconds: float = 0.0
    timings: List[TaskTiming] = field(default_factory=list)
    batches: int = 0
    #: Resilience counters (filled by :mod:`repro.exec.resilience`): tasks
    #: re-run after a transient failure, dispatches abandoned past the task
    #: timeout, straggler duplicates submitted, worker pools rebuilt after
    #: process death, and cache entries quarantined as corrupt.
    retries: int = 0
    timeouts: int = 0
    requeues: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0
    #: Elastic work-stealing counters (filled by :mod:`repro.exec.elastic`):
    #: chunk leases claimed (including steals), expired leases taken over,
    #: lease expiries observed, straggler duplicates that won their done
    #: marker, and cooperating worker processes seen joining / going silent.
    leases_claimed: int = 0
    leases_stolen: int = 0
    leases_expired: int = 0
    duplicate_wins: int = 0
    peers_joined: int = 0
    peers_lost: int = 0
    #: Serving counters (filled by :class:`repro.exec.microbatch.Microbatcher`):
    #: lockstep microbatches formed, single-example requests coalesced into
    #: them, and how each flush was triggered (batch full, max-linger
    #: deadline, or explicit drain/close).
    microbatches: int = 0
    microbatch_requests: int = 0
    microbatch_full_flushes: int = 0
    microbatch_linger_flushes: int = 0
    microbatch_drain_flushes: int = 0

    def record(self, timing: TaskTiming) -> None:
        """Account one finished task (cached or freshly executed)."""
        self.timings.append(timing)
        if timing.cached:
            self.cache_hits += 1
        else:
            self.tasks_executed += 1
            self.task_seconds += timing.seconds

    def speedup_estimate(self) -> float:
        """Summed task time / wall time (1.0 when nothing ran)."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.task_seconds / self.wall_seconds

    def resilience_events(self) -> Dict[str, int]:
        """The resilience counters as a dict (all zero on a clean run)."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "requeues": self.requeues,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": self.quarantined,
        }

    def elastic_events(self) -> Dict[str, int]:
        """The elastic scheduler counters as a dict (all zero unless the
        campaign ran under ``--elastic``; kept separate from
        :meth:`resilience_events` so single-process resilience accounting
        is unchanged)."""
        return {
            "leases_claimed": self.leases_claimed,
            "leases_stolen": self.leases_stolen,
            "leases_expired": self.leases_expired,
            "duplicate_wins": self.duplicate_wins,
            "peers_joined": self.peers_joined,
            "peers_lost": self.peers_lost,
        }

    def serving_events(self) -> Dict[str, int]:
        """The microbatch serving counters as a dict (all zero outside the
        serving path).  Invariant: the three flush-cause counters always sum
        to ``microbatches``, and ``microbatch_requests`` equals the number of
        requests demuxed back to callers."""
        return {
            "microbatches": self.microbatches,
            "microbatch_requests": self.microbatch_requests,
            "microbatch_full_flushes": self.microbatch_full_flushes,
            "microbatch_linger_flushes": self.microbatch_linger_flushes,
            "microbatch_drain_flushes": self.microbatch_drain_flushes,
        }

    def mean_microbatch_occupancy(self) -> float:
        """Mean requests per formed microbatch (0.0 when none formed)."""
        if self.microbatches == 0:
            return 0.0
        return self.microbatch_requests / self.microbatches

    def slowest_tasks(self, count: int = 5) -> List[TaskTiming]:
        """The ``count`` slowest executed (non-cached) tasks."""
        executed = [t for t in self.timings if not t.cached]
        return sorted(executed, key=lambda t: t.seconds, reverse=True)[:count]


#: Progress callback signature: (timing, completed_so_far, total_in_batch).
ProgressCallback = Callable[[TaskTiming, int, int], None]


class SweepExecutor:
    """Runs batches of independent attack evaluations, serially or in parallel.

    Parameters
    ----------
    pipeline:
        The evaluation pipeline.  Anything implementing the campaign's
        pipeline protocol works: ``run(attack)``, ``run_baseline()`` and a
        ``config`` attribute.  Required for serial execution; for parallel
        execution it may be omitted when ``pipeline_factory`` is given.
    workers:
        Number of worker processes.  ``0`` or ``1`` selects the serial
        in-process path (deterministic call order, easiest to debug and
        profile); ``>= 2`` fans tasks out over a process pool.
    pipeline_factory:
        Picklable zero-argument callable building the pipeline inside each
        worker.  Defaults to :class:`PipelineFromConfig` around
        ``pipeline.config``.
    cache:
        Result cache shared across batches (a fresh one by default).  Pass
        an explicit cache to share results between several executors.
    progress:
        Optional callback invoked after every finished task with
        ``(timing, done, total)``.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``).  ``None`` uses the platform default.
    batch_runs:
        ``True`` (default) lets the serial path route whole batches through
        the pipeline's lockstep ``run_batch`` (the batched SNN engine, see
        :mod:`repro.exec.snn_batch`) when the pipeline supports it;
        ``False`` forces per-run serial execution.
    """

    def __init__(
        self,
        pipeline=None,
        *,
        workers: int = 0,
        pipeline_factory: Optional[Callable[[], object]] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        mp_context: Optional[str] = None,
        batch_runs: bool = True,
    ) -> None:
        if pipeline is None and pipeline_factory is None:
            raise ValueError("SweepExecutor needs a pipeline or a pipeline_factory")
        self._pipeline = pipeline
        self._factory = pipeline_factory
        self.workers = max(0, int(workers))
        self.cache = cache if cache is not None else ResultCache()
        self.stats = ExecutionStats(workers=self.workers)
        self._progress = progress
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._scope: Optional[str] = None
        self.dispatcher = PipelineBatchDispatcher(batch=batch_runs)

    # ------------------------------------------------------------------ helpers
    @property
    def pipeline(self):
        """The serial-path pipeline (built lazily from the factory if needed)."""
        if self._pipeline is None:
            self._pipeline = self._factory()
        return self._pipeline

    def _worker_factory(self) -> Callable[[], object]:
        if self._factory is not None:
            return self._factory
        config = getattr(self._pipeline, "config", None)
        if config is None:
            raise ValueError(
                "parallel execution needs a picklable pipeline_factory; the "
                "wrapped pipeline has no .config to rebuild one from"
            )
        # Propagate the wrapped pipeline's engine choice so a forced
        # engine="scalar" (or "batched") holds on the parallel path too.
        return PipelineFromConfig(config, engine=getattr(self._pipeline, "engine", "auto"))

    @property
    def parallel(self) -> bool:
        """True when batches are dispatched to a process pool."""
        return self.workers >= 2

    def _cache_key(self, attack) -> str:
        """Scoped cache key: experiment-config namespace + attack content.

        The scope prevents a shared cache from serving results computed
        under a *different* experiment config (different scale, seed, ...):
        keys from distinct configs never collide.
        """
        if self._scope is None:
            source = self._pipeline if self._pipeline is not None else self._factory
            self._scope = scope_key(getattr(source, "config", None) or source)
        return f"{self._scope}::{attack_cache_key(attack)}"

    @property
    def _baseline_cache_key(self) -> str:
        return self._cache_key(None)

    # ------------------------------------------------------------------ running
    def run_baseline(self):
        """The attack-free result (evaluated once, then served from cache)."""
        return self.map([None])[0]

    def run_attack(self, attack):
        """One attacked result (served from cache when already evaluated)."""
        return self.map([attack])[0]

    def peek_results(self, attacks: Sequence) -> List:
        """Cached results for ``attacks`` (input order) without executing.

        Entries not in the cache come back as ``None``.  Sharded scenario
        runs use this to assemble the merged artifact: every shard
        evaluates its own slice, then any invocation can check — without
        triggering work — whether the union of the persistent caches
        already covers the full variant list.
        """
        return [self.cache.peek(self._cache_key(attack)) for attack in attacks]

    def map(self, attacks: Sequence) -> List:
        """Evaluate every attack in ``attacks`` and return aligned results.

        ``None`` entries request the attack-free baseline.  Duplicate
        configurations (by :func:`attack_cache_key`) are evaluated once.
        Results are returned in input order regardless of completion order.
        """
        batch_start = time.perf_counter()
        keys = [self._cache_key(attack) for attack in attacks]

        pending: Dict[str, object] = {}
        for key, attack in zip(keys, attacks):
            if key not in self.cache and key not in pending:
                pending[key] = attack

        total = len(pending)
        try:
            if total:
                if self.parallel and total > 1:
                    self._run_parallel(pending, total)
                else:
                    self._run_serial(pending, total)
        finally:
            # Account the batch even when a task failed, so retries see
            # truthful stats and the completed siblings' timings.
            self.stats.batches += 1
            self.stats.wall_seconds += time.perf_counter() - batch_start

        # Every request not satisfied by a fresh evaluation above was a cache
        # hit — including duplicates of a key evaluated in this same batch.
        freshly_executed = set()
        for key in keys:
            if key in pending and key not in freshly_executed:
                freshly_executed.add(key)
                continue
            self.stats.record(TaskTiming(key=key, seconds=0.0, cached=True))

        self._backfill_baseline(keys)
        return [self.cache.peek(key) for key in keys]

    def _backfill_baseline(self, keys: Sequence[str]) -> None:
        """Fill ``baseline_accuracy`` on attacked results once it is known.

        In serial runs the pipeline itself back-references its cached
        baseline, but a parallel worker that only ever sees attacked tasks
        cannot.  Normalising here makes the field deterministic — identical
        for serial and parallel execution — whenever the baseline has been
        evaluated (the campaign includes it in every sweep batch).
        """
        baseline = self.cache.peek(self._baseline_cache_key)
        baseline_accuracy = getattr(baseline, "accuracy", None)
        if baseline_accuracy is None:
            return
        for key in dict.fromkeys(keys):
            if key == self._baseline_cache_key:
                continue
            result = self.cache.peek(key)
            if (
                dataclasses.is_dataclass(result)
                and getattr(result, "baseline_accuracy", False) is None
            ):
                self.cache.put(
                    key,
                    dataclasses.replace(result, baseline_accuracy=baseline_accuracy),
                )

    def _run_serial(self, pending: Dict[str, object], total: int) -> None:
        if self.dispatcher.supports(self.pipeline, total):
            if self._run_serial_batched(pending, total):
                return
        else:
            self.dispatcher.note_serial()
        done = 0
        for key, attack in pending.items():
            start = time.perf_counter()
            if attack is None:
                result = self.pipeline.run_baseline()
            else:
                result = self.pipeline.run(attack)
            timing = TaskTiming(
                key=key, seconds=time.perf_counter() - start, worker_mode="serial"
            )
            self.cache.put(key, result)
            self.stats.record(timing)
            done += 1
            if self._progress is not None:
                self._progress(timing, done, total)

    def _run_serial_batched(self, pending: Dict[str, object], total: int) -> bool:
        """Evaluate a whole pending batch in one lockstep variant pass.

        Returns ``False`` when the batched engine rejected the network (the
        caller then falls back to the per-run loop).  Timings attribute the
        pass's wall-clock evenly across its tasks, under the ``"batched"``
        worker mode, so ``ExecutionStats`` stays truthful about where time
        went (``task_seconds`` equals wall time for a lockstep pass — the
        speedup shows up as fewer seconds, not as pool concurrency).
        """
        start = time.perf_counter()
        results = self.dispatcher.run(self.pipeline, list(pending.values()))
        if results is None:
            return False
        seconds = (time.perf_counter() - start) / max(total, 1)
        for done, (key, result) in enumerate(zip(pending, results), start=1):
            timing = TaskTiming(key=key, seconds=seconds, worker_mode="batched")
            self.cache.put(key, result)
            self.stats.record(timing)
            if self._progress is not None:
                self._progress(timing, done, total)
        return True

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The executor's persistent worker pool (created on first use).

        Keeping one pool per executor means the worker start-up cost — and
        the per-worker pipeline rebuild in the initializer — is paid once
        per campaign, not once per sweep batch.
        """
        if self._pool is None:
            context = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_initialize_worker,
                initargs=(self._worker_factory(),),
            )
        return self._pool

    def _run_parallel(self, pending: Dict[str, object], total: int) -> None:
        pool = self._ensure_pool()
        done = 0
        futures = {
            pool.submit(_execute_task, key, attack)
            for key, attack in pending.items()
        }
        failures: List[BaseException] = []
        while futures:
            finished, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in finished:
                try:
                    key, result, seconds = future.result()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    failures.append(error)
                    continue
                timing = TaskTiming(key=key, seconds=seconds, worker_mode="parallel")
                self.cache.put(key, result)
                self.stats.record(timing)
                done += 1
                if self._progress is not None:
                    self._progress(timing, done, total)
        if failures:
            # Every sibling task was drained first, so completed results are
            # cached and a retrying map() only re-runs the failed tasks.
            raise failures[0]

    def close(self, *, cancel_pending: bool = False) -> None:
        """Shut the worker pool down (no-op for serial executors).

        Optional: an unclosed pool is joined at interpreter exit by
        :mod:`concurrent.futures`; use ``close()`` (or the context-manager
        form) for deterministic teardown in long-lived processes.
        ``cancel_pending=True`` additionally cancels queued-but-unstarted
        tasks — the interrupt path, where already-completed results are
        already flushed to the cache and waiting on the queue tail would
        only delay the exit.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel_pending)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # On an exceptional exit (including KeyboardInterrupt) drop queued
        # tasks: completed results are cached, the rest resumes next run.
        self.close(cancel_pending=exc_type is not None)

    # ------------------------------------------------------------------ misc
    def baseline_accuracy(self) -> float:
        """Accuracy of the attack-free run (cached)."""
        return self.run_baseline().accuracy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = f"parallel(workers={self.workers})" if self.parallel else "serial"
        return f"SweepExecutor({mode}, cached={len(self.cache)})"


def default_worker_count() -> int:
    """A sensible worker count for this machine (``os.cpu_count()``, min 1)."""
    return max(1, os.cpu_count() or 1)
