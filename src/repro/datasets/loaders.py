"""Batching and splitting helpers for the synthetic digit dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive


def train_test_split(
    images: np.ndarray,
    labels: np.ndarray,
    *,
    test_fraction: float = 0.2,
    rng: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split a dataset into train and test portions.

    Returns ``(train_images, train_labels, test_images, test_labels)``.
    """
    check_fraction(test_fraction, "test_fraction")
    images = np.asarray(images)
    labels = np.asarray(labels)
    if len(images) != len(labels):
        raise ValueError("images and labels must have the same length")
    generator = ensure_rng(rng, name="train_test_split")
    order = generator.permutation(len(images))
    n_test = int(round(test_fraction * len(images)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return images[train_idx], labels[train_idx], images[test_idx], labels[test_idx]


@dataclass
class DataLoader:
    """A minimal shuffled batch iterator over (image, label) pairs."""

    images: np.ndarray
    labels: np.ndarray
    batch_size: int = 32
    shuffle: bool = True
    rng: SeedLike = 0

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images)
        self.labels = np.asarray(self.labels)
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have the same length")
        check_positive(self.batch_size, "batch_size")
        self._rng = ensure_rng(self.rng, name="data_loader")

    def __len__(self) -> int:
        return (len(self.images) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.images))
        if self.shuffle:
            order = self._rng.permutation(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            yield self.images[batch], self.labels[batch]
