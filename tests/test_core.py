"""Tests for the experiment configuration, result containers and reporting."""

import numpy as np
import pytest

from repro.core import (
    AttackGridResult,
    ExperimentConfig,
    ExperimentResult,
    format_attack_grid,
    format_experiment_result,
)
from repro.core.reporting import format_sweep_series


class TestExperimentConfig:
    def test_presets_scale_sensibly(self):
        paper = ExperimentConfig.paper()
        benchmark = ExperimentConfig.benchmark()
        smoke = ExperimentConfig.smoke()
        assert paper.n_train == 1000 and paper.time_steps == 250
        assert smoke.n_train < benchmark.n_train < paper.n_train
        assert smoke.network.n_neurons < benchmark.network.n_neurons
        assert smoke.time_steps < benchmark.time_steps <= paper.time_steps

    def test_n_samples(self):
        config = ExperimentConfig(n_train=30, n_eval=10)
        assert config.n_samples == 40

    def test_with_overrides(self):
        config = ExperimentConfig.smoke().with_overrides(n_train=99)
        assert config.n_train == 99
        assert config.time_steps == ExperimentConfig.smoke().time_steps

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_train=0)
        with pytest.raises(ValueError):
            ExperimentConfig(test_fraction=2.0)

    def test_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert ExperimentConfig.from_environment().scale_name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "nonsense")
        with pytest.raises(ValueError):
            ExperimentConfig.from_environment()
        monkeypatch.delenv("REPRO_SCALE")
        assert ExperimentConfig.from_environment().scale_name == "benchmark"


class TestExperimentResult:
    def test_degradation_metrics(self):
        result = ExperimentResult(
            attack_label="attack3", accuracy=0.10, baseline_accuracy=0.76
        )
        assert result.accuracy_change == pytest.approx(-0.66)
        assert result.relative_degradation == pytest.approx(0.868, abs=1e-3)

    def test_missing_baseline_gives_none(self):
        result = ExperimentResult(attack_label="x", accuracy=0.5)
        assert result.accuracy_change is None
        assert result.relative_degradation is None

    def test_as_row(self):
        result = ExperimentResult("a", 0.5, baseline_accuracy=0.75)
        label, accuracy, change = result.as_row()
        assert label == "a" and accuracy == 0.5 and change == -0.25


class TestAttackGridResult:
    def make_grid(self):
        return AttackGridResult(
            name="grid",
            row_parameter="threshold_change",
            column_parameter="fraction",
            row_values=[-0.2, 0.2],
            column_values=[0.0, 0.5, 1.0],
            accuracies=np.array([[0.76, 0.5, 0.1], [0.76, 0.7, 0.68]]),
            baseline_accuracy=0.76,
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            AttackGridResult(
                name="bad",
                row_parameter="a",
                column_parameter="b",
                row_values=[1.0],
                column_values=[1.0, 2.0],
                accuracies=np.zeros((2, 2)),
                baseline_accuracy=0.5,
            )

    def test_worst_case(self):
        grid = self.make_grid()
        row, column, accuracy = grid.worst_case()
        assert (row, column, accuracy) == (-0.2, 1.0, 0.1)
        assert grid.worst_case_relative_degradation() == pytest.approx((0.76 - 0.1) / 0.76)

    def test_accuracy_at_and_degradation(self):
        grid = self.make_grid()
        assert grid.accuracy_at(-0.2, 0.5) == 0.5
        assert grid.degradation().max() == pytest.approx(0.66)


class TestReporting:
    def test_format_experiment_result_mentions_faults(self):
        result = ExperimentResult(
            attack_label="attack4",
            accuracy=0.1,
            baseline_accuracy=0.76,
            fault_descriptions=["excitatory.threshold x0.800 on 100 neurons (100% of layer)"],
        )
        text = format_experiment_result(result)
        assert "attack4" in text and "threshold" in text and "relative degradation" in text

    def test_format_attack_grid_absolute_and_change(self):
        grid = TestAttackGridResult().make_grid()
        absolute = format_attack_grid(grid)
        change = format_attack_grid(grid, as_change=True)
        assert "fraction=0.5" in absolute
        assert "+0.0000" in change or "-0.2600" in change

    def test_format_sweep_series(self):
        text = format_sweep_series(
            "vdd", [0.8, 1.0], [0.1, 0.76], baseline_accuracy=0.76, title="attack5"
        )
        assert "vdd" in text and "0.8" in text and "attack5" in text
