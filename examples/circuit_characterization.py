"""Circuit-level characterisation of the analog neurons and drivers.

Reproduces the circuit-tier figures directly from the registry: the MNA
netlist waveform of the Axon-Hillock neuron, the driver-amplitude and
threshold sensitivity sweeps, and the circuit halves of the robust-driver
and comparator defenses.  No SNN training is involved.

Figures reproduced
    Figs. 3, 5b/5c, 6a-6c, 9b and 10a.
Expected runtime
    ~1-2 min on a laptop (dozens of small transient/DC simulations).

Usage::

    python examples/circuit_characterization.py
"""

from repro.core import ExperimentConfig
from repro.figures import FigureContext, get_figure

FIGURES = ("fig3", "fig5", "fig6", "fig9b", "fig10a")


def main() -> None:
    # The circuit tier is scale-independent; the config only labels the run.
    config = ExperimentConfig.from_environment(default="benchmark")
    with FigureContext(config) as context:
        for name in FIGURES:
            spec = get_figure(name)
            print(f"{spec.title}...")
            print(spec.run(context).render())
            print()
    print("Persist these with: python -m repro run " + " ".join(FIGURES))


if __name__ == "__main__":
    main()
