"""Run all five power-oriented attacks against one trained pipeline.

Reproduces the paper's headline comparison (the summary behind Figs. 7b-9a):
the driver-only and excitatory-layer attacks barely move the accuracy, while
the inhibitory-layer, both-layer and global-supply attacks collapse it.

Figure reproduced
    Summary row of Figs. 7b, 8a-8c and 9a (one representative point per
    attack family).
Expected runtime
    ~5 min serially at the default ``benchmark`` scale; seconds at
    ``REPRO_SCALE=smoke``.  ``--workers N`` fans the five attacked runs out
    over N processes and divides the wall-clock accordingly.

Usage::

    python examples/attack_campaign.py                     # serial, benchmark scale
    python examples/attack_campaign.py --workers 4         # parallel sweep
    REPRO_SCALE=smoke python examples/attack_campaign.py   # quick look
"""

import argparse

from repro.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
)
from repro.core import ClassificationPipeline, ExperimentConfig
from repro.core.reporting import format_execution_report
from repro.exec import SweepExecutor
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the attack sweep (0/1 = serial, default)",
    )
    args = parser.parse_args()

    config = ExperimentConfig.from_environment(default="benchmark")
    pipeline = ClassificationPipeline(config)
    executor = SweepExecutor(pipeline, workers=args.workers)

    attacks = [
        None,  # the attack-free baseline
        Attack1InputSpikeCorruption(theta_change=-0.2),
        Attack2ExcitatoryThreshold(threshold_change=-0.2, fraction=1.0),
        Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0),
        Attack4BothLayerThreshold(threshold_change=-0.2),
        Attack5GlobalSupply(vdd=0.8),
    ]

    mode = f"{args.workers} workers" if args.workers >= 2 else "serial"
    print(f"Running the 5-attack campaign ({config.scale_name} scale, {mode})...")
    results = executor.map(attacks)
    baseline, attacked = results[0], results[1:]

    rows = [("baseline", f"{baseline.accuracy:.3f}", "-", "-")]
    for attack, result in zip(attacks[1:], attacked):
        # The executor back-fills baseline_accuracy (the batch includes the
        # baseline), so the result's own guarded properties apply.
        degradation = result.relative_degradation
        rows.append(
            (
                attack.label(),
                f"{result.accuracy:.3f}",
                f"{result.accuracy_change:+.3f}",
                "n/a" if degradation is None else f"{degradation:.1%}",
            )
        )

    print()
    print(
        format_table(
            ["attack", "accuracy", "change", "relative degradation"],
            rows,
            title="Power-oriented fault-injection attacks on the Diehl&Cook SNN",
        )
    )
    print()
    print(format_execution_report(executor.stats))


if __name__ == "__main__":
    main()
