"""Tests for circuit/netlist construction and hierarchy."""

import pytest

from repro.analog.netlist import Circuit, SubCircuit, is_ground, merge_circuits
from repro.analog.devices import Resistor


def test_is_ground_aliases():
    assert is_ground("0") and is_ground("gnd") and is_ground("GND") and is_ground("vss")
    assert not is_ground("out")


def test_add_and_lookup_devices():
    circuit = Circuit("test")
    resistor = circuit.add_resistor("R1", "a", "b", "1k")
    assert circuit["R1"] is resistor
    assert "R1" in circuit
    assert len(circuit) == 1


def test_duplicate_names_rejected():
    circuit = Circuit("test")
    circuit.add_resistor("R1", "a", "b", "1k")
    with pytest.raises(ValueError, match="duplicate"):
        circuit.add_resistor("R1", "a", "c", "1k")


def test_missing_device_lookup_raises_keyerror():
    circuit = Circuit("test")
    with pytest.raises(KeyError, match="no device named"):
        circuit["missing"]


def test_nodes_excludes_ground_and_preserves_order():
    circuit = Circuit("test")
    circuit.add_resistor("R1", "in", "out", "1k")
    circuit.add_resistor("R2", "out", "0", "1k")
    assert circuit.nodes() == ["in", "out"]


def test_remove_and_replace():
    circuit = Circuit("test")
    circuit.add_resistor("R1", "a", "0", "1k")
    circuit.remove("R1")
    assert "R1" not in circuit
    circuit.add_resistor("R1", "a", "0", "2k")
    circuit.replace(Resistor("R1", "a", "0", "3k"))
    assert circuit["R1"].resistance == pytest.approx(3e3)


def test_source_helpers():
    circuit = Circuit("test")
    circuit.add_voltage_source("V1", "a", "0", 1.0)
    circuit.add_current_source("I1", "a", "0", "1u")
    assert set(circuit.source_names()) == {"V1", "I1"}
    circuit.set_source_value("V1", 2.0)
    assert circuit["V1"].value == 2.0
    with pytest.raises(TypeError):
        circuit.add_resistor("R1", "a", "0", "1k")
        circuit.set_source_value("R1", 1.0)


def test_subcircuit_instantiation_renames_internals():
    def build(circuit: Circuit) -> None:
        circuit.add_resistor("RA", "in", "mid", "1k")
        circuit.add_resistor("RB", "mid", "out", "1k")

    divider = SubCircuit("divider", ports=("in", "out"), builder=build)
    parent = Circuit("parent")
    added = parent.instantiate(divider, "X1", {"in": "vin", "out": "vout"})
    assert len(added) == 2
    assert "X1.RA" in parent and "X1.RB" in parent
    assert parent["X1.RA"].nodes == ("vin", "X1.mid")
    assert parent["X1.RB"].nodes == ("X1.mid", "vout")


def test_subcircuit_missing_port_mapping_raises():
    divider = SubCircuit("s", ports=("in", "out"), builder=lambda c: None)
    with pytest.raises(ValueError, match="missing port"):
        Circuit("p").instantiate(divider, "X1", {"in": "a"})


def test_subcircuit_ground_not_prefixed():
    def build(circuit: Circuit) -> None:
        circuit.add_resistor("RA", "in", "0", "1k")

    sub = SubCircuit("s", ports=("in",), builder=build)
    parent = Circuit("p")
    parent.instantiate(sub, "X1", {"in": "a"})
    assert parent["X1.RA"].nodes == ("a", "0")


def test_merge_circuits():
    a = Circuit("a")
    a.add_resistor("R1", "x", "0", "1k")
    b = Circuit("b")
    b.add_resistor("R2", "x", "y", "1k")
    merged = merge_circuits("ab", [a, b])
    assert len(merged) == 2 and "R1" in merged and "R2" in merged


def test_copy_is_shallow_but_independent_container():
    circuit = Circuit("test")
    circuit.add_resistor("R1", "a", "0", "1k")
    clone = circuit.copy()
    clone.add_resistor("R2", "a", "0", "1k")
    assert "R2" in clone and "R2" not in circuit
