"""Deterministic random-number handling.

Every stochastic component in the library (Poisson encoders, synthetic digit
rendering, fault-site selection, STDP tie-breaking) accepts either an integer
seed, ``None`` or an existing :class:`numpy.random.Generator`.  The helpers
here normalise those inputs so that experiments are reproducible end-to-end
from a single top-level seed.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: Accepted seed-like types throughout the library.  Tuples/lists of ints are
#: forwarded to :class:`numpy.random.SeedSequence`, which combines them into
#: one entropy pool — useful for deriving order-independent streams from a
#: (seed, stable-key) pair.
SeedLike = Union[None, int, Sequence[int], np.random.Generator, "RandomState"]


class RandomState:
    """A named wrapper around :class:`numpy.random.Generator`.

    The wrapper exists so that sub-components can derive *independent* child
    streams from a parent seed without consuming numbers from the parent
    stream (which would make results depend on call order).

    Parameters
    ----------
    seed:
        Integer seed, ``None`` for OS entropy, an existing generator or
        another :class:`RandomState` (which is shared, not copied).
    name:
        Optional label used when spawning children; purely informational.
    """

    def __init__(self, seed: SeedLike = None, name: str = "root") -> None:
        if isinstance(seed, RandomState):
            self._generator = seed.generator
            self._seed_seq = seed._seed_seq
        elif isinstance(seed, np.random.Generator):
            self._generator = seed
            self._seed_seq = None
        else:
            self._seed_seq = np.random.SeedSequence(seed)
            self._generator = np.random.default_rng(self._seed_seq)
        self.name = name

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._generator

    def spawn(self, name: str) -> "RandomState":
        """Create an independent child stream.

        Children spawned with the same ``name`` order from the same parent
        seed are identical across runs, regardless of how much randomness the
        parent has already consumed.
        """
        if self._seed_seq is None:
            # The wrapped generator was supplied externally; derive a child
            # from freshly drawn entropy (still deterministic given the
            # external generator's state).
            child_seed = int(self._generator.integers(0, 2**63 - 1))
            child = RandomState(child_seed, name=name)
            return child
        child_seq = self._seed_seq.spawn(1)[0]
        child = RandomState.__new__(RandomState)
        child._seed_seq = child_seq
        child._generator = np.random.default_rng(child_seq)
        child.name = name
        return child

    # Convenience passthroughs -------------------------------------------------
    def random(self, size=None):
        """Uniform [0, 1) samples."""
        return self._generator.random(size)

    def integers(self, low, high=None, size=None):
        """Integer samples (half-open interval)."""
        return self._generator.integers(low, high, size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        """Gaussian samples."""
        return self._generator.normal(loc, scale, size)

    def poisson(self, lam, size=None):
        """Poisson samples."""
        return self._generator.poisson(lam, size)

    def choice(self, a, size=None, replace=True, p=None):
        """Random choice from ``a``."""
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        """Random permutation."""
        return self._generator.permutation(x)

    def shuffle(self, x) -> None:
        """In-place shuffle."""
        self._generator.shuffle(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomState(name={self.name!r})"


def ensure_rng(seed: SeedLike = None, name: str = "rng") -> RandomState:
    """Return a :class:`RandomState` for any accepted seed-like input."""
    if isinstance(seed, RandomState):
        return seed
    return RandomState(seed, name=name)
