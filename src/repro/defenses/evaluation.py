"""Accuracy-recovery evaluation of the threshold defenses (Fig. 9c, Fig. 10a).

The circuit-tier defense modules answer "how much threshold corruption
survives the defense"; this module closes the loop by running the *residual*
corruption through the classification pipeline and comparing the defended
accuracy against the undefended attack and the baseline.  All pipeline runs
are submitted as one batch through a
:class:`~repro.exec.executor.SweepExecutor`, so evaluating several defenses
shares the baseline and parallelises across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.attacks.attacks import Attack4BothLayerThreshold
from repro.core.results import ExperimentResult
from repro.exec.executor import SweepExecutor


def residual_defense_factors(attack_vdd: float = 0.8) -> Dict[str, float]:
    """Fraction of an attack-induced parameter change surviving each defense.

    A factor of ``0.0`` means the defense removes the corruption entirely;
    ``1.0`` means it is useless.  The factors are derived from the
    circuit-tier defense models at the given attack supply voltage, so they
    carry the same calibration the paper's Sec. V evaluation uses.  The
    scenario subsystem (:mod:`repro.scenarios`) uses them to co-evaluate
    "attack under defense" variants: the defended variant of an attack
    scales the attacked parameter's excursion by the defense's factor.

    Returns a mapping from defense name (``robust_driver``, ``sizing32``,
    ``comparator``, ``bandgap``) to its residual factor.
    """
    from repro.defenses.bandgap_threshold import BandgapThresholdDefense
    from repro.defenses.comparator_neuron import ComparatorNeuronDefense
    from repro.defenses.robust_driver import RobustDriverDefense
    from repro.defenses.sizing import SizingDefense

    robust = RobustDriverDefense()
    sizing = SizingDefense()
    comparator = ComparatorNeuronDefense()
    bandgap = BandgapThresholdDefense()

    def _ratio(residual: float, undefended: float) -> float:
        if undefended == 0.0:
            return 0.0
        return float(residual / undefended)

    return {
        "robust_driver": _ratio(
            robust.residual_theta_change(attack_vdd),
            robust.undefended_theta_scale(attack_vdd) - 1.0,
        ),
        "sizing32": _ratio(
            sizing.threshold_change(32.0, attack_vdd),
            sizing.threshold_change(1.0, attack_vdd),
        ),
        "comparator": _ratio(
            comparator.threshold_scale(attack_vdd) - 1.0,
            comparator.undefended_threshold_scale(attack_vdd) - 1.0,
        ),
        "bandgap": _ratio(
            bandgap.residual_threshold_change(attack_vdd),
            bandgap.undefended_threshold_scale(attack_vdd) - 1.0,
        ),
    }


@dataclass
class DefendedAccuracyPoint:
    """Accuracy of one defense against the undefended attack and baseline."""

    defense_name: str
    residual_threshold_change: float
    defended: ExperimentResult
    undefended: ExperimentResult
    baseline: ExperimentResult

    @property
    def accuracy_recovered(self) -> float:
        """Accuracy regained by the defense over the undefended attack."""
        return self.defended.accuracy - self.undefended.accuracy

    @property
    def residual_degradation(self) -> float:
        """Accuracy still lost to the residual corruption, vs the baseline."""
        if self.baseline.accuracy == 0.0:
            return 0.0
        return (
            self.baseline.accuracy - self.defended.accuracy
        ) / self.baseline.accuracy

    def as_row(self) -> tuple:
        """Table row: (defense, residual change, defended acc, undefended acc)."""
        return (
            self.defense_name,
            f"{self.residual_threshold_change:+.2%}",
            f"{self.defended.accuracy:.4f}",
            f"{self.undefended.accuracy:.4f}",
        )


class DefenseAccuracyEvaluator:
    """Evaluates threshold defenses by their residual accuracy impact.

    Parameters
    ----------
    pipeline:
        The classification pipeline (campaign pipeline protocol).
    executor:
        Optional shared :class:`SweepExecutor`; results (in particular the
        baseline and the undefended attack) are cached across calls.
    workers:
        When ``executor`` is not given, build one with this many workers.
    """

    def __init__(
        self,
        pipeline,
        *,
        executor: Optional[SweepExecutor] = None,
        workers: int = 0,
    ) -> None:
        self.pipeline = pipeline
        self.executor = executor or SweepExecutor(pipeline, workers=workers)

    def evaluate_threshold_defenses(
        self,
        residual_changes: Mapping[str, float],
        *,
        undefended_change: float = -0.2,
    ) -> List[DefendedAccuracyPoint]:
        """Accuracy of each defense's residual corruption vs the raw attack.

        Parameters
        ----------
        residual_changes:
            Mapping from defense name to the signed threshold change that
            survives that defense (e.g. ``{"32x sizing": -0.0523}`` from
            ``SizingDefense.residual_threshold_scale(...) - 1``).
        undefended_change:
            The threshold change of the unmitigated attack (paper: −20 %).
        """
        names = list(residual_changes)
        attacks = [None, Attack4BothLayerThreshold(threshold_change=undefended_change)]
        attacks += [
            Attack4BothLayerThreshold(
                threshold_change=float(residual_changes[name])
            )
            for name in names
        ]
        results = self.executor.map(attacks)
        baseline, undefended = results[0], results[1]
        return [
            DefendedAccuracyPoint(
                defense_name=name,
                residual_threshold_change=float(residual_changes[name]),
                defended=defended,
                undefended=undefended,
                baseline=baseline,
            )
            for name, defended in zip(names, results[2:])
        ]
