"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_positive,
    check_probability,
    check_range,
    check_same_length,
)


def test_check_positive_accepts_positive():
    assert check_positive(3.5, "x") == 3.5


def test_check_positive_rejects_zero_when_strict():
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive(0, "x")


def test_check_positive_allows_zero_when_not_strict():
    assert check_positive(0, "x", strict=False) == 0.0


def test_check_positive_rejects_negative_non_strict():
    with pytest.raises(ValueError):
        check_positive(-1, "x", strict=False)


def test_check_range_accepts_bounds():
    assert check_range(0.8, "vdd", 0.8, 1.2) == 0.8
    assert check_range(1.2, "vdd", 0.8, 1.2) == 1.2


def test_check_range_rejects_outside():
    with pytest.raises(ValueError, match="vdd must be in"):
        check_range(1.3, "vdd", 0.8, 1.2)


def test_check_fraction_bounds():
    assert check_fraction(0.0, "f") == 0.0
    assert check_fraction(1.0, "f") == 1.0
    with pytest.raises(ValueError):
        check_fraction(1.01, "f")


def test_check_probability_rejects_negative():
    with pytest.raises(ValueError, match="probability"):
        check_probability(-0.1, "p")


def test_check_in_choices_accepts_member():
    assert check_in_choices("a", "mode", ("a", "b")) == "a"


def test_check_in_choices_rejects_non_member():
    with pytest.raises(ValueError, match="mode must be one of"):
        check_in_choices("c", "mode", ("a", "b"))


def test_check_same_length_passes_and_fails():
    check_same_length("a", [1, 2], "b", [3, 4])
    with pytest.raises(ValueError, match="same length"):
        check_same_length("a", [1], "b", [1, 2])
