"""Quickstart: train the Diehl&Cook SNN and attack its power supply.

Reproduces Fig. 9a (the black-box global-VDD attack) through the figure
registry: the attack-free baseline plus the under/over-volted supply points,
then prints the paper-style table.

Figure reproduced
    Fig. 9a (Attack 5) at the reduced supply grid, against its baseline.
Expected runtime
    ~1-2 min on a laptop (smoke scale; three training runs).

Usage::

    python examples/quickstart.py
    REPRO_SCALE=tiny python examples/quickstart.py   # seconds, toy accuracy
"""

from repro.core import ExperimentConfig
from repro.figures import FigureContext, get_figure


def main() -> None:
    # ``smoke`` keeps the example fast; export REPRO_SCALE=benchmark (or
    # paper) for the accuracy regime reported in the figures.
    config = ExperimentConfig.from_environment(default="smoke")
    print(f"Training the Diehl&Cook SNN ({config.scale_name} scale)...")

    with FigureContext(config) as context:
        result = get_figure("fig9a").run(context)

    print(result.render())
    print()
    degradation = result.metrics["relative_degradation_at_0v8"]
    print(
        f"The shared-supply fault at 0.8 V removed {degradation:.1%} of the "
        f"baseline accuracy ({result.metrics['baseline_accuracy']:.3f} -> "
        f"{result.metrics['accuracy_at_0v8']:.3f})."
    )
    print(
        "Persist this run with: python -m repro run fig9a --scale "
        f"{config.scale_name} --out results/"
    )


if __name__ == "__main__":
    main()
