"""SI unit handling for the analog simulator.

Component values throughout the circuit library can be given either as plain
floats (in base SI units) or as SPICE-style strings with suffixes, e.g.
``"200n"`` (200 nA), ``"1p"`` (1 pF), ``"25ns"`` (25 ns), ``"10k"`` (10 kΩ).
"""

from __future__ import annotations

import re
from typing import Union

#: SPICE-style magnitude suffixes.  ``meg`` must be matched before ``m``.
_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "µ": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

#: Unit names that may trail a suffix and are ignored ("25ns" -> 25e-9).
_UNIT_NAMES = ("ohm", "ohms", "v", "a", "s", "f", "h", "hz", "w")

_VALUE_RE = re.compile(
    r"^\s*([+-]?\d+\.?\d*(?:[eE][+-]?\d+)?)\s*([a-zµ]*)\s*$",
)

ValueLike = Union[int, float, str]


def parse_value(value: ValueLike) -> float:
    """Parse a numeric or SPICE-style string value into a float (SI units).

    Examples
    --------
    >>> parse_value("200n")
    2e-07
    >>> parse_value("1.5k")
    1500.0
    >>> parse_value(0.5)
    0.5
    """
    if isinstance(value, (int, float)):
        return float(value)
    match = _VALUE_RE.match(value.lower())
    if not match:
        raise ValueError(f"cannot parse component value {value!r}")
    number, tail = match.groups()
    base = float(number)
    if not tail:
        return base
    # SPICE precedence: the magnitude suffix is decided by the leading
    # characters of the tail ("meg" before "m"); anything after it is an
    # ignored unit name ("25ns" -> nano, "10kohm" -> kilo, "20f" -> femto).
    if tail.startswith("meg"):
        return base * _SUFFIXES["meg"]
    if tail[0] in _SUFFIXES:
        return base * _SUFFIXES[tail[0]]
    # No magnitude suffix: accept a bare unit name ("5v", "3hz").
    if tail in _UNIT_NAMES:
        return base
    raise ValueError(f"unknown unit suffix {tail!r} in value {value!r}")


def si_format(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix.

    >>> si_format(2e-7, "A")
    '200 nA'
    """
    if value == 0:
        return f"0 {unit}".strip()
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{precision}g}"
            return f"{text} {prefix}{unit}".strip()
    scaled = value / 1e-15
    return f"{scaled:.{precision}g} f{unit}".strip()


# Physical constants used by the device models.
BOLTZMANN = 1.380649e-23
"""Boltzmann constant (J/K)."""

ELEMENTARY_CHARGE = 1.602176634e-19
"""Elementary charge (C)."""

ROOM_TEMPERATURE_K = 300.15
"""Default simulation temperature (27 °C in Kelvin)."""


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """kT/q at the given temperature (volts)."""
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE
