"""Attack sweep drivers that regenerate the paper's attack figures.

The campaign object wraps a classification pipeline (anything exposing
``run(attack)`` and ``run_baseline()``) and sweeps attack parameters:

* :meth:`AttackCampaign.sweep_attack1_theta` — Fig. 7b.
* :meth:`AttackCampaign.sweep_layer_threshold` — Fig. 8a (excitatory) and
  Fig. 8b (inhibitory).
* :meth:`AttackCampaign.sweep_both_layers` — Fig. 8c.
* :meth:`AttackCampaign.sweep_global_vdd` — Fig. 9a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.attacks import (
    Attack1InputSpikeCorruption,
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    Attack4BothLayerThreshold,
    Attack5GlobalSupply,
    PowerAttack,
)
from repro.attacks.injector import FaultSiteSelection
from repro.core.results import AttackGridResult, ExperimentResult
from repro.neurons.calibration import VddToParameterMap
from repro.snn.models import EXCITATORY_LAYER, INHIBITORY_LAYER
from repro.utils.validation import check_in_choices

#: Default parameter grids, matching the paper's figures.
DEFAULT_THRESHOLD_CHANGES = (-0.2, -0.1, 0.1, 0.2)
DEFAULT_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_THETA_CHANGES = (-0.2, -0.1, 0.0, 0.1, 0.2)
DEFAULT_VDD_VALUES = (0.8, 0.9, 1.0, 1.1, 1.2)


@dataclass
class AttackOutcome:
    """One attack configuration together with its measured result."""

    attack: PowerAttack
    result: ExperimentResult

    @property
    def accuracy(self) -> float:
        """Measured accuracy under this attack."""
        return self.result.accuracy


@dataclass
class AttackSweep:
    """A one-dimensional sweep (parameter value → outcome)."""

    name: str
    parameter: str
    values: np.ndarray
    outcomes: List[AttackOutcome] = field(default_factory=list)
    baseline_accuracy: float = 0.0

    def accuracies(self) -> np.ndarray:
        """Accuracy per swept value."""
        return np.array([outcome.accuracy for outcome in self.outcomes])

    def accuracy_changes(self) -> np.ndarray:
        """Accuracy minus baseline per swept value."""
        return self.accuracies() - self.baseline_accuracy

    def worst_case(self) -> AttackOutcome:
        """The most damaging configuration."""
        return min(self.outcomes, key=lambda outcome: outcome.accuracy)


class AttackCampaign:
    """Runs families of attacks against one classification pipeline."""

    def __init__(self, pipeline) -> None:
        self.pipeline = pipeline

    # --------------------------------------------------------------- baselines
    @property
    def baseline_accuracy(self) -> float:
        """Accuracy of the attack-free run."""
        return self.pipeline.run_baseline().accuracy

    # ------------------------------------------------------------ Fig. 7b
    def sweep_attack1_theta(
        self,
        theta_changes: Sequence[float] = DEFAULT_THETA_CHANGES,
    ) -> AttackSweep:
        """Attack 1: accuracy vs per-spike membrane-charge (theta) change."""
        sweep = AttackSweep(
            name="attack1_theta_sweep",
            parameter="theta_change",
            values=np.asarray(theta_changes, dtype=float),
            baseline_accuracy=self.baseline_accuracy,
        )
        for change in theta_changes:
            if abs(change) < 1e-12:
                result = self.pipeline.run_baseline()
                attack: PowerAttack = Attack1InputSpikeCorruption(theta_change=0.0)
            else:
                attack = Attack1InputSpikeCorruption(theta_change=float(change))
                result = self.pipeline.run(attack)
            sweep.outcomes.append(AttackOutcome(attack=attack, result=result))
        return sweep

    # ------------------------------------------------------- Fig. 8a / Fig. 8b
    def sweep_layer_threshold(
        self,
        layer: str,
        threshold_changes: Sequence[float] = DEFAULT_THRESHOLD_CHANGES,
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        *,
        selection: FaultSiteSelection = FaultSiteSelection.RANDOM,
    ) -> AttackGridResult:
        """Attack 2 or 3: accuracy vs threshold change x fraction of the layer."""
        check_in_choices(layer, "layer", (EXCITATORY_LAYER, INHIBITORY_LAYER))
        attack_cls = (
            Attack2ExcitatoryThreshold
            if layer == EXCITATORY_LAYER
            else Attack3InhibitoryThreshold
        )
        baseline = self.baseline_accuracy
        accuracies = np.zeros((len(threshold_changes), len(fractions)))
        for i, change in enumerate(threshold_changes):
            for j, fraction in enumerate(fractions):
                if fraction == 0.0:
                    accuracies[i, j] = baseline
                    continue
                attack = attack_cls(
                    threshold_change=float(change),
                    fraction=float(fraction),
                    selection=selection,
                )
                accuracies[i, j] = self.pipeline.run(attack).accuracy
        return AttackGridResult(
            name=f"{layer}_threshold_sweep",
            row_parameter="threshold_change",
            column_parameter="fraction_affected",
            row_values=np.asarray(threshold_changes, dtype=float),
            column_values=np.asarray(fractions, dtype=float),
            accuracies=accuracies,
            baseline_accuracy=baseline,
            scale_name=self.pipeline.config.scale_name,
            metadata={"layer": layer, "selection": selection.value},
        )

    # ------------------------------------------------------------------ Fig. 8c
    def sweep_both_layers(
        self,
        threshold_changes: Sequence[float] = DEFAULT_THRESHOLD_CHANGES,
    ) -> AttackSweep:
        """Attack 4: accuracy vs threshold change applied to both layers."""
        sweep = AttackSweep(
            name="attack4_both_layers",
            parameter="threshold_change",
            values=np.asarray(threshold_changes, dtype=float),
            baseline_accuracy=self.baseline_accuracy,
        )
        for change in threshold_changes:
            attack = Attack4BothLayerThreshold(threshold_change=float(change))
            result = self.pipeline.run(attack)
            sweep.outcomes.append(AttackOutcome(attack=attack, result=result))
        return sweep

    # ------------------------------------------------------------------ Fig. 9a
    def sweep_global_vdd(
        self,
        vdd_values: Sequence[float] = DEFAULT_VDD_VALUES,
        *,
        neuron_type: str = "if_amplifier",
        parameter_map: Optional[VddToParameterMap] = None,
    ) -> AttackSweep:
        """Attack 5: accuracy vs the shared supply voltage (black box)."""
        sweep = AttackSweep(
            name="attack5_global_vdd",
            parameter="vdd",
            values=np.asarray(vdd_values, dtype=float),
            baseline_accuracy=self.baseline_accuracy,
        )
        for vdd in vdd_values:
            attack = Attack5GlobalSupply(
                vdd=float(vdd), neuron_type=neuron_type, parameter_map=parameter_map
            )
            if abs(float(vdd) - attack.threat_model.nominal_vdd) < 1e-9:
                result = self.pipeline.run_baseline()
            else:
                result = self.pipeline.run(attack)
            sweep.outcomes.append(AttackOutcome(attack=attack, result=result))
        return sweep
