"""Fig. 8a-8c — Attacks 2-4: accuracy vs membrane-threshold corruption.

* Fig. 8a: excitatory-layer threshold change × fraction affected
  (paper: worst −7.32 % at −20 %, 100 % of the layer — relatively low impact).
* Fig. 8b: inhibitory-layer threshold change × fraction affected
  (paper: worst −84.52 % — catastrophic).
* Fig. 8c: both layers fully affected (paper: worst −85.65 %).

Thin wrapper over the ``fig8`` registry entry, which runs all three panels
through the shared executor (``python -m repro run fig8``); the session
cache means the three tests below train each attack configuration once.
Run with ``REPRO_SCALE=paper`` for the full published grids.
"""

from repro.figures import get_figure


def test_fig8a_attack2_excitatory_threshold(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig8").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    # Attacking the excitatory layer alone has limited impact compared to the
    # inhibitory-layer attack (paper: -7.3 % worst case vs -84.5 %).
    assert result.metrics["worst_relative_degradation_excitatory"] < 0.5


def test_fig8b_attack3_inhibitory_threshold(figure_context, baseline_accuracy):
    result = get_figure("fig8").run(figure_context)
    # The paper's headline: corrupting the inhibitory layer collapses accuracy.
    assert result.metrics["worst_relative_degradation_inhibitory"] > 0.6
    # Leaving the layer untouched (fraction 0) must match the baseline.
    assert result.arrays["fractions"][0] == 0.0
    assert result.arrays["accuracies_inhibitory"][0, 0] == baseline_accuracy


def test_fig8c_attack4_both_layers(figure_context):
    result = get_figure("fig8").run(figure_context)
    assert result.metrics["worst_relative_degradation_both"] > 0.6
