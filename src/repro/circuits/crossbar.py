"""Parameterised crossbar SNN layer netlist (paper Fig. 8 regime).

The paper's threat model targets full crossbar layers — hundreds of
resistively-coupled neurons sharing input rows — not the single-neuron
testbenches of Figs. 2-5.  This module builds that shape as one flat MNA
netlist so the large-N engine tiers (:mod:`repro.analog.sparse`, the
``engine="auto"`` size heuristic) can be exercised and benchmarked on the
circuit class they exist for:

* ``n_rows`` input rows, each driven by a staggered voltage pulse train
  (the spike raster of the previous layer);
* an ``n_columns`` x ``n_rows`` crossbar of seeded log-uniform resistances
  (the programmed weights) injecting row activity into every column;
* per column a leaky membrane (capacitor + leak resistor) and a
  voltage-controlled reset switch that discharges the membrane once it
  crosses a shared threshold rail — a relaxation oscillation whose reset
  events are the column's output spikes.

The system size is ``2 * n_rows + n_columns + 2`` unknowns and the stamp
pattern is a few percent dense (each column couples to its rows only), so
dense LU cost grows cubically while the circuit's actual structure grows
linearly — exactly the dense-vs-sparse crossover measured in
``benchmarks/test_engine_hotpath.py`` at N = 128 / 512 / 1000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analog import Circuit, PulseSource, transient_analysis
from repro.analog.units import ValueLike, parse_value
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive

#: Column counts of the paper-scale crossbar study (Fig. 8 regime): below,
#: at and above the dense-to-sparse routing threshold of ``engine="auto"``.
CROSSBAR_SCALING_SIZES = (128, 512, 1000)


@dataclass
class CrossbarLayerDesign:
    """Component values of one crossbar SNN layer.

    Attributes
    ----------
    n_columns:
        Number of output neurons (crossbar columns).
    n_rows:
        Number of input rows (previous-layer axons).
    vdd:
        Supply rail; also the high level of the row pulse drivers.
    membrane_capacitance:
        Per-column membrane capacitor to ground.
    leak_resistance:
        Per-column leak resistor to ground.
    weight_r_min, weight_r_max:
        Bounds of the log-uniform crossbar (weight) resistances.
    threshold_fraction:
        Firing threshold as a fraction of ``vdd`` (shared threshold rail).
    reset_offset:
        How far above the threshold rail the reset switch engages.  The
        switch conduction is smooth (finite ``transition_width``), so the
        offset guarantees the membrane *crosses* the rail — the spike the
        metrics count — before the reset clamps it.
    reset_resistance:
        On-resistance of the reset switch discharging the membrane.
    input_period, input_width:
        Period and high time of the row pulse drivers; row ``i`` is delayed
        by ``i / n_rows`` of a period so the layer sees a staggered raster.
    seed:
        Seed of the crossbar weight draw (same seed, same netlist).
    """

    n_columns: int = 128
    n_rows: int = 16
    vdd: float = 1.0
    membrane_capacitance: float = 200e-15
    leak_resistance: float = 5e6
    weight_r_min: float = 100e3
    weight_r_max: float = 2e6
    threshold_fraction: float = 0.45
    reset_offset: float = 0.05
    reset_resistance: float = 20e3
    input_period: float = 100e-9
    input_width: float = 50e-9
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.n_columns < 1 or self.n_rows < 1:
            raise ValueError("crossbar needs at least one row and one column")
        check_positive(self.vdd, "vdd")
        check_positive(self.membrane_capacitance, "membrane_capacitance")
        check_positive(self.leak_resistance, "leak_resistance")
        check_positive(self.weight_r_min, "weight_r_min")
        check_positive(self.weight_r_max, "weight_r_max")
        if not 0.0 < self.threshold_fraction < 1.0:
            raise ValueError("threshold_fraction must be in (0, 1)")

    @property
    def system_size(self) -> int:
        """MNA unknown count: row nodes + row branches + columns + threshold."""
        return 2 * self.n_rows + self.n_columns + 2

    def weight_resistances(self) -> np.ndarray:
        """The seeded ``(n_columns, n_rows)`` crossbar resistance draw."""
        rng = RandomState(self.seed, name="crossbar").generator
        log_r = rng.uniform(
            np.log(self.weight_r_min),
            np.log(self.weight_r_max),
            size=(self.n_columns, self.n_rows),
        )
        return np.exp(log_r)


def column_node(j: int) -> str:
    """Membrane node name of column ``j``."""
    return f"col{j}"


def build_crossbar_layer(design: Optional[CrossbarLayerDesign] = None) -> Circuit:
    """Build the crossbar layer netlist.

    Nodes: ``row{i}`` (pulse-driven input rows), ``col{j}`` (column
    membranes, see :func:`column_node`) and ``vth`` (shared threshold
    rail).  Every device is a compiled type, so the circuit is eligible
    for all engine tiers; at default sizing ``n_columns >= 254`` crosses
    :data:`repro.analog.compiled.SPARSE_SIZE_THRESHOLD` and
    ``engine="auto"`` routes the netlist to the sparse tier.
    """
    design = design or CrossbarLayerDesign()
    circuit = Circuit(f"crossbar_{design.n_columns}x{design.n_rows}")
    weights = design.weight_resistances()

    circuit.add_voltage_source(
        "VTH", "vth", "0", design.threshold_fraction * design.vdd
    )
    for i in range(design.n_rows):
        circuit.add_voltage_source(
            f"VROW{i}",
            f"row{i}",
            "0",
            PulseSource(
                0.0,
                design.vdd,
                delay=design.input_period * i / design.n_rows,
                rise=1e-9,
                fall=1e-9,
                width=design.input_width,
                period=design.input_period,
            ),
        )
    for j in range(design.n_columns):
        col = column_node(j)
        circuit.add_capacitor(f"CMEM{j}", col, "0", design.membrane_capacitance)
        circuit.add_resistor(f"RLEAK{j}", col, "0", design.leak_resistance)
        # Reset switch: conducts once the membrane exceeds the threshold
        # rail, discharging CMEM back below it (relaxation oscillation).
        circuit.add_switch(
            f"SRST{j}",
            col,
            "0",
            col,
            "vth",
            threshold=design.reset_offset,
            on_resistance=design.reset_resistance,
            transition_width=0.02,
        )
        for i in range(design.n_rows):
            circuit.add_resistor(f"RW{j}_{i}", f"row{i}", col, weights[j, i])
    return circuit


def simulate_crossbar_layer(
    design: Optional[CrossbarLayerDesign] = None,
    *,
    stop_time: ValueLike = "1u",
    time_step: ValueLike = "2n",
    record_columns: Optional[Sequence[int]] = None,
    adaptive: bool = False,
    engine: str = "auto",
):
    """Transient simulation of the crossbar layer.

    Records the membrane voltage of ``record_columns`` (default: every
    column) and returns the
    :class:`~repro.analog.transient.TransientResult`.  ``engine`` accepts
    every :func:`repro.analog.compiled.make_system` value; the default
    ``"auto"`` picks the sparse tier at paper-scale column counts.
    """
    design = design or CrossbarLayerDesign()
    circuit = build_crossbar_layer(design)
    if record_columns is None:
        record_columns = range(design.n_columns)
    return transient_analysis(
        circuit,
        stop_time=stop_time,
        time_step=time_step,
        use_initial_conditions=True,
        record_nodes=[column_node(j) for j in record_columns],
        adaptive=adaptive,
        engine=engine,
    )


def crossbar_spike_counts(
    result,
    design: CrossbarLayerDesign,
    columns: Sequence[int],
    *,
    min_separation: ValueLike = "20n",
) -> np.ndarray:
    """Per-column spike counts from a crossbar transient.

    A spike is a rising crossing of the firing threshold (the membrane is
    reset through the switch right after, so each relaxation cycle counts
    once).  Used by the parity suite to compare engines on the metric the
    paper reports, not just raw traces.
    """
    threshold = design.threshold_fraction * design.vdd
    separation = parse_value(min_separation)
    return np.array(
        [
            len(
                result.waveform(column_node(j)).detect_spikes(
                    threshold, min_separation=separation
                )
            )
            for j in columns
        ]
    )
