"""Fig. 10c & Sec. V overheads — dummy-neuron VFI detection and defense costs.

Fig. 10c: the dummy neuron's output spike count deviates by ≥10 % from the
calibration count when the local supply is glitched by ±20 %, for both
neuron flavours.

The overhead table reproduces the paper's reported defense costs (robust
driver 3 % power, up-sized Axon-Hillock 25 % power, comparator 11 % power,
bandgap 65 % area at 200 neurons, dummy neuron ~1 %).
"""

from repro.defenses import DummyNeuronDetector, overhead_report
from repro.utils.tables import format_table

VDD_VALUES = (0.8, 0.9, 1.0, 1.1, 1.2)


def test_fig10c_dummy_neuron_detection(benchmark):
    def run():
        rows = []
        for neuron_type in ("axon_hillock", "if_amplifier"):
            detector = DummyNeuronDetector(neuron_type=neuron_type)
            for outcome in detector.sweep(VDD_VALUES):
                rows.append(
                    (neuron_type, outcome.vdd, outcome.spike_count,
                     outcome.deviation, outcome.detected)
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            ["neuron", "VDD (V)", "spike count", "deviation", "detected"],
            rows,
            title="Fig. 10c — dummy-neuron output spikes vs VDD",
        )
    )
    # The +/-20 % supply faults must be flagged for both neuron flavours, and
    # the nominal supply must never be flagged.
    for neuron_type in ("axon_hillock", "if_amplifier"):
        subset = {row[1]: row for row in rows if row[0] == neuron_type}
        assert subset[0.8][4] and subset[1.2][4]
        assert not subset[1.0][4]


def test_defense_overheads(benchmark):
    report = benchmark.pedantic(overhead_report, args=(200,), rounds=1, iterations=1)
    print(
        format_table(
            ["defense", "power overhead", "area overhead", "protects"],
            [overhead.as_row() for overhead in report],
            title="Defense overheads (200-neuron SNN, paper Sec. V)",
        )
    )
    by_name = {overhead.name: overhead for overhead in report}
    assert by_name["robust_current_driver"].power_overhead == 0.03
    assert by_name["axon_hillock_sizing"].power_overhead == 0.25
    assert by_name["comparator_neuron"].power_overhead == 0.11
    assert by_name["bandgap_threshold"].area_overhead == 0.65
    assert by_name["dummy_neuron_detector"].power_overhead <= 0.01
