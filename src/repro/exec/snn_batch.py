"""Lockstep dispatch of pipeline-tier sweeps onto the batched SNN engine.

The circuit tier batches topology-sharing netlists
(:class:`~repro.exec.circuits.CircuitSweepDispatcher`); the pipeline tier
has the same trick one level up: a sweep's grid points are *parameter
variants of one Diehl&Cook topology* (threshold scales, input gains), so a
serial batch of ``pipeline.run(attack)`` calls can instead train and
evaluate every point in one lockstep pass through
:meth:`~repro.core.pipeline.ClassificationPipeline.run_batch`.

:class:`PipelineBatchDispatcher` decides the route for the serial path of
:class:`~repro.exec.executor.SweepExecutor`: batched when the pipeline
exposes ``run_batch`` and resolves to the batched engine, per-run serial
otherwise (including a graceful fallback when the lockstep engine rejects
the network).  Parallel executors keep their per-task process fan-out —
each worker still runs the batched *inference* passes internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.snn.batched import BatchedNetworkError


@dataclass
class PipelineBatchDispatcher:
    """Routes a serial batch of attack evaluations through ``run_batch``.

    Parameters
    ----------
    batch:
        ``True`` (default) batches whenever the pipeline supports it;
        ``False`` always takes the per-run serial path (reference
        behaviour, useful for parity debugging).
    min_batch:
        Smallest batch worth a lockstep pass (a single pending task gains
        nothing from variant batching).

    The ``batched_sweeps`` / ``serial_sweeps`` counters record which route
    each batch actually took; ``fallbacks`` counts lockstep passes the
    engine rejected at build time (the batch then re-ran serially).
    """

    batch: bool = True
    min_batch: int = 2
    batched_sweeps: int = 0
    serial_sweeps: int = 0
    fallbacks: int = 0
    _last_route: str = field(default="", repr=False)

    def supports(self, pipeline, n_tasks: int) -> bool:
        """Whether this batch should take the lockstep route."""
        return (
            self.batch
            and n_tasks >= self.min_batch
            and callable(getattr(pipeline, "run_batch", None))
            and getattr(pipeline, "resolved_engine", "scalar") == "batched"
        )

    def run(self, pipeline, attacks: Sequence) -> Optional[List]:
        """One lockstep pass over ``attacks`` (``None`` = baseline).

        Returns the aligned results, or ``None`` when the batched engine
        rejected the network — the caller then falls back to per-run serial
        execution, which is always available.
        """
        try:
            results = pipeline.run_batch(list(attacks))
        except BatchedNetworkError:
            self.fallbacks += 1
            self._last_route = "serial"
            return None
        self.batched_sweeps += 1
        self._last_route = "batched"
        return results

    def note_serial(self) -> None:
        """Record a batch that took the per-run serial route."""
        self.serial_sweeps += 1
        self._last_route = "serial"
