"""Fig. 9a — Attack 5: black-box manipulation of the shared supply.

The adversary only picks the supply voltage; the induced theta and threshold
corruption come from the circuit-calibrated VDD map.  The paper reports a
worst-case accuracy degradation of −84.93 %.
"""

from repro.attacks import AttackCampaign
from repro.core.reporting import format_sweep_series

VDD_VALUES = (0.8, 1.0, 1.2)


def test_fig9a_attack5_global_vdd(benchmark, pipeline, baseline_accuracy):
    campaign = AttackCampaign(pipeline)
    sweep = benchmark.pedantic(
        campaign.sweep_global_vdd, args=(VDD_VALUES,), rounds=1, iterations=1
    )
    print(
        format_sweep_series(
            "VDD (V)",
            sweep.values,
            sweep.accuracies(),
            baseline_accuracy=baseline_accuracy,
            title="Fig. 9a — Attack 5 (whole-system supply fault)",
        )
    )
    accuracies = dict(zip([float(v) for v in sweep.values], sweep.accuracies()))
    # Nominal supply point is exactly the baseline.
    assert accuracies[1.0] == baseline_accuracy
    # Under-volting collapses accuracy (paper: -84.93 % relative).
    assert (baseline_accuracy - accuracies[0.8]) / baseline_accuracy > 0.6
