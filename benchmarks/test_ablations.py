"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Behavioural vs MNA calibration — the VDD → (theta, threshold) maps derived
  from the fast behavioural models and from the circuit netlists agree.
* Threshold-corruption convention — the paper-reproducing "signed_value"
  convention vs the physically-motivated "rest_gap" convention.
* Fault locality — random vs contiguous (laser-spot) selection of the
  attacked neurons.
"""

from repro.attacks import Attack3InhibitoryThreshold, FaultSiteSelection
from repro.core import ClassificationPipeline
from repro.neurons.calibration import behavioural_parameter_map, circuit_parameter_map
from repro.snn.models import DiehlAndCookParameters
from repro.utils.tables import format_table


def test_ablation_behavioural_vs_mna_calibration(benchmark):
    def run():
        behavioural = behavioural_parameter_map()
        circuit = circuit_parameter_map(vdd_values=(0.8, 0.9, 1.0, 1.1, 1.2))
        rows = []
        for vdd in (0.8, 0.9, 1.1, 1.2):
            rows.append(
                (
                    vdd,
                    behavioural.theta_scale(vdd),
                    circuit.theta_scale(vdd),
                    behavioural.threshold_scale(vdd, "axon_hillock"),
                    circuit.threshold_scale(vdd, "axon_hillock"),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            ["VDD", "theta (behavioural)", "theta (MNA)", "AH thr (behavioural)", "AH thr (MNA)"],
            rows,
            title="Ablation — behavioural vs MNA circuit calibration",
        )
    )
    for row in rows:
        assert abs(row[1] - row[2]) < 0.08
        assert abs(row[3] - row[4]) < 0.05


def test_ablation_threshold_convention(benchmark, pipeline, baseline_accuracy):
    """Compare the two threshold-corruption conventions under Attack 3 (-20 %)."""

    def run():
        signed = pipeline.run(
            Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0)
        )
        gap_config = pipeline.config.with_overrides(
            network=DiehlAndCookParameters(norm=140.0, threshold_convention="rest_gap"),
        )
        gap_pipeline = ClassificationPipeline(gap_config)
        gap_baseline = gap_pipeline.run_baseline()
        gap = gap_pipeline.run(
            Attack3InhibitoryThreshold(threshold_change=0.2, fraction=1.0)
        )
        return signed, gap, gap_baseline

    signed, gap, gap_baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            ["convention", "baseline", "attacked accuracy", "relative degradation"],
            [
                ("signed_value (paper)", baseline_accuracy, signed.accuracy,
                 f"{signed.relative_degradation:.1%}"),
                ("rest_gap (physical)", gap_baseline.accuracy, gap.accuracy,
                 f"{gap.relative_degradation:.1%}"),
            ],
            title="Ablation — threshold-corruption convention (Attack 3, +20%)",
        )
    )
    # The paper's catastrophic degradation only appears under the signed-value
    # convention; the physically-motivated gap scaling barely moves accuracy.
    assert signed.relative_degradation > 0.4
    assert gap.relative_degradation < 0.25


def test_ablation_fault_locality(benchmark, pipeline, baseline_accuracy):
    """Random vs contiguous selection of the attacked half of the layer."""

    def run():
        random_sites = pipeline.run(
            Attack3InhibitoryThreshold(
                threshold_change=0.2, fraction=0.5, selection=FaultSiteSelection.RANDOM
            )
        )
        contiguous_sites = pipeline.run(
            Attack3InhibitoryThreshold(
                threshold_change=0.2, fraction=0.5, selection=FaultSiteSelection.CONTIGUOUS
            )
        )
        return random_sites, contiguous_sites

    random_sites, contiguous_sites = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            ["selection", "accuracy", "change vs baseline"],
            [
                ("random", random_sites.accuracy,
                 f"{random_sites.accuracy - baseline_accuracy:+.3f}"),
                ("contiguous (laser spot)", contiguous_sites.accuracy,
                 f"{contiguous_sites.accuracy - baseline_accuracy:+.3f}"),
            ],
            title="Ablation — fault-site locality (Attack 3, 50% of the layer)",
        )
    )
    # Both localities damage accuracy; the grouping itself is secondary.
    assert random_sites.accuracy < baseline_accuracy
    assert contiguous_sites.accuracy < baseline_accuracy
