"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog import Circuit, dc_operating_point
from repro.analog.units import parse_value, si_format
from repro.analog.waveform import Waveform
from repro.attacks import FaultInjector
from repro.neurons import AxonHillockModel, CurrentDriverModel, IFAmplifierModel
from repro.snn.encoding import poisson_encode
from repro.snn.evaluation import all_activity_prediction, assign_labels, classification_accuracy
from repro.snn.models import DiehlAndCook2015, DiehlAndCookParameters, EXCITATORY_LAYER
from repro.utils.rng import RandomState
from repro.utils.tables import format_table


# --------------------------------------------------------------------- analog
@given(
    mantissa=st.floats(min_value=0.001, max_value=999.0, allow_nan=False),
    suffix=st.sampled_from(["f", "p", "n", "u", "m", "", "k", "meg", "g"]),
)
def test_parse_value_applies_magnitude(mantissa, suffix):
    scale = {"f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6, "m": 1e-3,
             "": 1.0, "k": 1e3, "meg": 1e6, "g": 1e9}[suffix]
    assert parse_value(f"{mantissa}{suffix}") == pytest.approx(mantissa * scale, rel=1e-9)


@given(value=st.floats(min_value=1e-14, max_value=1e12, allow_nan=False))
def test_si_format_always_returns_text(value):
    text = si_format(value, "V")
    assert isinstance(text, str) and len(text) > 0


@given(
    r_top=st.floats(min_value=10.0, max_value=1e6),
    r_bottom=st.floats(min_value=10.0, max_value=1e6),
    supply=st.floats(min_value=0.1, max_value=5.0),
)
@settings(max_examples=25, deadline=None)
def test_voltage_divider_matches_analytic_solution(r_top, r_bottom, supply):
    circuit = Circuit("divider")
    circuit.add_voltage_source("V1", "in", "0", supply)
    circuit.add_resistor("R1", "in", "out", r_top)
    circuit.add_resistor("R2", "out", "0", r_bottom)
    op = dc_operating_point(circuit)
    expected = supply * r_bottom / (r_top + r_bottom)
    assert op["out"] == pytest.approx(expected, rel=1e-6)


@given(
    level=st.floats(min_value=0.05, max_value=0.95),
    n_periods=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_waveform_crossings_alternate_and_count_periods(level, n_periods):
    time = np.linspace(0, n_periods, n_periods * 200, endpoint=False)
    values = ((time % 1.0) < 0.5).astype(float)
    wave = Waveform(time, values)
    rising = wave.threshold_crossings(level, direction="rising")
    falling = wave.threshold_crossings(level, direction="falling")
    assert len(rising) == n_periods - 1  # the waveform starts already high
    assert abs(len(rising) - len(falling)) <= 1


# ------------------------------------------------------------------ neurons
@given(vdd=st.floats(min_value=0.8, max_value=1.2))
@settings(max_examples=30, deadline=None)
def test_driver_amplitude_is_monotone_and_positive(vdd):
    driver = CurrentDriverModel()
    assert driver.amplitude(vdd) > 0
    assert driver.amplitude(vdd + 0.01) > driver.amplitude(vdd)


@given(
    vdd=st.floats(min_value=0.8, max_value=1.2),
    amplitude=st.floats(min_value=1e-7, max_value=4e-7),
)
@settings(max_examples=30, deadline=None)
def test_time_to_spike_decreases_with_drive_for_both_neurons(vdd, amplitude):
    for model in (AxonHillockModel(), IFAmplifierModel()):
        slower = model.time_to_first_spike(amplitude, vdd=vdd)
        faster = model.time_to_first_spike(amplitude * 1.2, vdd=vdd)
        assert faster < slower


# ---------------------------------------------------------------------- rng
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_random_state_reproducibility(seed):
    assert np.array_equal(RandomState(seed).random(8), RandomState(seed).random(8))


# ---------------------------------------------------------------------- snn
@given(intensity=st.floats(min_value=0.0, max_value=255.0))
@settings(max_examples=20, deadline=None)
def test_poisson_encoding_rate_bounded_by_max_rate(intensity):
    spikes = poisson_encode(np.full(16, intensity), time_steps=300, max_rate=100.0, rng=0)
    rate_hz = spikes.mean() / 1e-3
    assert rate_hz <= 100.0 + 1e-9 or rate_hz == pytest.approx(100.0, rel=0.25)


@given(
    n_examples=st.integers(min_value=4, max_value=30),
    n_neurons=st.integers(min_value=3, max_value=20),
    n_classes=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_assignment_and_prediction_invariants(n_examples, n_neurons, n_classes):
    rng = np.random.default_rng(0)
    counts = rng.poisson(3.0, (n_examples, n_neurons)).astype(float)
    labels = rng.integers(0, n_classes, n_examples)
    assignments, rates = assign_labels(counts, labels, n_classes)
    assert assignments.shape == (n_neurons,)
    assert np.all((assignments >= 0) & (assignments < n_classes))
    predictions = all_activity_prediction(counts, assignments, n_classes)
    assert np.all((predictions >= 0) & (predictions < n_classes))
    accuracy = classification_accuracy(predictions, labels)
    assert 0.0 <= accuracy <= 1.0


# -------------------------------------------------------------------- attacks
@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    scale=st.floats(min_value=0.5, max_value=1.5),
)
@settings(max_examples=25, deadline=None)
def test_fault_injector_affects_exactly_the_requested_fraction(fraction, scale):
    network = DiehlAndCook2015(DiehlAndCookParameters(n_inputs=9, n_neurons=40), rng=0)
    injector = FaultInjector(network, rng=1)
    record = injector.inject_threshold_fault(EXCITATORY_LAYER, scale, fraction=fraction)
    assert record.n_affected == int(round(fraction * 40))
    corrupted = ~np.isclose(network.excitatory_layer.threshold_scale, 1.0)
    if not np.isclose(scale, 1.0):
        assert corrupted.sum() == record.n_affected


# ------------------------------------------------------------------ reporting
@given(
    rows=st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                min_size=1,
                max_size=8,
            ),
            st.floats(allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=20, deadline=None)
def test_format_table_line_count(rows):
    text = format_table(["name", "value"], rows)
    assert len(text.splitlines()) == 2 + len(rows)
