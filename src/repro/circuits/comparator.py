"""Comparator cell used by the Axon-Hillock hardening defense (paper Fig. 10a).

The defense replaces the first inverter of the Axon-Hillock neuron with a
comparator whose trip point is set by an externally biased reference (IN-
at 600 mV, tail bias VB at 400 mV in the paper) rather than by the inverter's
VDD-dependent switching threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analog import Circuit, dc_sweep
from repro.analog.mosfet import MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.circuits.ota import OTASizing, add_five_transistor_ota
from repro.utils.validation import check_positive


@dataclass
class ComparatorDesign:
    """Bias and sizing of the threshold comparator."""

    reference_voltage: float = 0.6
    tail_bias: float = 0.4
    sizing: OTASizing = field(default_factory=OTASizing)
    nmos_params: MOSFETParameters = NMOS_65NM
    pmos_params: MOSFETParameters = PMOS_65NM

    def __post_init__(self) -> None:
        check_positive(self.reference_voltage, "reference_voltage")
        check_positive(self.tail_bias, "tail_bias")


def build_comparator(
    vdd: float = 1.0,
    *,
    design: Optional[ComparatorDesign] = None,
) -> Circuit:
    """Build the comparator test bench.

    Nodes: ``vdd``, ``vin`` (the signal input, IN+), ``vref`` (IN-),
    ``vout``.
    """
    design = design or ComparatorDesign()
    circuit = Circuit("threshold_comparator")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    circuit.add_voltage_source("VIN", "vin", "0", 0.0)
    circuit.add_voltage_source("VREFIN", "vref", "0", design.reference_voltage)
    circuit.add_voltage_source("VB", "vb", "0", design.tail_bias)
    add_five_transistor_ota(
        circuit,
        "CMP",
        "vin",
        "vref",
        "vout",
        "vdd",
        node_bias="vb",
        sizing=design.sizing,
        nmos_params=design.nmos_params,
        pmos_params=design.pmos_params,
    )
    circuit.add_capacitor("CL", "vout", "0", "20f")
    circuit.add_resistor("RL", "vout", "0", "100meg")
    return circuit


def trip_point(
    vdd: float = 1.0,
    *,
    design: Optional[ComparatorDesign] = None,
    points: int = 81,
) -> float:
    """Input voltage at which the comparator output crosses VDD/2.

    Because the trip point is set by the reference input rather than the
    supply, it stays near ``design.reference_voltage`` as VDD varies — this
    is the quantity compared against the inverter threshold in the defense
    evaluation.
    """
    design = design or ComparatorDesign()
    circuit = build_comparator(vdd, design=design)
    vin = np.linspace(0.0, vdd, points)
    sweep = dc_sweep(circuit, "VIN", vin)
    vout = sweep.voltage("vout")
    half = vdd / 2.0
    above = vout >= half
    crossings = np.nonzero(np.diff(above.astype(int)) != 0)[0]
    if len(crossings) == 0:
        raise RuntimeError(f"comparator output never crosses VDD/2 at VDD={vdd}")
    idx = int(crossings[0])
    x0, x1 = vin[idx], vin[idx + 1]
    y0, y1 = vout[idx] - half, vout[idx + 1] - half
    return float(x0 - y0 * (x1 - x0) / (y1 - y0))


def trip_point_vs_vdd(vdd_values, *, design: Optional[ComparatorDesign] = None) -> np.ndarray:
    """Comparator trip point across a VDD sweep (paper Fig. 10a defense)."""
    return np.array([trip_point(float(v), design=design) for v in vdd_values])
