"""Lockstep batched simulation of parameter variants of one topology.

The figure workloads run the *same circuit topology* many times with only
parameter values changed (VDD grids, sizing factors, bias sweeps).
:class:`BatchedCircuit` compiles B such variants side by side and advances
them in lockstep: one Newton iteration assembles a stacked ``(B, N, N)``
matrix — base linear patterns copied per variant, all B×M transistors
evaluated in a single vectorised call, stamps scattered through shared
flat-index maps with per-variant offsets — and solves every variant at once
with batched ``np.linalg.solve``.

Entry points:

* :func:`batched_transient_analysis` — fixed-step backward-Euler transients
  of B variants, returning one :class:`~repro.analog.transient.TransientResult`
  per variant.  On a lockstep convergence failure the affected step falls
  back to the per-variant compiled engine (with its gmin stepping and step
  subdivision), so robustness matches the scalar path.
* :func:`batched_dc_sweep` / :func:`batched_operating_points` — DC solves of
  B variants in lockstep (threshold-vs-VDD and driver-amplitude grids).

At paper-scale system sizes the stacked dense ``(B, N, N)`` workspace and
batched dense LU become the bottleneck, so the batch engine has a sparse
mode (``engine="sparse"``, or ``engine="auto"`` from
:data:`repro.analog.compiled.SPARSE_SIZE_THRESHOLD` unknowns): variants
compile as :class:`~repro.analog.sparse.SparseCircuit` members sharing one
CSC pattern, assembly stacks per-variant ``(B, nnz)`` data vectors through
the same scatter maps (with CSC data positions instead of dense flat
indices), and each variant is solved through its own
:func:`scipy.sparse.linalg.splu` factorisation — cached per
``(analysis, dt, gmin)`` for linear circuits, exactly like the
single-variant tiers.

All variants must share a topology (same nodes, same device names/types in
the same order) — :func:`assert_same_topology` checks this and raises
:class:`TopologyMismatchError` otherwise, which callers use to fall back to
serial execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analog.compiled import (
    _CACHE_LIMIT,
    SPARSE_SIZE_THRESHOLD,
    CompiledCircuit,
    EngineStats,
    estimate_system_size,
)
from repro.analog.dc import DCSweepResult, OperatingPoint, _solution_to_op
from repro.analog.devices import CurrentSource, VoltageSource
from repro.analog.mna import (
    ConvergenceError,
    SolverOptions,
    StampState,
    newton_solve,
    seed_solution_vector,
)
from repro.analog.netlist import Circuit
from repro.analog.transient import (
    TransientResult,
    _advance,
    _TraceRecorder,
    initial_condition_vector,
    time_grid,
)
from repro.analog.units import ValueLike, parse_value
from repro.utils.validation import check_positive


class TopologyMismatchError(ValueError):
    """Raised when circuits handed to the batched engine differ in topology."""


def assert_same_topology(circuits: Sequence[Circuit]) -> None:
    """Validate that every circuit is a parameter variant of the first.

    Checks node sets and the device list (names, exact types, node wiring,
    order).  Device *parameters* (source values, R/C values, transistor
    geometry) are free to differ — that is the point of batching.
    """
    if not circuits:
        raise ValueError("batched execution needs at least one circuit")
    reference = circuits[0]
    ref_nodes = reference.nodes()
    ref_devices = [(d.name, type(d), d.nodes, d.n_branches) for d in reference.devices]
    for circuit in circuits[1:]:
        if circuit.nodes() != ref_nodes:
            raise TopologyMismatchError(
                f"circuit {circuit.name!r} has different nodes than "
                f"{reference.name!r}"
            )
        devices = [(d.name, type(d), d.nodes, d.n_branches) for d in circuit.devices]
        if devices != ref_devices:
            raise TopologyMismatchError(
                f"circuit {circuit.name!r} has a different device list than "
                f"{reference.name!r}"
            )


def shares_topology(circuits: Sequence[Circuit]) -> bool:
    """Whether the circuits can be run through the batched engine."""
    try:
        assert_same_topology(circuits)
    except TopologyMismatchError:
        return False
    return all(CompiledCircuit.supports(circuit) for circuit in circuits)


class BatchedCircuit:
    """B compiled variants of one topology advanced in lockstep.

    Wraps one :class:`~repro.analog.compiled.CompiledCircuit` per variant
    (reused verbatim for the per-variant fallback path) plus stacked
    parameter arrays for cross-variant vectorised device evaluation.

    ``engine`` selects the stacked storage: ``"compiled"`` forces the dense
    ``(B, N, N)`` workspace, ``"sparse"`` the shared-pattern ``(B, nnz)``
    CSC mode (degrading to dense, with the usual one-time warning, when
    SciPy is missing), and ``"auto"`` picks sparse from
    :data:`~repro.analog.compiled.SPARSE_SIZE_THRESHOLD` unknowns.
    """

    def __init__(self, circuits: Sequence[Circuit], engine: str = "auto") -> None:
        assert_same_topology(circuits)
        self.circuits = list(circuits)
        self.sparse_mode = False
        members: Optional[List[CompiledCircuit]] = None
        if engine == "sparse" or (
            engine == "auto"
            and estimate_system_size(circuits[0]) >= SPARSE_SIZE_THRESHOLD
        ):
            from repro.analog.sparse import try_sparse_system

            first = try_sparse_system(circuits[0], explicit=engine == "sparse")
            if first is not None:
                members = [first] + [
                    try_sparse_system(c, explicit=False) for c in circuits[1:]
                ]
                self.sparse_mode = True
        elif engine not in ("auto", "compiled"):
            raise ValueError(
                f"unknown engine {engine!r}; use 'auto', 'compiled' or 'sparse'"
            )
        if members is None:
            members = [CompiledCircuit(c) for c in circuits]
        self.members: List[CompiledCircuit] = members
        reference = self.members[0]
        for member in self.members:
            if member._fallback:
                unsupported = sorted(type(d).__name__ for d in member._fallback)
                raise TopologyMismatchError(
                    "batched execution supports compiled device types only; "
                    f"found {', '.join(unsupported)}"
                )
        self.reference = reference
        self.batch_size = len(self.members)
        self.size = reference.size
        self.n_nodes = reference.n_nodes
        self.is_nonlinear = reference.is_nonlinear
        self.stats = EngineStats()
        # Stacked workspaces and per-variant flat offsets.  In sparse mode
        # the dense (B, N, N) stack is replaced by (B, nnz) data vectors
        # over the members' shared CSC pattern, with one persistent
        # csc_matrix view per variant for factorisation.
        b, n = self.batch_size, self.size
        if self.sparse_mode:
            from repro.analog.sparse import csc_matrix

            nnz = reference.nnz
            self._matrix = np.zeros((b, nnz))
            self._matrix_offsets = np.arange(b, dtype=np.intp) * nnz
            self._variant_matrices = []
            for i in range(b):
                variant = csc_matrix(
                    (self._matrix[i], reference._csc_indices, reference._csc_indptr),
                    shape=(n, n),
                )
                variant.data = self._matrix[i]  # guarantee the view is shared
                self._variant_matrices.append(variant)
            self._lu_cache: Dict[tuple, list] = {}
        else:
            self._matrix = np.zeros((b, n, n))
            self._matrix_offsets = np.arange(b, dtype=np.intp) * (n * n)
        self._rhs = np.zeros((b, n))
        self._padded_guess = np.zeros((b, n + 1))
        self._padded_prev = np.zeros((b, n + 1))
        self._rhs_offsets = np.arange(b, dtype=np.intp) * n
        # Per-variant parameter stacks of the vectorised device groups.
        self._group_params = [
            group.stacked_params([member._groups[gi] for member in self.members])
            for gi, group in enumerate(reference._groups)
        ]
        self._cap_values = np.stack([m._cap_values for m in self.members])
        self._ind_values = np.stack([m._ind_values for m in self.members])

    # ---------------------------------------------------------------- assembly
    def _assemble(
        self,
        analysis: str,
        time: float,
        dt: float,
        previous: Optional[np.ndarray],
        guess: np.ndarray,
        gmin: float,
    ) -> tuple:
        """One lockstep assembly into the stacked workspace.

        The workspace is ``(B, N, N)`` dense or ``(B, nnz)`` CSC data
        depending on the mode; the RHS logic is storage independent.
        """
        matrix, rhs = self._matrix, self._rhs
        key = self.reference.step_key(analysis, dt)
        for b, member in enumerate(self.members):
            if self.sparse_mode:
                matrix[b] = member._base_data_for(key, analysis, dt)
            else:
                matrix[b] = member._base_for(key, analysis, dt)
            row = rhs[b]
            row.fill(0.0)
            member._assemble_source_rhs(row, time)
        reference = self.reference
        rhs_flat = rhs.ravel()
        if analysis == "transient" and previous is not None:
            prev = self._padded_prev
            prev[:, : self.size] = previous
            if self._cap_values.shape[1]:
                injection = (self._cap_values / dt) * (
                    prev[:, reference._cap_a_gather] - prev[:, reference._cap_b_gather]
                )
                np.add.at(
                    rhs_flat,
                    reference._cap_rhs_idx[None, :] + self._rhs_offsets[:, None],
                    reference._cap_rhs_sign * injection[:, reference._cap_rhs_src],
                )
            if self._ind_values.shape[1]:
                branch = reference._ind_branch
                rhs[:, branch] -= (self._ind_values / dt) * previous[:, branch]
        if reference._groups:
            padded = self._padded_guess
            padded[:, : self.size] = guess
            matrix_flat = matrix.ravel()
            for gi, (group, params) in enumerate(
                zip(reference._groups, self._group_params)
            ):
                mat_comp, rhs_comp = group.evaluate(padded, params)
                group.scatter(
                    matrix_flat,
                    rhs_flat,
                    mat_comp,
                    rhs_comp,
                    matrix_offsets=self._matrix_offsets,
                    rhs_offsets=self._rhs_offsets,
                    mat_index=(
                        reference._group_mat_pos[gi] if self.sparse_mode else None
                    ),
                )
        if self.sparse_mode:
            matrix[:, reference._diag_pos] += gmin
        else:
            matrix.reshape(self.batch_size, -1)[
                :, reference._node_diag_flat
            ] += gmin
        self.stats.assemblies += self.batch_size
        return matrix, rhs

    # ----------------------------------------------------------------- solving
    def _solve_stacked(
        self, rhs: np.ndarray, analysis: str, dt: float, gmin: float
    ) -> np.ndarray:
        """Solve every variant of the assembled stack at once.

        Dense mode batches through ``np.linalg.solve``; sparse mode factors
        each variant's CSC matrix with ``splu`` (reusing the members'
        adaptive column ordering) and caches the factor list per
        ``(analysis, dt, gmin)`` for linear circuits.  A singular variant
        raises :class:`ConvergenceError` so the caller's per-variant rescue
        path engages.
        """
        if not self.sparse_mode:
            return np.linalg.solve(self._matrix, rhs[..., None])[..., 0]
        signature = (
            (self.reference.step_key(analysis, dt), gmin)
            if not self.is_nonlinear
            else None
        )
        factors = (
            self._lu_cache.pop(signature, None) if signature is not None else None
        )
        if factors is None:
            factors = []
            for b, member in enumerate(self.members):
                factorisation = member._factor(self._variant_matrices[b])
                if factorisation is None:
                    raise ConvergenceError(
                        f"singular matrix for variant {b} of batch of "
                        f"{self.batch_size} x {self.reference.circuit.name!r}"
                    )
                factors.append(factorisation)
        else:
            self.stats.lu_reuses += self.batch_size
        if signature is not None:
            if len(self._lu_cache) >= _CACHE_LIMIT:
                self._lu_cache.pop(next(iter(self._lu_cache)))
            self._lu_cache[signature] = factors
        return np.stack(
            [factors[b].solve(rhs[b]) for b in range(self.batch_size)]
        )

    # ------------------------------------------------------------------ newton
    def solve_point(
        self,
        analysis: str,
        time: float,
        dt: float,
        previous: Optional[np.ndarray],
        guess: np.ndarray,
        options: SolverOptions,
    ) -> np.ndarray:
        """Damped lockstep Newton (mirrors ``mna._newton_iterate``).

        Every variant follows exactly the iterate sequence it would follow
        under the scalar engine: a variant that satisfies the convergence
        criterion is *frozen* (no further updates), so the surviving
        variants keep iterating without perturbing the finished ones.
        Raises :class:`ConvergenceError` when any variant exhausts the
        iteration budget — the caller then reruns the point per-variant
        through the scalar path (which adds gmin stepping/subdivision).
        """
        x = guess.copy()
        active = np.ones(self.batch_size, dtype=bool)
        for iteration in range(options.max_iterations):
            matrix, rhs = self._assemble(
                analysis, time, dt, previous, x, options.gmin
            )
            x_new = self._solve_stacked(rhs, analysis, dt, options.gmin)
            if not self.is_nonlinear:
                return x_new
            delta = x_new - x
            node_delta = delta[:, : self.n_nodes]
            step_limit = options.max_voltage_step
            if iteration >= options.max_iterations // 3:
                step_limit *= 0.25
            elif iteration >= options.max_iterations // 6:
                step_limit *= 0.5
            np.clip(node_delta, -step_limit, step_limit, out=node_delta)
            x[active] += delta[active]
            max_delta = np.max(np.abs(node_delta), axis=1)
            scale = np.max(np.abs(x[:, : self.n_nodes]), axis=1)
            tolerance = options.voltage_tolerance + (
                options.relative_tolerance * np.maximum(scale, 1.0)
            )
            active &= max_delta > tolerance
            if not active.any():
                return x
        raise ConvergenceError(
            f"lockstep Newton failed to converge for batch of "
            f"{self.batch_size} x {self.reference.circuit.name!r} "
            f"(analysis={analysis}, t={time:g}s)"
        )

    # ---------------------------------------------------------------- fallback
    def solve_member(
        self,
        index: int,
        analysis: str,
        time: float,
        guess: np.ndarray,
        options: SolverOptions,
        previous: Optional[np.ndarray] = None,
        dt: float = 1e-9,
    ) -> np.ndarray:
        """Scalar-engine solve of one variant (lockstep rescue path)."""
        member = self.members[index]
        state = StampState(
            system=member, analysis=analysis, time=time, dt=dt, previous=previous
        )
        return newton_solve(member, state, guess, options)


def _merge_member_stats(batch: BatchedCircuit) -> EngineStats:
    """Batch counters plus whatever the per-variant fallbacks accumulated."""
    total = EngineStats()
    total.merge(batch.stats)
    for member in batch.members:
        total.merge(member.stats)
    return total


def batched_transient_analysis(
    circuits: Sequence[Circuit],
    *,
    stop_time: ValueLike,
    time_step: ValueLike,
    initial_voltages: Union[Dict[str, float], Sequence[Dict[str, float]], None] = None,
    use_initial_conditions: bool = False,
    record_nodes: Optional[Sequence[str]] = None,
    options: Optional[SolverOptions] = None,
    engine: str = "auto",
) -> List[TransientResult]:
    """Fixed-step backward-Euler transients of B variants in lockstep.

    The call signature mirrors :func:`repro.analog.transient.transient_analysis`
    (fixed-step mode); ``initial_voltages`` may be one shared mapping or one
    mapping per variant, and ``engine`` selects the stacked storage (see
    :class:`BatchedCircuit`).  Returns one :class:`TransientResult` per
    circuit, in input order.  Steps where the lockstep Newton fails are
    re-run per-variant through the compiled scalar path (gmin stepping plus
    recursive subdivision), so a single stiff variant cannot poison the
    batch.
    """
    stop_time = check_positive(parse_value(stop_time), "stop_time")
    time_step = check_positive(parse_value(time_step), "time_step")
    if time_step > stop_time:
        raise ValueError("time_step must not exceed stop_time")
    batch = BatchedCircuit(circuits, engine=engine)
    options = options or SolverOptions()

    per_member_ivs: List[Optional[Dict[str, float]]]
    if initial_voltages is None or isinstance(initial_voltages, dict):
        per_member_ivs = [initial_voltages] * batch.batch_size
    else:
        if len(initial_voltages) != batch.batch_size:
            raise ValueError(
                "initial_voltages must be one mapping or one per circuit"
            )
        per_member_ivs = list(initial_voltages)

    solution = np.zeros((batch.batch_size, batch.size))
    if use_initial_conditions:
        for b, (member, ivs) in enumerate(zip(batch.members, per_member_ivs)):
            solution[b] = initial_condition_vector(member, member.circuit, ivs)
    else:
        guess = np.zeros_like(solution)
        for b, (member, ivs) in enumerate(zip(batch.members, per_member_ivs)):
            seed_solution_vector(member, ivs, guess[b])
        try:
            solution = batch.solve_point("dc", 0.0, 1e-9, None, guess, options)
        except (ConvergenceError, np.linalg.LinAlgError):
            for b in range(batch.batch_size):
                solution[b] = batch.solve_member(b, "dc", 0.0, guess[b], options)

    times = time_grid(stop_time, time_step)
    recorders = []
    for member in batch.members:
        recorded = (
            list(record_nodes) if record_nodes is not None else member.node_names
        )
        member_branches = [d for d in member.circuit.devices if d.n_branches]
        recorders.append(
            _TraceRecorder(member, recorded, member_branches, len(times))
        )

    for b, recorder in enumerate(recorders):
        recorder.append(0.0, solution[b])
    for step in range(1, len(times)):
        t_start, t_stop = float(times[step - 1]), float(times[step])
        dt = t_stop - t_start
        try:
            solution = batch.solve_point(
                "transient", t_stop, dt, solution, solution, options
            )
        except (ConvergenceError, np.linalg.LinAlgError):
            # Lockstep rescue: advance each variant through the compiled
            # scalar path, which subdivides stiff intervals individually.
            rescued = np.empty_like(solution)
            for b, member in enumerate(batch.members):
                rescued[b] = _advance(
                    member, solution[b].copy(), t_start, t_stop, options, depth=0
                )
            solution = rescued
        for b, recorder in enumerate(recorders):
            recorder.append(t_stop, solution[b])

    batch.stats = _merge_member_stats(batch)
    return [
        recorder.finalise(member.circuit.name)
        for recorder, member in zip(recorders, batch.members)
    ]


def batched_operating_points(
    circuits: Sequence[Circuit],
    *,
    initial_guesses: Optional[Sequence[Dict[str, float]]] = None,
    options: Optional[SolverOptions] = None,
    engine: str = "auto",
) -> List[OperatingPoint]:
    """DC operating points of B topology-sharing variants in one lockstep solve."""
    batch = BatchedCircuit(circuits, engine=engine)
    options = options or SolverOptions()
    guess = np.zeros((batch.batch_size, batch.size))
    if initial_guesses is not None:
        for b, (member, ivs) in enumerate(zip(batch.members, initial_guesses)):
            seed_solution_vector(member, ivs, guess[b])
    try:
        solution = batch.solve_point("dc", 0.0, 1e-9, None, guess, options)
    except (ConvergenceError, np.linalg.LinAlgError):
        solution = np.stack(
            [
                batch.solve_member(b, "dc", 0.0, guess[b], options)
                for b in range(batch.batch_size)
            ]
        )
    batch.stats = _merge_member_stats(batch)
    return [
        _solution_to_op(member, solution[b])
        for b, member in enumerate(batch.members)
    ]


def batched_dc_sweep(
    circuits: Sequence[Circuit],
    source_name: str,
    values: np.ndarray,
    *,
    options: Optional[SolverOptions] = None,
    engine: str = "auto",
) -> List[DCSweepResult]:
    """Sweep one named source across B variants in lockstep.

    ``values`` is either a shared ``(n_points,)`` grid or a per-variant
    ``(B, n_points)`` grid (e.g. a VIN ramp scaled to each variant's VDD).
    Continuation (previous solution as the next starting point) applies per
    variant exactly as in :func:`repro.analog.dc.dc_sweep`.  Returns one
    :class:`DCSweepResult` per circuit.
    """
    batch = BatchedCircuit(circuits, engine=engine)
    options = options or SolverOptions()
    grid = np.asarray(values, dtype=float)
    if grid.ndim == 1:
        grid = np.broadcast_to(grid, (batch.batch_size, len(grid)))
    elif grid.ndim != 2 or grid.shape[0] != batch.batch_size:
        raise ValueError(
            "values must be (n_points,) or (batch, n_points); got "
            f"shape {grid.shape}"
        )
    devices = []
    for circuit in batch.circuits:
        device = circuit[source_name]
        if not isinstance(device, (VoltageSource, CurrentSource)):
            raise TypeError(f"{source_name!r} is not an independent source")
        devices.append(device)
    originals = [device.value for device in devices]
    ops: List[List[OperatingPoint]] = [[] for _ in range(batch.batch_size)]
    guess = np.zeros((batch.batch_size, batch.size))
    try:
        for k in range(grid.shape[1]):
            for device, value in zip(devices, grid[:, k]):
                device.value = float(value)
            try:
                solution = batch.solve_point("dc", 0.0, 1e-9, None, guess, options)
            except (ConvergenceError, np.linalg.LinAlgError):
                solution = np.stack(
                    [
                        batch.solve_member(b, "dc", 0.0, guess[b], options)
                        for b in range(batch.batch_size)
                    ]
                )
            guess = solution
            for b, member in enumerate(batch.members):
                ops[b].append(_solution_to_op(member, solution[b]))
    finally:
        for device, original in zip(devices, originals):
            device.value = original
    batch.stats = _merge_member_stats(batch)
    return [
        DCSweepResult(
            source_name=source_name,
            values=np.array(grid[b], dtype=float),
            operating_points=ops[b],
        )
        for b in range(batch.batch_size)
    ]
